#include "nn/serialize.h"

#include <cstdio>
#include <cstring>

#include "util/strings.h"
#include "util/tsv.h"

namespace cnpb::nn {

namespace {
constexpr char kMagic[8] = {'C', 'N', 'P', 'B', 'N', 'N', '0', '1'};
}  // namespace

util::Status SaveParameters(const std::vector<Var>& params,
                            const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return util::IoError("cannot open " + path);
  std::fwrite(kMagic, 1, sizeof(kMagic), f);
  const uint32_t count = static_cast<uint32_t>(params.size());
  std::fwrite(&count, sizeof(count), 1, f);
  for (const Var& p : params) {
    const int32_t rows = p->value.rows();
    const int32_t cols = p->value.cols();
    std::fwrite(&rows, sizeof(rows), 1, f);
    std::fwrite(&cols, sizeof(cols), 1, f);
    std::fwrite(p->value.data(), sizeof(float), p->value.size(), f);
  }
  if (std::fclose(f) != 0) return util::IoError("fclose failed: " + path);
  return util::Status::Ok();
}

util::Status LoadParameters(const std::vector<Var>& params,
                            const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return util::IoError("cannot open " + path);
  char magic[sizeof(kMagic)];
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(f);
    return util::InvalidArgumentError("bad checkpoint magic: " + path);
  }
  uint32_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1 ||
      count != params.size()) {
    std::fclose(f);
    return util::InvalidArgumentError(util::StrFormat(
        "checkpoint has %u parameters, model has %zu", count, params.size()));
  }
  for (const Var& p : params) {
    int32_t rows = 0, cols = 0;
    if (std::fread(&rows, sizeof(rows), 1, f) != 1 ||
        std::fread(&cols, sizeof(cols), 1, f) != 1 ||
        rows != p->value.rows() || cols != p->value.cols()) {
      std::fclose(f);
      return util::InvalidArgumentError("checkpoint shape mismatch");
    }
    if (std::fread(p->value.data(), sizeof(float), p->value.size(), f) !=
        p->value.size()) {
      std::fclose(f);
      return util::IoError("truncated checkpoint: " + path);
    }
  }
  std::fclose(f);
  return util::Status::Ok();
}

util::Status SaveVocab(const Vocab& vocab, const std::string& path) {
  util::TsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  for (int id = 0; id < vocab.size(); ++id) {
    writer.WriteRow({vocab.Word(id)});
  }
  return writer.Close();
}

util::Result<Vocab> LoadVocab(const std::string& path) {
  auto rows = util::ReadTsvFile(path);
  if (!rows.ok()) return rows.status();
  Vocab vocab;
  for (size_t i = 0; i < rows->size(); ++i) {
    const auto& row = (*rows)[i];
    if (row.size() != 1) {
      return util::InvalidArgumentError("vocab row needs exactly 1 field");
    }
    if (i < 3) {
      // Reserved tokens must match the fixed layout.
      if (row[0] != vocab.Word(static_cast<int>(i))) {
        return util::InvalidArgumentError("vocab reserved tokens corrupted");
      }
      continue;
    }
    vocab.Add(row[0]);
  }
  return vocab;
}

}  // namespace cnpb::nn
