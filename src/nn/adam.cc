#include "nn/adam.h"

#include <cmath>

namespace cnpb::nn {

Adam::Adam(std::vector<Var> params, const Config& config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    m_.push_back(Tensor::Zeros(p->value.rows(), p->value.cols()));
    v_.push_back(Tensor::Zeros(p->value.rows(), p->value.cols()));
  }
}

void Adam::Step() {
  ++t_;
  // Global-norm clipping across all accumulated gradients.
  float scale = 1.0f;
  if (config_.clip > 0.0f) {
    double norm_sq = 0.0;
    for (const Var& p : params_) {
      if (!p->grad_ready) continue;
      for (size_t i = 0; i < p->grad.size(); ++i) {
        norm_sq += static_cast<double>(p->grad[i]) * p->grad[i];
      }
    }
    const float norm = static_cast<float>(std::sqrt(norm_sq));
    if (norm > config_.clip) scale = config_.clip / norm;
  }
  const float bias1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Var& p = params_[k];
    if (!p->grad_ready) continue;
    for (size_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad[i] * scale;
      m_[k][i] = config_.beta1 * m_[k][i] + (1.0f - config_.beta1) * g;
      v_[k][i] = config_.beta2 * v_[k][i] + (1.0f - config_.beta2) * g * g;
      const float m_hat = m_[k][i] / bias1;
      const float v_hat = v_[k][i] / bias2;
      p->value[i] -= config_.lr * m_hat / (std::sqrt(v_hat) + config_.eps);
    }
  }
  ZeroGrad();
}

void Adam::ZeroGrad() {
  for (Var& p : params_) {
    if (p->grad_ready) p->grad.Fill(0.0f);
  }
}

size_t Adam::NumParams() const {
  size_t n = 0;
  for (const Var& p : params_) n += p->value.size();
  return n;
}

}  // namespace cnpb::nn
