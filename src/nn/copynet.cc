#include "nn/copynet.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace cnpb::nn {

CopyNet::CopyNet(const Vocab* input_vocab, const Vocab* output_vocab,
                 const Config& config)
    : input_vocab_(input_vocab),
      output_vocab_(output_vocab),
      config_(config) {
  CNPB_CHECK(input_vocab != nullptr && output_vocab != nullptr);
  util::Rng rng(config.seed);
  input_embed_ = Embedding(input_vocab->size(), config.embed_dim, rng);
  output_embed_ = Embedding(output_vocab->size(), config.embed_dim, rng);
  encoder_ = GruCell(config.embed_dim, config.hidden_dim, rng);
  decoder_ = GruCell(config.embed_dim + config.hidden_dim, config.hidden_dim,
                     rng);
  attn_ = Linear(config.hidden_dim, config.hidden_dim, rng);
  out_ = Linear(2 * config.hidden_dim, output_vocab->size(), rng);
  copy_gate_ = Linear(2 * config.hidden_dim, 1, rng);
}

std::vector<Var> CopyNet::Params() const {
  std::vector<Var> params;
  input_embed_.CollectParams(&params);
  output_embed_.CollectParams(&params);
  encoder_.CollectParams(&params);
  decoder_.CollectParams(&params);
  attn_.CollectParams(&params);
  out_.CollectParams(&params);
  copy_gate_.CollectParams(&params);
  return params;
}

Var CopyNet::Encode(const std::vector<int>& ids,
                    std::vector<Var>* states) const {
  Var h = encoder_.InitialState();
  states->clear();
  states->reserve(ids.size());
  for (int id : ids) {
    h = encoder_.Step(input_embed_.Lookup(id), h);
    states->push_back(h);
  }
  return h;
}

Var CopyNet::ZeroContext() const {
  return MakeVar(Tensor::Zeros(config_.hidden_dim), /*requires_grad=*/false);
}

CopyNet::StepOutput CopyNet::DecodeStep(const Var& h_matrix,
                                        const Var& prev_state,
                                        const Var& prev_context,
                                        int prev_word_id) const {
  StepOutput out;
  const Var input = Concat(output_embed_.Lookup(prev_word_id), prev_context);
  out.state = decoder_.Step(input, prev_state);
  const Var query = attn_(out.state);
  const Var scores = MatVec(h_matrix, query);  // [T]
  out.attention = Softmax(scores);
  out.context = MatTVec(h_matrix, out.attention);
  const Var feat = Concat(out.state, out.context);
  out.p_gen = Sigmoid(copy_gate_(feat));
  out.p_vocab = Softmax(out_(feat));
  return out;
}

float CopyNet::AccumulateBatch(const std::vector<const Example*>& batch) {
  double total_loss = 0.0;
  size_t total_tokens = 0;
  for (const Example* example : batch) {
    if (example->source_ids.empty() || example->target_words.empty()) continue;
    std::vector<Var> states;
    Var enc_final = Encode(example->source_ids, &states);
    const Var h_matrix = StackRows(states);

    Var state = enc_final;
    Var context = ZeroContext();
    int prev_id = Vocab::kPad;  // BOS
    std::vector<Var> step_losses;

    // Teacher-forced steps over target words plus the closing <eos>.
    std::vector<std::string> targets = example->target_words;
    targets.emplace_back("<eos>");
    for (const std::string& target : targets) {
      const StepOutput step = DecodeStep(h_matrix, state, context, prev_id);

      const int vocab_id =
          output_vocab_->Contains(target) ? output_vocab_->Id(target) : -1;
      std::vector<int> copy_positions;
      if (config_.use_copy) {
        for (size_t j = 0; j < example->source_words.size(); ++j) {
          if (example->source_words[j] == target) {
            copy_positions.push_back(static_cast<int>(j));
          }
        }
      }
      if (vocab_id < 0 && copy_positions.empty()) {
        // Target unreachable (OOV without copy support): maximal surprise;
        // contributes a constant so the ablation's loss reflects the miss.
        state = step.state;
        context = step.context;
        prev_id = Vocab::kUnk;
        total_loss += 27.6;  // -log(1e-12)
        ++total_tokens;
        continue;
      }

      Var prob;
      if (vocab_id >= 0) {
        prob = Mul(step.p_gen, Gather(step.p_vocab, vocab_id));
        if (!copy_positions.empty()) {
          prob = Add(prob, Mul(OneMinus(step.p_gen),
                               GatherSum(step.attention, copy_positions)));
        }
      } else {
        prob = Mul(OneMinus(step.p_gen),
                   GatherSum(step.attention, copy_positions));
      }
      step_losses.push_back(NegLog(prob));
      total_loss += step_losses.back()->value[0];
      ++total_tokens;

      state = step.state;
      context = step.context;
      prev_id = vocab_id >= 0 ? vocab_id : Vocab::kUnk;
    }
    if (step_losses.empty()) continue;
    Var loss = step_losses[0];
    for (size_t i = 1; i < step_losses.size(); ++i) {
      loss = Add(loss, step_losses[i]);
    }
    Backward(loss);
  }
  return total_tokens == 0
             ? 0.0f
             : static_cast<float>(total_loss / static_cast<double>(total_tokens));
}

std::vector<std::string> CopyNet::Generate(
    const std::vector<int>& source_ids,
    const std::vector<std::string>& source_words) const {
  std::vector<std::string> output;
  if (source_ids.empty()) return output;
  CNPB_CHECK(source_ids.size() == source_words.size());

  std::vector<Var> states;
  Var enc_final = Encode(source_ids, &states);
  const Var h_matrix = StackRows(states);

  Var state = enc_final;
  Var context = ZeroContext();
  int prev_id = Vocab::kPad;
  for (int t = 0; t < config_.max_decode_len; ++t) {
    const StepOutput step = DecodeStep(h_matrix, state, context, prev_id);
    // Combined distribution over vocab words and source words.
    std::unordered_map<std::string, float> scores;
    const float p_gen = step.p_gen->value[0];
    for (int v = 0; v < output_vocab_->size(); ++v) {
      const float p = p_gen * step.p_vocab->value[v];
      if (p > 0.0f) scores[output_vocab_->Word(v)] += p;
    }
    if (config_.use_copy) {
      for (size_t j = 0; j < source_words.size(); ++j) {
        scores[source_words[j]] +=
            (1.0f - p_gen) * step.attention->value[static_cast<int>(j)];
      }
    }
    // Greedy argmax, never emitting the reserved tokens except <eos>.
    std::string best;
    float best_score = -1.0f;
    for (const auto& [word, score] : scores) {
      if (word == "<pad>" || word == "<unk>") continue;
      if (score > best_score) {
        best_score = score;
        best = word;
      }
    }
    if (best.empty() || best == "<eos>") break;
    output.push_back(best);
    prev_id = output_vocab_->Contains(best) ? output_vocab_->Id(best)
                                            : Vocab::kUnk;
    state = step.state;
    context = step.context;
  }
  return output;
}

}  // namespace cnpb::nn
