#include "nn/layers.h"

#include <cmath>

namespace cnpb::nn {

Linear::Linear(int in_dim, int out_dim, util::Rng& rng) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(in_dim));
  w_ = MakeVar(Tensor::RandomUniform(out_dim, in_dim, scale, rng),
               /*requires_grad=*/true);
  b_ = MakeVar(Tensor::Zeros(out_dim), /*requires_grad=*/true);
}

Var Linear::operator()(const Var& x) const { return Add(MatVec(w_, x), b_); }

void Linear::CollectParams(std::vector<Var>* params) const {
  params->push_back(w_);
  params->push_back(b_);
}

Embedding::Embedding(int vocab, int dim, util::Rng& rng) {
  table_ = MakeVar(Tensor::RandomUniform(vocab, dim, 0.1f, rng),
                   /*requires_grad=*/true);
}

Var Embedding::Lookup(int id) const { return Row(table_, id); }

void Embedding::CollectParams(std::vector<Var>* params) const {
  params->push_back(table_);
}

GruCell::GruCell(int input_dim, int hidden_dim, util::Rng& rng)
    : hidden_dim_(hidden_dim),
      wz_(input_dim, hidden_dim, rng),
      uz_(hidden_dim, hidden_dim, rng),
      wr_(input_dim, hidden_dim, rng),
      ur_(hidden_dim, hidden_dim, rng),
      wn_(input_dim, hidden_dim, rng),
      un_(hidden_dim, hidden_dim, rng) {}

Var GruCell::Step(const Var& x, const Var& h) const {
  const Var z = Sigmoid(Add(wz_(x), uz_(h)));
  const Var r = Sigmoid(Add(wr_(x), ur_(h)));
  const Var n = Tanh(Add(wn_(x), un_(Mul(r, h))));
  return Add(Mul(OneMinus(z), n), Mul(z, h));
}

Var GruCell::InitialState() const {
  return MakeVar(Tensor::Zeros(hidden_dim_), /*requires_grad=*/false);
}

void GruCell::CollectParams(std::vector<Var>* params) const {
  wz_.CollectParams(params);
  uz_.CollectParams(params);
  wr_.CollectParams(params);
  ur_.CollectParams(params);
  wn_.CollectParams(params);
  un_.CollectParams(params);
}

}  // namespace cnpb::nn
