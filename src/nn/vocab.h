#ifndef CNPROBASE_NN_VOCAB_H_
#define CNPROBASE_NN_VOCAB_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cnpb::nn {

// Token <-> id mapping with reserved <pad>/<unk>/<eos>. Separate input and
// output vocabularies are the norm for copy models: the output vocabulary is
// deliberately small and rare words are reachable only through copying.
class Vocab {
 public:
  static constexpr int kPad = 0;
  static constexpr int kUnk = 1;
  static constexpr int kEos = 2;

  Vocab();

  // Adds a word (idempotent); returns its id.
  int Add(std::string_view word);
  // Id of word, or kUnk.
  int Id(std::string_view word) const;
  bool Contains(std::string_view word) const;
  const std::string& Word(int id) const;
  int size() const { return static_cast<int>(words_.size()); }

  std::vector<int> Encode(const std::vector<std::string>& tokens) const;

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace cnpb::nn

#endif  // CNPROBASE_NN_VOCAB_H_
