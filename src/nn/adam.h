#ifndef CNPROBASE_NN_ADAM_H_
#define CNPROBASE_NN_ADAM_H_

#include <vector>

#include "nn/autograd.h"

namespace cnpb::nn {

// Adam optimizer over a fixed parameter list. Gradients accumulate across a
// minibatch of Backward() calls; Step() applies the update and zeroes grads.
class Adam {
 public:
  struct Config {
    float lr = 1e-2f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float clip = 5.0f;  // global-norm gradient clipping; 0 disables
  };

  Adam(std::vector<Var> params, const Config& config);

  // Applies one update from the accumulated gradients; clears them.
  void Step();
  void ZeroGrad();
  size_t NumParams() const;  // total scalar parameter count

 private:
  std::vector<Var> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  Config config_;
  int t_ = 0;
};

}  // namespace cnpb::nn

#endif  // CNPROBASE_NN_ADAM_H_
