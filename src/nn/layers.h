#ifndef CNPROBASE_NN_LAYERS_H_
#define CNPROBASE_NN_LAYERS_H_

#include <vector>

#include "nn/autograd.h"
#include "util/rng.h"

namespace cnpb::nn {

// Affine map y = Wx + b.
class Linear {
 public:
  Linear() = default;
  Linear(int in_dim, int out_dim, util::Rng& rng);

  Var operator()(const Var& x) const;
  void CollectParams(std::vector<Var>* params) const;

  const Var& weight() const { return w_; }
  const Var& bias() const { return b_; }

 private:
  Var w_;
  Var b_;
};

// Embedding table [vocab, dim]; lookup returns the row as a Var.
class Embedding {
 public:
  Embedding() = default;
  Embedding(int vocab, int dim, util::Rng& rng);

  Var Lookup(int id) const;
  void CollectParams(std::vector<Var>* params) const;
  int vocab() const { return table_->value.rows(); }
  int dim() const { return table_->value.cols(); }

 private:
  Var table_;
};

// Gated recurrent unit cell:
//   z = sigmoid(Wz x + Uz h + bz)
//   r = sigmoid(Wr x + Ur h + br)
//   n = tanh(Wn x + Un (r*h) + bn)
//   h' = (1-z)*n + z*h
class GruCell {
 public:
  GruCell() = default;
  GruCell(int input_dim, int hidden_dim, util::Rng& rng);

  Var Step(const Var& x, const Var& h) const;
  Var InitialState() const;  // zero vector, no grad
  void CollectParams(std::vector<Var>* params) const;
  int hidden_dim() const { return hidden_dim_; }

 private:
  int hidden_dim_ = 0;
  Linear wz_, uz_, wr_, ur_, wn_, un_;
};

}  // namespace cnpb::nn

#endif  // CNPROBASE_NN_LAYERS_H_
