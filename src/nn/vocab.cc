#include "nn/vocab.h"

#include "util/logging.h"

namespace cnpb::nn {

Vocab::Vocab() {
  Add("<pad>");
  Add("<unk>");
  Add("<eos>");
}

int Vocab::Add(std::string_view word) {
  auto it = index_.find(std::string(word));
  if (it != index_.end()) return it->second;
  const int id = static_cast<int>(words_.size());
  words_.emplace_back(word);
  index_.emplace(words_.back(), id);
  return id;
}

int Vocab::Id(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? kUnk : it->second;
}

bool Vocab::Contains(std::string_view word) const {
  return index_.count(std::string(word)) > 0;
}

const std::string& Vocab::Word(int id) const {
  CNPB_CHECK(id >= 0 && static_cast<size_t>(id) < words_.size());
  return words_[id];
}

std::vector<int> Vocab::Encode(const std::vector<std::string>& tokens) const {
  std::vector<int> ids;
  ids.reserve(tokens.size());
  for (const std::string& token : tokens) ids.push_back(Id(token));
  return ids;
}

}  // namespace cnpb::nn
