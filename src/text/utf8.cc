#include "text/utf8.h"

namespace cnpb::text {

namespace {

// Resynchronisation after an invalid sequence: consume the byte at `pos`
// plus the whole run of continuation bytes that follows it, so one damaged
// multi-byte character costs exactly one U+FFFD instead of cascading a
// replacement per leftover byte and desynchronising downstream segmentation.
void ConsumeInvalidRun(std::string_view s, size_t& pos) {
  ++pos;
  while (pos < s.size() &&
         (static_cast<unsigned char>(s[pos]) & 0xC0) == 0x80) {
    ++pos;
  }
}

}  // namespace

char32_t DecodeCodepointAt(std::string_view s, size_t& pos) {
  if (pos >= s.size()) return kReplacementChar;
  const unsigned char b0 = static_cast<unsigned char>(s[pos]);
  if (b0 < 0x80) {
    ++pos;
    return b0;
  }
  int len;
  char32_t cp;
  if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    cp = b0 & 0x1F;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    cp = b0 & 0x0F;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    cp = b0 & 0x07;
  } else {
    // Stray continuation byte or invalid lead (0xF8..0xFF).
    ConsumeInvalidRun(s, pos);
    return kReplacementChar;
  }
  if (pos + static_cast<size_t>(len) > s.size()) {
    // Truncated sequence at end of string: swallow the lead byte and
    // whatever continuation bytes made it.
    ConsumeInvalidRun(s, pos);
    return kReplacementChar;
  }
  for (int i = 1; i < len; ++i) {
    const unsigned char b = static_cast<unsigned char>(s[pos + i]);
    if ((b & 0xC0) != 0x80) {
      // Corrupted continuation: consume the lead plus the valid prefix of
      // continuation bytes, stopping at the offending byte so decoding
      // resumes in sync there.
      ConsumeInvalidRun(s, pos);
      return kReplacementChar;
    }
    cp = (cp << 6) | (b & 0x3F);
  }
  pos += static_cast<size_t>(len);
  // Reject overlong encodings and surrogates.
  if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
      (len == 4 && cp < 0x10000) || (cp >= 0xD800 && cp <= 0xDFFF) ||
      cp > 0x10FFFF) {
    return kReplacementChar;
  }
  return cp;
}

bool IsValidUtf8(std::string_view s) {
  size_t pos = 0;
  while (pos < s.size()) {
    const unsigned char b0 = static_cast<unsigned char>(s[pos]);
    if (b0 < 0x80) {
      ++pos;
      continue;
    }
    int len;
    char32_t cp;
    if ((b0 & 0xE0) == 0xC0) {
      len = 2;
      cp = b0 & 0x1F;
    } else if ((b0 & 0xF0) == 0xE0) {
      len = 3;
      cp = b0 & 0x0F;
    } else if ((b0 & 0xF8) == 0xF0) {
      len = 4;
      cp = b0 & 0x07;
    } else {
      return false;  // stray continuation byte or invalid lead
    }
    if (pos + static_cast<size_t>(len) > s.size()) return false;  // truncated
    for (int i = 1; i < len; ++i) {
      const unsigned char b = static_cast<unsigned char>(s[pos + i]);
      if ((b & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (b & 0x3F);
    }
    if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
        (len == 4 && cp < 0x10000) || (cp >= 0xD800 && cp <= 0xDFFF) ||
        cp > 0x10FFFF) {
      return false;  // overlong, surrogate, or beyond U+10FFFF
    }
    pos += static_cast<size_t>(len);
  }
  return true;
}

void AppendCodepoint(char32_t cp, std::string& out) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

std::string EncodeCodepoint(char32_t cp) {
  std::string out;
  AppendCodepoint(cp, out);
  return out;
}

std::vector<std::string> CodepointStrings(std::string_view s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t start = pos;
    DecodeCodepointAt(s, pos);
    out.emplace_back(s.substr(start, pos - start));
  }
  return out;
}

std::vector<char32_t> DecodeString(std::string_view s) {
  std::vector<char32_t> out;
  size_t pos = 0;
  while (pos < s.size()) out.push_back(DecodeCodepointAt(s, pos));
  return out;
}

size_t NumCodepoints(std::string_view s) {
  size_t n = 0;
  size_t pos = 0;
  while (pos < s.size()) {
    DecodeCodepointAt(s, pos);
    ++n;
  }
  return n;
}

std::string SubstrByCodepoint(std::string_view s, size_t cp_index,
                              size_t cp_count) {
  size_t pos = 0;
  size_t idx = 0;
  while (pos < s.size() && idx < cp_index) {
    DecodeCodepointAt(s, pos);
    ++idx;
  }
  const size_t start = pos;
  size_t taken = 0;
  while (pos < s.size() && taken < cp_count) {
    DecodeCodepointAt(s, pos);
    ++taken;
  }
  return std::string(s.substr(start, pos - start));
}

bool IsHanCodepoint(char32_t cp) {
  return (cp >= 0x4E00 && cp <= 0x9FFF) ||  // CJK Unified Ideographs
         (cp >= 0x3400 && cp <= 0x4DBF);    // Extension A
}

bool IsAllHan(std::string_view s) {
  if (s.empty()) return false;
  size_t pos = 0;
  while (pos < s.size()) {
    if (!IsHanCodepoint(DecodeCodepointAt(s, pos))) return false;
  }
  return true;
}

bool IsDigitCodepoint(char32_t cp) {
  return (cp >= '0' && cp <= '9') || (cp >= 0xFF10 && cp <= 0xFF19);
}

}  // namespace cnpb::text
