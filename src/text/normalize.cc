#include "text/normalize.h"

#include "text/utf8.h"

namespace cnpb::text {

std::string NormalizeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) {
    char32_t cp = DecodeCodepointAt(s, pos);
    if (cp == 0x3000) {
      cp = ' ';  // ideographic space
    } else if ((cp >= 0xFF10 && cp <= 0xFF19) ||   // fullwidth digits
               (cp >= 0xFF21 && cp <= 0xFF3A) ||   // fullwidth A-Z
               (cp >= 0xFF41 && cp <= 0xFF5A)) {   // fullwidth a-z
      // Fold fullwidth alphanumerics only; fullwidth punctuation (（）、，)
      // is meaningful to the extractors and stays as-is.
      cp = cp - 0xFF00 + 0x20;
    }
    if (cp >= 'A' && cp <= 'Z') cp = cp - 'A' + 'a';
    AppendCodepoint(cp, out);
  }
  return out;
}

}  // namespace cnpb::text
