#ifndef CNPROBASE_TEXT_UTF8_H_
#define CNPROBASE_TEXT_UTF8_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cnpb::text {

// All Chinese text in the project is UTF-8. These helpers give codepoint-level
// views over byte strings without pulling in ICU.

inline constexpr char32_t kReplacementChar = 0xFFFD;

// Decodes the codepoint starting at s[pos]; advances pos past it. An invalid
// sequence decodes to a single kReplacementChar and advances past the first
// byte plus the run of continuation bytes following it, so one damaged
// multi-byte character never cascades into several replacements.
char32_t DecodeCodepointAt(std::string_view s, size_t& pos);

// Appends the UTF-8 encoding of cp to out.
void AppendCodepoint(char32_t cp, std::string& out);
std::string EncodeCodepoint(char32_t cp);

// Splits a string into per-codepoint substrings ("汉字ab" -> {"汉","字","a","b"}).
std::vector<std::string> CodepointStrings(std::string_view s);

// Decodes the whole string to codepoints.
std::vector<char32_t> DecodeString(std::string_view s);

// Number of codepoints in s.
size_t NumCodepoints(std::string_view s);

// Substring by codepoint index/count (count may exceed the remainder).
std::string SubstrByCodepoint(std::string_view s, size_t cp_index,
                              size_t cp_count);

// True if s is well-formed UTF-8: no truncated, overlong, surrogate, or
// out-of-range sequences. Used to quarantine mangled encyclopedia rows.
bool IsValidUtf8(std::string_view s);

// True for CJK Unified Ideographs (base block + extension A).
bool IsHanCodepoint(char32_t cp);

// True if every codepoint in s is a Han ideograph (and s is non-empty).
bool IsAllHan(std::string_view s);

// True for ASCII digits and fullwidth digits.
bool IsDigitCodepoint(char32_t cp);

}  // namespace cnpb::text

#endif  // CNPROBASE_TEXT_UTF8_H_
