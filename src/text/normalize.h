#ifndef CNPROBASE_TEXT_NORMALIZE_H_
#define CNPROBASE_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace cnpb::text {

// Surface normalisation applied before segmentation/matching, the standard
// first step of a Chinese text pipeline:
//  - fullwidth ASCII (ＡＢＣ０１２) folds to halfwidth,
//  - the ideographic space U+3000 folds to an ASCII space,
//  - ASCII letters lowercase.
// Chinese punctuation (，。《》（）) is preserved — the generators emit it
// and the extractors key on it.
std::string NormalizeText(std::string_view s);

}  // namespace cnpb::text

#endif  // CNPROBASE_TEXT_NORMALIZE_H_
