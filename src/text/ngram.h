#ifndef CNPROBASE_TEXT_NGRAM_H_
#define CNPROBASE_TEXT_NGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cnpb::text {

// Unigram + adjacent-bigram counts over word-segmented sentences, and the
// PMI lookups the separation algorithm (paper §II, Fig. 3) consumes.
//
// PMI(a, b) = log( P(a, b) / (P(a) * P(b)) ), where P(a, b) is the adjacent
// co-occurrence probability. Unseen bigrams get a strong negative value via
// add-epsilon smoothing rather than -inf, so comparisons stay total.
class NgramCounter {
 public:
  // Adds one segmented sentence.
  void AddSentence(const std::vector<std::string>& words);

  uint64_t UnigramCount(std::string_view word) const;
  uint64_t BigramCount(std::string_view left, std::string_view right) const;
  uint64_t total_unigrams() const { return total_unigrams_; }
  uint64_t total_bigrams() const { return total_bigrams_; }
  size_t vocabulary_size() const { return unigrams_.size(); }

  // Pointwise mutual information of the adjacent pair (left, right).
  double Pmi(std::string_view left, std::string_view right) const;

 private:
  static std::string BigramKey(std::string_view left, std::string_view right);

  std::unordered_map<std::string, uint64_t> unigrams_;
  std::unordered_map<std::string, uint64_t> bigrams_;
  uint64_t total_unigrams_ = 0;
  uint64_t total_bigrams_ = 0;
};

}  // namespace cnpb::text

#endif  // CNPROBASE_TEXT_NGRAM_H_
