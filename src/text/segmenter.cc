#include "text/segmenter.h"

#include <cmath>
#include <limits>

#include "text/utf8.h"
#include "util/logging.h"

namespace cnpb::text {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

bool IsAsciiAlnum(char32_t cp) {
  return (cp >= '0' && cp <= '9') || (cp >= 'a' && cp <= 'z') ||
         (cp >= 'A' && cp <= 'Z');
}
}  // namespace

Segmenter::Segmenter(const Lexicon* lexicon) : lexicon_(lexicon) {
  CNPB_CHECK(lexicon != nullptr);
  // An unknown codepoint is penalised below any in-vocabulary word but kept
  // finite so segmentation always succeeds.
  oov_log_prob_ =
      std::log(1.0 / (static_cast<double>(lexicon->total_freq()) + 2.0)) - 4.0;
}

void Segmenter::SegmentHanRun(const std::vector<std::string>& cps,
                              size_t begin, size_t end,
                              std::vector<std::string>& out) const {
  const size_t n = end - begin;
  if (n == 0) return;
  const size_t max_len = lexicon_->max_word_codepoints();

  // best[i]: best log-prob of segmenting cps[begin, begin+i).
  std::vector<double> best(n + 1, kNegInf);
  std::vector<size_t> back(n + 1, 0);
  best[0] = 0.0;
  std::string candidate;
  for (size_t i = 0; i < n; ++i) {
    if (best[i] == kNegInf) continue;
    candidate.clear();
    for (size_t len = 1; len <= max_len && i + len <= n; ++len) {
      candidate += cps[begin + i + len - 1];
      double word_score;
      if (lexicon_->Contains(candidate)) {
        word_score = std::log(lexicon_->Probability(candidate));
      } else if (len == 1) {
        word_score = oov_log_prob_;
      } else {
        continue;  // multi-codepoint OOV words are not hypothesised
      }
      const double score = best[i] + word_score;
      if (score > best[i + len]) {
        best[i + len] = score;
        back[i + len] = i;
      }
    }
  }

  // Recover the path.
  std::vector<std::pair<size_t, size_t>> spans;
  size_t pos = n;
  while (pos > 0) {
    const size_t prev = back[pos];
    spans.emplace_back(prev, pos);
    pos = prev;
  }
  for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
    std::string word;
    for (size_t k = it->first; k < it->second; ++k) word += cps[begin + k];
    out.push_back(std::move(word));
  }
}

std::vector<std::string> Segmenter::Segment(std::string_view sentence) const {
  const std::vector<std::string> cps = CodepointStrings(sentence);
  std::vector<std::string> out;
  size_t i = 0;
  while (i < cps.size()) {
    size_t pos0 = 0;
    const char32_t cp = DecodeCodepointAt(cps[i], pos0);
    if (IsHanCodepoint(cp)) {
      size_t j = i;
      while (j < cps.size()) {
        size_t p = 0;
        if (!IsHanCodepoint(DecodeCodepointAt(cps[j], p))) break;
        ++j;
      }
      SegmentHanRun(cps, i, j, out);
      i = j;
    } else if (IsAsciiAlnum(cp) || IsDigitCodepoint(cp)) {
      // Keep runs of latin/digit as one token (years, English names).
      std::string token;
      size_t j = i;
      while (j < cps.size()) {
        size_t p = 0;
        const char32_t c = DecodeCodepointAt(cps[j], p);
        if (!IsAsciiAlnum(c) && !IsDigitCodepoint(c)) break;
        token += cps[j];
        ++j;
      }
      out.push_back(std::move(token));
      i = j;
    } else if (cp == ' ' || cp == '\t' || cp == '\n' || cp == '\r') {
      ++i;  // drop whitespace
    } else {
      out.push_back(cps[i]);  // punctuation / other symbol
      ++i;
    }
  }
  return out;
}

}  // namespace cnpb::text
