#ifndef CNPROBASE_TEXT_SEGMENTER_H_
#define CNPROBASE_TEXT_SEGMENTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/lexicon.h"

namespace cnpb::text {

// Unigram Viterbi word segmenter. Chinese has no word spaces; the separation
// algorithm (paper §II) assumes a word-segmented noun compound, so this is a
// required substrate.
//
// Dynamic programming over codepoints: best[i] = max over j<i of
// best[j] + log P(word(j..i)), where in-vocabulary words score their unigram
// log-probability and an unknown single codepoint scores a fixed OOV penalty.
// Multi-codepoint OOV words are never hypothesised (they fall apart into
// single codepoints), matching the behaviour of classic dictionary
// segmenters.
class Segmenter {
 public:
  // The lexicon must outlive the segmenter.
  explicit Segmenter(const Lexicon* lexicon);

  // Segments `sentence` into words. Runs of ASCII alnum and runs of digits
  // are kept as single tokens; punctuation becomes its own token.
  std::vector<std::string> Segment(std::string_view sentence) const;

  const Lexicon& lexicon() const { return *lexicon_; }

 private:
  // Segments a run of Han codepoints with the Viterbi DP.
  void SegmentHanRun(const std::vector<std::string>& cps, size_t begin,
                     size_t end, std::vector<std::string>& out) const;

  const Lexicon* lexicon_;
  double oov_log_prob_;
};

}  // namespace cnpb::text

#endif  // CNPROBASE_TEXT_SEGMENTER_H_
