#ifndef CNPROBASE_TEXT_LEXICON_H_
#define CNPROBASE_TEXT_LEXICON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace cnpb::text {

// Coarse part-of-speech tags; enough for the syntax-based verification rules
// and the Probase-Tran POS filter.
enum class Pos : uint8_t {
  kNoun = 0,
  kVerb,
  kAdjective,
  kProperNoun,  // named entities (people/places/orgs)
  kNumeral,
  kParticle,
  kOther,
};

const char* PosName(Pos pos);

// Word dictionary with corpus frequencies and a coarse POS. The segmenter
// consumes the frequencies as a unigram language model; the verification
// module consults the POS.
class Lexicon {
 public:
  struct Entry {
    std::string word;
    uint64_t freq = 1;
    Pos pos = Pos::kNoun;
  };

  // Adds `count` observations of `word` (inserting it if new). The POS of an
  // existing word is kept; for a new word `pos` is recorded.
  void Add(std::string_view word, uint64_t count = 1, Pos pos = Pos::kNoun);

  bool Contains(std::string_view word) const;
  // Frequency of word (0 if absent).
  uint64_t Freq(std::string_view word) const;
  // POS of word; kOther if absent.
  Pos PosOf(std::string_view word) const;

  uint64_t total_freq() const { return total_freq_; }
  size_t size() const { return entries_.size(); }

  // Unigram probability with add-one smoothing over the vocabulary.
  double Probability(std::string_view word) const;

  // Max codepoint length of any word; bounds the segmenter's window.
  size_t max_word_codepoints() const { return max_word_codepoints_; }

  // Iterates all entries in insertion order.
  const std::vector<Entry>& entries() const { return entries_; }

  // TSV persistence: word<TAB>freq<TAB>pos.
  util::Status Save(const std::string& path) const;
  static util::Result<Lexicon> Load(const std::string& path);

 private:
  std::vector<Entry> entries_;
  std::unordered_map<std::string, size_t> index_;
  uint64_t total_freq_ = 0;
  size_t max_word_codepoints_ = 1;
};

}  // namespace cnpb::text

#endif  // CNPROBASE_TEXT_LEXICON_H_
