#include "text/trie_matcher.h"

#include "text/utf8.h"

namespace cnpb::text {

TrieMatcher::TrieMatcher() { nodes_.emplace_back(); }

void TrieMatcher::Add(std::string_view phrase, uint64_t payload) {
  if (phrase.empty()) return;
  uint32_t node = 0;
  for (unsigned char c : phrase) {
    auto it = nodes_[node].children.find(c);
    if (it == nodes_[node].children.end()) {
      const uint32_t next = static_cast<uint32_t>(nodes_.size());
      nodes_[node].children.emplace(c, next);
      nodes_.emplace_back();
      node = next;
    } else {
      node = it->second;
    }
  }
  if (!nodes_[node].terminal) ++num_phrases_;
  nodes_[node].terminal = true;
  nodes_[node].payload = payload;
}

uint32_t TrieMatcher::Walk(std::string_view phrase) const {
  uint32_t node = 0;
  for (unsigned char c : phrase) {
    auto it = nodes_[node].children.find(c);
    if (it == nodes_[node].children.end()) return UINT32_MAX;
    node = it->second;
  }
  return node;
}

bool TrieMatcher::ContainsExact(std::string_view phrase) const {
  const uint32_t node = Walk(phrase);
  return node != UINT32_MAX && nodes_[node].terminal;
}

uint64_t TrieMatcher::PayloadOf(std::string_view phrase) const {
  const uint32_t node = Walk(phrase);
  return (node != UINT32_MAX && nodes_[node].terminal) ? nodes_[node].payload
                                                       : 0;
}

std::vector<TrieMatcher::Match> TrieMatcher::FindAll(std::string_view s) const {
  std::vector<Match> matches;
  size_t pos = 0;
  while (pos < s.size()) {
    // Longest match starting at pos.
    uint32_t node = 0;
    size_t best_end = 0;
    uint64_t best_payload = 0;
    size_t scan = pos;
    while (scan < s.size()) {
      auto it = nodes_[node].children.find(static_cast<unsigned char>(s[scan]));
      if (it == nodes_[node].children.end()) break;
      node = it->second;
      ++scan;
      if (nodes_[node].terminal) {
        best_end = scan;
        best_payload = nodes_[node].payload;
      }
    }
    if (best_end > pos) {
      Match m;
      m.byte_begin = pos;
      m.byte_end = best_end;
      m.payload = best_payload;
      m.text = s.substr(pos, best_end - pos);
      matches.push_back(m);
      pos = best_end;
    } else {
      // Advance one full codepoint so we never split a UTF-8 sequence.
      DecodeCodepointAt(s, pos);
    }
  }
  return matches;
}

}  // namespace cnpb::text
