#include "text/lexicon.h"

#include "text/utf8.h"
#include "util/tsv.h"

namespace cnpb::text {

const char* PosName(Pos pos) {
  switch (pos) {
    case Pos::kNoun:
      return "n";
    case Pos::kVerb:
      return "v";
    case Pos::kAdjective:
      return "a";
    case Pos::kProperNoun:
      return "nr";
    case Pos::kNumeral:
      return "m";
    case Pos::kParticle:
      return "u";
    case Pos::kOther:
      return "x";
  }
  return "x";
}

namespace {
Pos PosFromName(std::string_view name) {
  if (name == "n") return Pos::kNoun;
  if (name == "v") return Pos::kVerb;
  if (name == "a") return Pos::kAdjective;
  if (name == "nr") return Pos::kProperNoun;
  if (name == "m") return Pos::kNumeral;
  if (name == "u") return Pos::kParticle;
  return Pos::kOther;
}
}  // namespace

void Lexicon::Add(std::string_view word, uint64_t count, Pos pos) {
  if (word.empty() || count == 0) {
    total_freq_ += count;
    return;
  }
  auto it = index_.find(std::string(word));
  if (it == index_.end()) {
    Entry entry;
    entry.word = std::string(word);
    entry.freq = count;
    entry.pos = pos;
    index_.emplace(entry.word, entries_.size());
    const size_t cps = NumCodepoints(word);
    if (cps > max_word_codepoints_) max_word_codepoints_ = cps;
    entries_.push_back(std::move(entry));
  } else {
    entries_[it->second].freq += count;
  }
  total_freq_ += count;
}

bool Lexicon::Contains(std::string_view word) const {
  return index_.find(std::string(word)) != index_.end();
}

uint64_t Lexicon::Freq(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? 0 : entries_[it->second].freq;
}

Pos Lexicon::PosOf(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? Pos::kOther : entries_[it->second].pos;
}

double Lexicon::Probability(std::string_view word) const {
  const double numer = static_cast<double>(Freq(word)) + 1.0;
  const double denom =
      static_cast<double>(total_freq_) + static_cast<double>(entries_.size()) + 1.0;
  return numer / denom;
}

util::Status Lexicon::Save(const std::string& path) const {
  util::TsvWriter writer(path);
  if (!writer.status().ok()) return writer.status();
  for (const Entry& entry : entries_) {
    writer.WriteRow({entry.word, std::to_string(entry.freq), PosName(entry.pos)});
  }
  return writer.Close();
}

util::Result<Lexicon> Lexicon::Load(const std::string& path) {
  auto rows = util::ReadTsvFile(path);
  if (!rows.ok()) return rows.status();
  Lexicon lex;
  for (const auto& row : *rows) {
    if (row.size() < 2) {
      return util::InvalidArgumentError("lexicon row needs >= 2 fields");
    }
    const uint64_t freq = std::strtoull(row[1].c_str(), nullptr, 10);
    const Pos pos = row.size() >= 3 ? PosFromName(row[2]) : Pos::kNoun;
    lex.Add(row[0], freq, pos);
  }
  return lex;
}

}  // namespace cnpb::text
