#ifndef CNPROBASE_TEXT_TRIE_MATCHER_H_
#define CNPROBASE_TEXT_TRIE_MATCHER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cnpb::text {

// Byte-level trie for longest-match mention detection. Used by the QA
// coverage experiment ("question contains at least one concept or entity")
// and by the men2ent API's mention detection.
//
// Matching is greedy longest-match, scanning left to right at codepoint
// boundaries; matched spans do not overlap.
class TrieMatcher {
 public:
  struct Match {
    size_t byte_begin = 0;
    size_t byte_end = 0;     // one past the last byte
    uint64_t payload = 0;    // value registered with the phrase
    std::string_view text;   // view into the scanned string
  };

  TrieMatcher();

  // Registers `phrase` with an arbitrary payload (e.g. an entity id). The
  // last registration for a phrase wins. Empty phrases are ignored.
  void Add(std::string_view phrase, uint64_t payload);

  size_t size() const { return num_phrases_; }

  // True if `phrase` was registered exactly.
  bool ContainsExact(std::string_view phrase) const;

  // Payload of an exact phrase; 0 if absent (register non-zero payloads to
  // distinguish).
  uint64_t PayloadOf(std::string_view phrase) const;

  // Finds non-overlapping longest matches in `s`.
  std::vector<Match> FindAll(std::string_view s) const;

 private:
  struct Node {
    std::unordered_map<unsigned char, uint32_t> children;
    bool terminal = false;
    uint64_t payload = 0;
  };

  // Returns node index for phrase end, or UINT32_MAX.
  uint32_t Walk(std::string_view phrase) const;

  std::vector<Node> nodes_;
  size_t num_phrases_ = 0;
};

}  // namespace cnpb::text

#endif  // CNPROBASE_TEXT_TRIE_MATCHER_H_
