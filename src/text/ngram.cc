#include "text/ngram.h"

#include <cmath>

namespace cnpb::text {

std::string NgramCounter::BigramKey(std::string_view left,
                                    std::string_view right) {
  std::string key;
  key.reserve(left.size() + right.size() + 1);
  key.append(left);
  key.push_back('\x01');  // cannot occur inside UTF-8 text
  key.append(right);
  return key;
}

void NgramCounter::AddSentence(const std::vector<std::string>& words) {
  for (size_t i = 0; i < words.size(); ++i) {
    ++unigrams_[words[i]];
    ++total_unigrams_;
    if (i + 1 < words.size()) {
      ++bigrams_[BigramKey(words[i], words[i + 1])];
      ++total_bigrams_;
    }
  }
}

uint64_t NgramCounter::UnigramCount(std::string_view word) const {
  auto it = unigrams_.find(std::string(word));
  return it == unigrams_.end() ? 0 : it->second;
}

uint64_t NgramCounter::BigramCount(std::string_view left,
                                   std::string_view right) const {
  auto it = bigrams_.find(BigramKey(left, right));
  return it == bigrams_.end() ? 0 : it->second;
}

double NgramCounter::Pmi(std::string_view left, std::string_view right) const {
  // Add-epsilon smoothing keeps PMI finite for unseen pairs while preserving
  // the ordering among seen pairs.
  const double eps = 0.1;
  const double n1 = static_cast<double>(total_unigrams_) + eps;
  const double n2 = static_cast<double>(total_bigrams_) + eps;
  const double p_left = (static_cast<double>(UnigramCount(left)) + eps) / n1;
  const double p_right = (static_cast<double>(UnigramCount(right)) + eps) / n1;
  const double p_pair =
      (static_cast<double>(BigramCount(left, right)) + eps * eps) / n2;
  return std::log(p_pair / (p_left * p_right));
}

}  // namespace cnpb::text
