#ifndef CNPROBASE_ROUTER_ROUTER_H_
#define CNPROBASE_ROUTER_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "router/shard_map.h"
#include "server/client.h"
#include "server/http.h"
#include "server/server.h"
#include "util/status.h"

namespace cnpb::router {

// The shard-router tier (DESIGN.md §12, ROADMAP item 2): one HTTP/1.1
// frontend that partitions the three taxonomy APIs across the backends in a
// ShardMap and merges the answers, so clients see a single endpoint with
// the exact wire contract of a lone HttpServer.
//
//   - Single-shot endpoints hash their argument to a shard
//     (hash-by-mention for /v1/men2ent, hash-by-argument for the rest) and
//     forward to one replica, with failover across replicas and hedging: a
//     duplicate request goes to a second replica once the first exceeds a
//     p99-derived delay, and the first answer wins.
//   - Batch endpoints fan out per-shard sub-batches over parallel
//     keep-alive connections (all sends first, then all reads) and merge
//     the sub-results back into input order.
//   - Generation coherence: every backend response carries
//     X-Taxonomy-Version (service.cc); a batch merge whose sub-responses
//     straddle a publish re-fetches the laggard shards a bounded number of
//     times, and refuses (503) rather than mix generations in one response.
//   - Health: request outcomes drive the ShardMap quarantine state
//     machine; a dark shard answers 503, not a hang.
//
// The router's request handler does blocking backend I/O, unlike the
// sub-microsecond in-memory handlers HttpServer was designed around — so a
// router frontend should run with more event-loop threads than a backend
// (Options::server.num_threads defaults higher), and every blocking step is
// bounded by connect/recv deadlines on the hardened HttpClient.
//
// Fault points: `router.connect` (backend connection establishment) and
// `router.backend` (request forwarding) — see the registry in DESIGN.md §8.
class Router {
 public:
  struct Options {
    // Frontend server config. More threads than a backend: each in-flight
    // request holds its loop for the duration of the backend exchange.
    server::HttpServer::Config server;
    // Per-backend-connection deadlines (the hardened HttpClient enforces
    // them); a stalled backend costs at most connect+recv per attempt.
    std::chrono::milliseconds connect_deadline{1000};
    std::chrono::milliseconds recv_deadline{2000};
    // Hedging: after the in-flight request to the primary replica has been
    // outstanding for the hedge delay, send a duplicate to another replica
    // and take whichever answers first. The delay tracks the observed p99
    // forward latency, clamped to [hedge_min, hedge_max]; hedge_initial
    // seeds it before enough samples exist.
    bool hedge = true;
    std::chrono::milliseconds hedge_min{1};
    std::chrono::milliseconds hedge_max{100};
    std::chrono::milliseconds hedge_initial{20};
    // Batch coherence: rounds of laggard-shard re-fetches allowed before a
    // mixed-generation merge is refused with 503.
    int coherence_retries = 2;
    // Idle keep-alive connections pooled per backend.
    size_t max_idle_per_backend = 8;
  };

  struct Stats {
    uint64_t forwarded = 0;         // single-shot requests answered
    uint64_t batches = 0;           // batch requests answered
    uint64_t failovers = 0;         // replica retries after a failure
    uint64_t hedges = 0;            // duplicate requests sent
    uint64_t hedge_wins = 0;        // ... where the duplicate answered first
    uint64_t coherence_retries = 0; // laggard sub-batches re-fetched
    uint64_t mixed_generation_refusals = 0;  // batches 503'd as incoherent
    uint64_t no_backend = 0;        // requests 503'd with the shard dark
  };

  // `shard_map` must outlive the router.
  Router(ShardMap* shard_map, const Options& options);
  ~Router();  // implies Stop() + Wait()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  util::Status Start();
  void Stop();
  void Wait();
  uint16_t port() const;
  const server::HttpServer* server() const { return server_.get(); }

  // The frontend handler; public so unit tests can drive the routing logic
  // without a frontend socket (backends are still reached over HTTP).
  server::HttpResponse Handle(const server::HttpRequest& request);

  Stats stats() const;
  // The current hedge delay (test/diagnostic hook).
  std::chrono::milliseconds hedge_delay() const;

 private:
  // A checked-out backend connection. `reused` distinguishes a pooled
  // keep-alive connection (whose peer may have idle-closed it) from a
  // fresh one, so a first send failure on a reused connection retries on a
  // fresh socket before counting as a backend failure.
  struct Lease {
    std::unique_ptr<server::HttpClient> client;
    size_t shard = 0;
    size_t replica = 0;
    bool reused = false;
  };

  struct Pool {
    std::mutex mu;
    std::vector<std::unique_ptr<server::HttpClient>> idle;
  };

  size_t PoolIndex(size_t shard, size_t replica) const {
    return pool_offsets_[shard] + replica;
  }
  // `allow_reuse` false forces a fresh connection (the stale-pool retry).
  util::Result<Lease> Acquire(size_t shard, size_t replica, bool allow_reuse);
  void Release(Lease lease);

  std::string HostPort(size_t shard, size_t replica) const;
  // Request bytes for a forward to (shard, replica); GETs go through the
  // client's own formatter, anything with a body is built here.
  static std::string BuildRaw(const server::HttpClient& client,
                              std::string_view method, std::string_view target,
                              std::string_view body,
                              std::string_view content_type);

  // One request/response against one replica, no hedging: send (with the
  // stale-pooled-connection retry), read, report the outcome to the shard
  // map. On success the connection returns to the pool.
  util::Result<server::HttpClient::Response> SendTo(
      size_t shard, size_t replica, std::string_view method,
      std::string_view target, std::string_view body,
      std::string_view content_type);

  // SendTo plus hedging: races a duplicate on a second replica when the
  // primary exceeds the hedge delay. `used_replica` reports who answered.
  util::Result<server::HttpClient::Response> SendHedged(
      size_t shard, size_t replica, std::string_view method,
      std::string_view target, int* used_replica);

  server::HttpResponse ForwardSingle(size_t shard,
                                     const server::HttpRequest& request);
  server::HttpResponse ForwardBatch(const server::HttpRequest& request,
                                    std::string_view param);
  server::HttpResponse Healthz();
  server::HttpResponse Metrics();

  // Shard for a single-shot request: hash of the (decoded) routing
  // argument; a missing argument routes to shard 0, whose backend then
  // produces the canonical 400.
  size_t ShardForParam(const server::HttpRequest& request,
                       std::string_view param) const;

  void ObserveForwardLatency(std::chrono::microseconds elapsed);

  ShardMap* const shard_map_;
  const Options options_;
  std::unique_ptr<server::HttpServer> server_;

  std::vector<size_t> pool_offsets_;        // shard -> index into pools_
  std::vector<std::unique_ptr<Pool>> pools_;  // one per backend

  std::atomic<uint64_t> forwarded_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> hedges_{0};
  std::atomic<uint64_t> hedge_wins_{0};
  std::atomic<uint64_t> coherence_retries_{0};
  std::atomic<uint64_t> mixed_refusals_{0};
  std::atomic<uint64_t> no_backend_{0};

  // Power-of-two microsecond buckets of successful forward latencies;
  // every 128 samples the p99 is re-derived into hedge_delay_ms_. Self-
  // contained (not obs::) because hedging must work with metrics disabled.
  static constexpr size_t kLatBuckets = 32;
  std::atomic<uint64_t> lat_buckets_[kLatBuckets] = {};
  std::atomic<uint64_t> lat_count_{0};
  std::atomic<int64_t> hedge_delay_ms_;
};

}  // namespace cnpb::router

#endif  // CNPROBASE_ROUTER_ROUTER_H_
