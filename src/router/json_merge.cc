#include "router/json_merge.h"

#include <cctype>
#include <string>

namespace cnpb::router {

namespace {

// Byte offset just past `"key":` at nesting depth 1 (directly inside the
// top-level object), or npos. Depth/string tracking keeps a key that also
// appears nested inside "results" from matching.
size_t FindTopLevelKey(std::string_view json, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped byte
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (depth == 1 && json.compare(i, needle.size(), needle) == 0) {
          return i + needle.size();
        }
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        --depth;
        break;
      default:
        break;
    }
  }
  return std::string_view::npos;
}

}  // namespace

bool FindJsonUInt(std::string_view json, std::string_view key,
                  uint64_t* out) {
  const size_t pos = FindTopLevelKey(json, key);
  if (pos == std::string_view::npos) return false;
  size_t end = pos;
  while (end < json.size() &&
         std::isdigit(static_cast<unsigned char>(json[end]))) {
    ++end;
  }
  if (end == pos) return false;
  uint64_t value = 0;
  for (size_t i = pos; i < end; ++i) {
    value = value * 10 + static_cast<uint64_t>(json[i] - '0');
  }
  *out = value;
  return true;
}

bool FindJsonArray(std::string_view json, std::string_view key,
                   std::string_view* out) {
  const size_t pos = FindTopLevelKey(json, key);
  if (pos == std::string_view::npos || pos >= json.size() ||
      json[pos] != '[') {
    return false;
  }
  int depth = 0;
  bool in_string = false;
  for (size_t i = pos; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '[':
      case '{':
        ++depth;
        break;
      case ']':
      case '}':
        --depth;
        if (depth == 0) {
          *out = json.substr(pos + 1, i - pos - 1);
          return true;
        }
        break;
      default:
        break;
    }
  }
  return false;  // unterminated
}

std::vector<std::string_view> SplitTopLevelJson(std::string_view contents) {
  std::vector<std::string_view> elements;
  if (contents.empty()) return elements;
  int depth = 0;
  bool in_string = false;
  size_t start = 0;
  for (size_t i = 0; i < contents.size(); ++i) {
    const char c = contents[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '[':
      case '{':
        ++depth;
        break;
      case ']':
      case '}':
        --depth;
        break;
      case ',':
        if (depth == 0) {
          elements.push_back(contents.substr(start, i - start));
          start = i + 1;
        }
        break;
      default:
        break;
    }
  }
  elements.push_back(contents.substr(start));
  return elements;
}

}  // namespace cnpb::router
