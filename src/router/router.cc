#include "router/router.h"

#include <poll.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <optional>
#include <utility>

#include "router/json_merge.h"
#include "server/service.h"
#include "util/fault_injection.h"
#include "util/json.h"
#include "util/net.h"
#include "util/strings.h"

namespace cnpb::router {

namespace {

using server::HttpClient;
using server::HttpRequest;
using server::HttpResponse;
using util::JsonString;
using util::JsonUInt;

// Mirrors the backend cap (service.cc): the router enforces it up front so
// an oversized batch costs one 400, not a fan-out.
constexpr size_t kMaxBatchItems = 256;

// Same JSON error shape the backends emit, so router-originated errors are
// indistinguishable on the wire from backend-originated ones.
HttpResponse ErrorResponse(int status, util::StatusCode code,
                           const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = std::string("{\"error\":{\"code\":") +
                  JsonString(util::StatusCodeName(code)) +
                  ",\"message\":" + JsonString(message) + "}}\n";
  return response;
}

uint64_t VersionOf(const HttpClient::Response& response) {
  uint64_t version = 0;
  util::ParseUint64(response.Header(server::ApiEndpoints::kVersionHeader),
                    &version);
  return version;
}

// Backend response -> frontend response: status + body verbatim, plus the
// headers that are part of the wire contract.
HttpResponse FromBackend(const HttpClient::Response& in) {
  HttpResponse out;
  out.status = in.status;
  out.body = in.body;
  const std::string_view content_type = in.Header("Content-Type");
  if (!content_type.empty()) out.content_type = std::string(content_type);
  for (const char* name : {server::ApiEndpoints::kVersionHeader, "X-Cache",
                           "Retry-After", "Allow"}) {
    const std::string_view value = in.Header(name);
    if (!value.empty()) out.headers.emplace_back(name, std::string(value));
  }
  return out;
}

const char* StateName(ShardMap::State state) {
  switch (state) {
    case ShardMap::State::kHealthy:     return "healthy";
    case ShardMap::State::kQuarantined: return "quarantined";
    case ShardMap::State::kHalfOpen:    return "half_open";
  }
  return "unknown";
}

}  // namespace

Router::Router(ShardMap* shard_map, const Options& options)
    : shard_map_(shard_map),
      options_(options),
      hedge_delay_ms_(options.hedge_initial.count()) {
  size_t total = 0;
  pool_offsets_.reserve(shard_map_->num_shards());
  for (size_t s = 0; s < shard_map_->num_shards(); ++s) {
    pool_offsets_.push_back(total);
    total += shard_map_->num_replicas(s);
  }
  pools_.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    pools_.push_back(std::make_unique<Pool>());
  }
}

Router::~Router() {
  Stop();
  Wait();
}

util::Status Router::Start() {
  server_ = std::make_unique<server::HttpServer>(
      options_.server,
      [this](const HttpRequest& request) { return Handle(request); });
  return server_->Start();
}

void Router::Stop() {
  if (server_ != nullptr) server_->Stop();
}

void Router::Wait() {
  if (server_ != nullptr) server_->Wait();
}

uint16_t Router::port() const {
  return server_ != nullptr ? server_->port() : 0;
}

Router::Stats Router::stats() const {
  Stats stats;
  stats.forwarded = forwarded_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.failovers = failovers_.load(std::memory_order_relaxed);
  stats.hedges = hedges_.load(std::memory_order_relaxed);
  stats.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  stats.coherence_retries = coherence_retries_.load(std::memory_order_relaxed);
  stats.mixed_generation_refusals =
      mixed_refusals_.load(std::memory_order_relaxed);
  stats.no_backend = no_backend_.load(std::memory_order_relaxed);
  return stats;
}

std::chrono::milliseconds Router::hedge_delay() const {
  return std::chrono::milliseconds(
      hedge_delay_ms_.load(std::memory_order_relaxed));
}

util::Result<Router::Lease> Router::Acquire(size_t shard, size_t replica,
                                            bool allow_reuse) {
  Lease lease;
  lease.shard = shard;
  lease.replica = replica;
  Pool& pool = *pools_[PoolIndex(shard, replica)];
  if (allow_reuse) {
    std::lock_guard<std::mutex> lock(pool.mu);
    if (!pool.idle.empty()) {
      lease.client = std::move(pool.idle.back());
      pool.idle.pop_back();
      lease.reused = true;
      return lease;
    }
  }
  CNPB_RETURN_IF_ERROR(util::CheckFault("router.connect"));
  HttpClient::Options client_options;
  client_options.connect_deadline = options_.connect_deadline;
  client_options.recv_deadline = options_.recv_deadline;
  lease.client = std::make_unique<HttpClient>(client_options);
  const ShardMap::Endpoint& endpoint = shard_map_->endpoint(shard, replica);
  CNPB_RETURN_IF_ERROR(lease.client->Connect(endpoint.host, endpoint.port));
  return lease;
}

void Router::Release(Lease lease) {
  if (lease.client == nullptr || !lease.client->connected()) return;
  Pool& pool = *pools_[PoolIndex(lease.shard, lease.replica)];
  std::lock_guard<std::mutex> lock(pool.mu);
  if (pool.idle.size() < options_.max_idle_per_backend) {
    pool.idle.push_back(std::move(lease.client));
  }
}

std::string Router::BuildRaw(const HttpClient& client, std::string_view method,
                             std::string_view target, std::string_view body,
                             std::string_view content_type) {
  if (method == "GET" && body.empty()) return client.FormatGet(target);
  if (method == "POST") return client.FormatPost(target, body, content_type);
  // Anything else is forwarded verbatim so the backend's 405 contract shows
  // through the router unchanged.
  std::string raw;
  raw.append(method);
  raw.push_back(' ');
  raw.append(target);
  raw.append(" HTTP/1.1\r\nHost: router\r\n");
  if (!body.empty()) {
    raw.append(util::StrFormat("Content-Length: %zu\r\n", body.size()));
  }
  raw.append("\r\n");
  raw.append(body);
  return raw;
}

util::Result<HttpClient::Response> Router::SendTo(
    size_t shard, size_t replica, std::string_view method,
    std::string_view target, std::string_view body,
    std::string_view content_type) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    util::Result<Lease> lease = Acquire(shard, replica, attempt == 0);
    if (!lease.ok()) {
      shard_map_->ReportFailure(shard, replica);
      return lease.status();
    }
    const auto start = std::chrono::steady_clock::now();
    util::Status sent = util::CheckFault("router.backend");
    if (sent.ok()) {
      sent = lease->client->SendRaw(
          BuildRaw(*lease->client, method, target, body, content_type));
    }
    if (!sent.ok()) {
      // A pooled keep-alive connection may have been idle-closed by the
      // backend; retry once on a fresh socket before blaming it.
      if (lease->reused && attempt == 0) continue;
      shard_map_->ReportFailure(shard, replica);
      return sent;
    }
    util::Result<HttpClient::Response> response =
        lease->client->ReadResponse();
    if (!response.ok()) {
      if (lease->reused && attempt == 0 &&
          response.status().code() == util::StatusCode::kIoError) {
        continue;  // stale keep-alive race: the send won, the read lost
      }
      shard_map_->ReportFailure(shard, replica);
      return response.status();
    }
    shard_map_->ReportSuccess(shard, replica, VersionOf(*response));
    ObserveForwardLatency(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start));
    Release(std::move(*lease));
    return response;
  }
  return util::IoError("unreachable");  // loop always returns
}

util::Result<HttpClient::Response> Router::SendHedged(
    size_t shard, size_t replica, std::string_view method,
    std::string_view target, int* used_replica) {
  *used_replica = static_cast<int>(replica);
  for (int attempt = 0; attempt < 2; ++attempt) {
    util::Result<Lease> lease = Acquire(shard, replica, attempt == 0);
    if (!lease.ok()) {
      shard_map_->ReportFailure(shard, replica);
      return lease.status();
    }
    const auto start = std::chrono::steady_clock::now();
    util::Status sent = util::CheckFault("router.backend");
    if (sent.ok()) {
      sent = lease->client->SendRaw(
          BuildRaw(*lease->client, method, target, {}, {}));
    }
    if (!sent.ok()) {
      if (lease->reused && attempt == 0) continue;
      shard_map_->ReportFailure(shard, replica);
      return sent;
    }

    // Hedging window: give the primary hedge_delay to produce the first
    // byte; past that, race a duplicate on another replica.
    std::optional<Lease> hedge;
    if (options_.hedge && shard_map_->num_replicas(shard) > 1) {
      bool ready = false;
      const util::Status waited =
          util::WaitReadable(lease->client->fd(), hedge_delay(), &ready);
      if (waited.ok() && !ready) {
        const int second =
            shard_map_->PickReplica(shard, static_cast<int>(replica));
        if (second >= 0) {
          util::Result<Lease> h =
              Acquire(shard, static_cast<size_t>(second), true);
          if (h.ok() &&
              h->client->SendRaw(BuildRaw(*h->client, method, target, {}, {}))
                  .ok()) {
            hedges_.fetch_add(1, std::memory_order_relaxed);
            hedge = std::move(*h);
          } else {
            shard_map_->ReportFailure(shard, static_cast<size_t>(second));
          }
        }
      }
    }

    if (hedge.has_value()) {
      // First readable connection wins; the loser carries an outstanding
      // response and cannot be pooled, so it is closed.
      pollfd pfds[2] = {};
      pfds[0].fd = lease->client->fd();
      pfds[0].events = POLLIN;
      pfds[1].fd = hedge->client->fd();
      pfds[1].events = POLLIN;
      const auto deadline = start + options_.recv_deadline;
      int winner = -1;
      for (;;) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
        if (remaining.count() <= 0) break;
        int rc;
        do {
          rc = ::poll(pfds, 2, static_cast<int>(remaining.count()));
        } while (rc < 0 && errno == EINTR);
        if (rc < 0) break;
        if (rc == 0) continue;  // re-check the deadline
        if (pfds[0].revents != 0) {
          winner = 0;
          break;
        }
        if (pfds[1].revents != 0) {
          winner = 1;
          break;
        }
      }
      if (winner == 1) {
        util::Result<HttpClient::Response> response =
            hedge->client->ReadResponse();
        if (response.ok()) {
          hedge_wins_.fetch_add(1, std::memory_order_relaxed);
          // The primary blew its latency budget — count it as a soft
          // failure so a dead-but-accepting backend trends into
          // quarantine instead of eating a hedge on every request.
          shard_map_->ReportFailure(shard, replica);
          shard_map_->ReportSuccess(shard, hedge->replica,
                                    VersionOf(*response));
          *used_replica = static_cast<int>(hedge->replica);
          lease->client->Close();
          Release(std::move(*hedge));
          return response;
        }
        // The duplicate answered first but unparseably; fall back to the
        // primary, which may still be working on it.
        shard_map_->ReportFailure(shard, hedge->replica);
        hedge.reset();
      } else if (winner == -1) {
        // Neither produced a byte within recv_deadline: both dark.
        shard_map_->ReportFailure(shard, replica);
        shard_map_->ReportFailure(shard, hedge->replica);
        lease->client->Close();
        hedge->client->Close();
        return util::DeadlineExceededError(util::StrFormat(
            "shard %zu: no replica answered within %lld ms", shard,
            static_cast<long long>(options_.recv_deadline.count())));
      }
      // winner == 0 falls through to the primary read below.
    }

    util::Result<HttpClient::Response> response =
        lease->client->ReadResponse();
    if (hedge.has_value()) hedge->client->Close();
    if (!response.ok()) {
      if (!hedge.has_value() && lease->reused && attempt == 0 &&
          response.status().code() == util::StatusCode::kIoError) {
        continue;
      }
      shard_map_->ReportFailure(shard, replica);
      return response.status();
    }
    shard_map_->ReportSuccess(shard, replica, VersionOf(*response));
    if (!hedge.has_value()) {
      ObserveForwardLatency(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start));
    }
    Release(std::move(*lease));
    return response;
  }
  return util::IoError("unreachable");  // loop always returns
}

size_t Router::ShardForParam(const server::HttpRequest& request,
                             std::string_view param) const {
  const std::string_view key = request.Param(param);
  // A missing argument routes to shard 0, whose backend produces the
  // canonical 400 — the router never duplicates the parameter contract.
  return key.empty() ? 0 : shard_map_->ShardForKey(key);
}

HttpResponse Router::ForwardSingle(size_t shard,
                                   const HttpRequest& request) {
  // HEAD is forwarded as GET: the frontend serializer strips the body, and
  // a backend HEAD response (Content-Length with no body) would stall the
  // pooled keep-alive connection.
  const std::string_view method =
      request.method == "HEAD" ? std::string_view("GET") : request.method;
  util::Status last = util::IoError("shard has no live replica");
  int exclude = -1;
  const size_t replicas = std::max<size_t>(shard_map_->num_replicas(shard), 1);
  for (size_t tries = 0; tries < replicas; ++tries) {
    const int replica = shard_map_->PickReplica(shard, exclude);
    if (replica < 0) break;
    if (tries > 0) failovers_.fetch_add(1, std::memory_order_relaxed);
    int used = replica;
    util::Result<HttpClient::Response> response =
        method == "GET"
            ? SendHedged(shard, static_cast<size_t>(replica), method,
                         request.target, &used)
            : SendTo(shard, static_cast<size_t>(replica), method,
                     request.target, request.body,
                     request.Header("Content-Type"));
    if (response.ok()) {
      forwarded_.fetch_add(1, std::memory_order_relaxed);
      return FromBackend(*response);
    }
    last = response.status();
    exclude = replica;
  }
  no_backend_.fetch_add(1, std::memory_order_relaxed);
  return ErrorResponse(
      503, util::StatusCode::kIoError,
      util::StrFormat("shard %zu unavailable: %s", shard,
                      std::string(last.message()).c_str()));
}

HttpResponse Router::ForwardBatch(const HttpRequest& request,
                                  std::string_view param) {
  // Collect items exactly like the backend does (service.cc BatchItems).
  std::vector<std::string> items;
  if (request.method == "POST") {
    for (const std::string& line : util::Split(request.body, '\n')) {
      std::string_view term = line;
      if (!term.empty() && term.back() == '\r') term.remove_suffix(1);
      if (!term.empty()) items.emplace_back(term);
    }
  } else {
    for (const auto& [key, value] : request.params) {
      if (key == param) items.push_back(value);
    }
  }
  if (items.empty()) {
    return ErrorResponse(
        400, util::StatusCode::kInvalidArgument,
        "no " + std::string(param) + " given (repeat ?" + std::string(param) +
            "= or POST one per line)");
  }
  if (items.size() > kMaxBatchItems) {
    return ErrorResponse(
        400, util::StatusCode::kInvalidArgument,
        "batch too large: " + std::to_string(items.size()) + " items (max " +
            std::to_string(kMaxBatchItems) + ")");
  }

  // Pass-through query params (transitive, limit, ...) ride on every
  // sub-batch; the items themselves travel as a POST body.
  std::string target(request.path);
  {
    bool first = true;
    for (const auto& [key, value] : request.params) {
      if (key == param) continue;
      target += first ? '?' : '&';
      first = false;
      target += server::PercentEncode(key);
      target += '=';
      target += server::PercentEncode(value);
    }
  }

  // Group items by owning shard, preserving input order within each group.
  const size_t num_shards = shard_map_->num_shards();
  std::vector<std::vector<size_t>> groups(num_shards);
  for (size_t i = 0; i < items.size(); ++i) {
    groups[shard_map_->ShardForKey(items[i])].push_back(i);
  }
  std::vector<std::string> bodies(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    for (const size_t i : groups[s]) {
      bodies[s] += items[i];
      bodies[s] += '\n';
    }
  }

  const auto fetch_group =
      [&](size_t s) -> util::Result<HttpClient::Response> {
    util::Status last = util::IoError("shard has no live replica");
    int exclude = -1;
    const size_t replicas = std::max<size_t>(shard_map_->num_replicas(s), 1);
    for (size_t tries = 0; tries < replicas; ++tries) {
      const int replica = shard_map_->PickReplica(s, exclude);
      if (replica < 0) break;
      if (tries > 0) failovers_.fetch_add(1, std::memory_order_relaxed);
      util::Result<HttpClient::Response> response =
          SendTo(s, static_cast<size_t>(replica), "POST", target, bodies[s],
                 "text/plain; charset=utf-8");
      if (response.ok()) return response;
      last = response.status();
      exclude = replica;
    }
    return last;
  };

  // Fan-out: pipeline the sends (all sub-POSTs go out before any response
  // is read) so the shards compute concurrently, then read in send order.
  // Any group that fails either phase falls back to sequential failover.
  std::vector<std::optional<HttpClient::Response>> responses(num_shards);
  {
    std::vector<std::pair<size_t, Lease>> in_flight;
    for (size_t s = 0; s < num_shards; ++s) {
      if (groups[s].empty()) continue;
      const int replica = shard_map_->PickReplica(s, -1);
      if (replica < 0) continue;  // sequential fallback handles it
      util::Result<Lease> lease =
          Acquire(s, static_cast<size_t>(replica), true);
      if (!lease.ok()) {
        shard_map_->ReportFailure(s, static_cast<size_t>(replica));
        continue;
      }
      util::Status sent = util::CheckFault("router.backend");
      if (sent.ok()) {
        sent = lease->client->SendRaw(BuildRaw(
            *lease->client, "POST", target, bodies[s],
            "text/plain; charset=utf-8"));
      }
      if (!sent.ok()) {
        shard_map_->ReportFailure(s, static_cast<size_t>(replica));
        continue;
      }
      in_flight.emplace_back(s, std::move(*lease));
    }
    for (auto& [s, lease] : in_flight) {
      util::Result<HttpClient::Response> response =
          lease.client->ReadResponse();
      if (response.ok()) {
        shard_map_->ReportSuccess(s, lease.replica, VersionOf(*response));
        responses[s] = std::move(*response);
        Release(std::move(lease));
      } else {
        shard_map_->ReportFailure(s, lease.replica);
      }
    }
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (groups[s].empty() || responses[s].has_value()) continue;
    util::Result<HttpClient::Response> response = fetch_group(s);
    if (!response.ok()) {
      no_backend_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(
          503, util::StatusCode::kIoError,
          util::StrFormat("shard %zu unavailable: %s", s,
                          std::string(response.status().message()).c_str()));
    }
    responses[s] = std::move(*response);
  }

  // Propagate a backend error (429/400/5xx) for any group verbatim — a
  // partial batch would silently drop items.
  for (size_t s = 0; s < num_shards; ++s) {
    if (responses[s].has_value() && responses[s]->status != 200) {
      return FromBackend(*responses[s]);
    }
  }

  // Publish barrier: every sub-response must come from the same snapshot
  // generation. Laggard shards (publish raced the fan-out) are re-fetched
  // a bounded number of times; a still-mixed merge is refused, never
  // served (a client must not observe shard A at version N merged with
  // shard B at N+1).
  uint64_t max_version = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    if (responses[s].has_value()) {
      max_version = std::max(max_version, VersionOf(*responses[s]));
    }
  }
  for (int round = 0; round < options_.coherence_retries; ++round) {
    bool mixed = false;
    for (size_t s = 0; s < num_shards; ++s) {
      if (!responses[s].has_value()) continue;
      if (VersionOf(*responses[s]) == max_version) continue;
      mixed = true;
      coherence_retries_.fetch_add(1, std::memory_order_relaxed);
      util::Result<HttpClient::Response> refetched = fetch_group(s);
      if (refetched.ok()) {
        responses[s] = std::move(*refetched);
        max_version = std::max(max_version, VersionOf(*responses[s]));
      }
    }
    if (!mixed) break;
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (responses[s].has_value() && VersionOf(*responses[s]) != max_version) {
      mixed_refusals_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(
          503, util::StatusCode::kIoError,
          util::StrFormat(
              "mixed snapshot generations across shards (want %llu, shard "
              "%zu still at %llu) — retry",
              static_cast<unsigned long long>(max_version), s,
              static_cast<unsigned long long>(VersionOf(*responses[s]))));
    }
  }

  // Merge sub-results back into input order. The string_views point into
  // the responses vector, which outlives the assembly below.
  std::vector<std::string_view> merged(items.size());
  for (size_t s = 0; s < num_shards; ++s) {
    if (!responses[s].has_value()) continue;
    std::string_view array;
    if (!FindJsonArray(responses[s]->body, "results", &array)) {
      return ErrorResponse(503, util::StatusCode::kDataLoss,
                           util::StrFormat(
                               "shard %zu returned no results array", s));
    }
    const std::vector<std::string_view> elements = SplitTopLevelJson(array);
    if (elements.size() != groups[s].size()) {
      return ErrorResponse(
          503, util::StatusCode::kDataLoss,
          util::StrFormat("shard %zu returned %zu results for %zu items", s,
                          elements.size(), groups[s].size()));
    }
    for (size_t j = 0; j < elements.size(); ++j) {
      merged[groups[s][j]] = elements[j];
    }
  }
  std::string body = "{\"version\":" + JsonUInt(max_version) +
                     ",\"count\":" + JsonUInt(items.size()) + ",\"results\":[";
  for (size_t i = 0; i < merged.size(); ++i) {
    if (i > 0) body += ',';
    body.append(merged[i]);
  }
  body += "]}\n";
  batches_.fetch_add(1, std::memory_order_relaxed);
  HttpResponse out;
  out.body = std::move(body);
  out.headers.emplace_back(server::ApiEndpoints::kVersionHeader,
                           std::to_string(max_version));
  return out;
}

HttpResponse Router::Healthz() {
  bool degraded = false;
  std::string backends = "[";
  bool first = true;
  for (size_t s = 0; s < shard_map_->num_shards(); ++s) {
    for (size_t r = 0; r < shard_map_->num_replicas(s); ++r) {
      const ShardMap::State state = shard_map_->state(s, r);
      if (state != ShardMap::State::kHealthy) degraded = true;
      const ShardMap::Endpoint& endpoint = shard_map_->endpoint(s, r);
      if (!first) backends += ',';
      first = false;
      backends += "{\"shard\":" + JsonUInt(s) + ",\"replica\":" + JsonUInt(r) +
                  ",\"address\":" +
                  JsonString(util::StrFormat("%s:%u", endpoint.host.c_str(),
                                             unsigned{endpoint.port})) +
                  ",\"state\":" + JsonString(StateName(state)) +
                  ",\"failures\":" +
                  JsonUInt(static_cast<uint64_t>(
                      std::max(0, shard_map_->consecutive_failures(s, r)))) +
                  ",\"version\":" + JsonUInt(shard_map_->last_version(s, r)) +
                  "}";
    }
  }
  backends += "]";
  const Stats stats = this->stats();
  const uint64_t version = shard_map_->MaxVersion();
  HttpResponse response;
  response.body =
      std::string("{\"status\":") +
      JsonString(degraded ? "degraded" : "ok") +
      ",\"role\":\"router\",\"shards\":" + JsonUInt(shard_map_->num_shards()) +
      ",\"version\":" + JsonUInt(version) +
      ",\"stats\":{\"forwarded\":" + JsonUInt(stats.forwarded) +
      ",\"batches\":" + JsonUInt(stats.batches) +
      ",\"failovers\":" + JsonUInt(stats.failovers) +
      ",\"hedges\":" + JsonUInt(stats.hedges) +
      ",\"hedge_wins\":" + JsonUInt(stats.hedge_wins) +
      ",\"coherence_retries\":" + JsonUInt(stats.coherence_retries) +
      ",\"mixed_generation_refusals\":" +
      JsonUInt(stats.mixed_generation_refusals) +
      ",\"no_backend\":" + JsonUInt(stats.no_backend) +
      "},\"backends\":" + backends + "}\n";
  response.headers.emplace_back(server::ApiEndpoints::kVersionHeader,
                                std::to_string(version));
  return response;
}

HttpResponse Router::Metrics() {
  const Stats stats = this->stats();
  std::string body;
  const auto counter = [&body](const char* name, uint64_t value) {
    body += util::StrFormat("# TYPE %s counter\n%s %llu\n", name, name,
                            static_cast<unsigned long long>(value));
  };
  counter("router_forwarded_total", stats.forwarded);
  counter("router_batches_total", stats.batches);
  counter("router_failovers_total", stats.failovers);
  counter("router_hedges_total", stats.hedges);
  counter("router_hedge_wins_total", stats.hedge_wins);
  counter("router_coherence_retries_total", stats.coherence_retries);
  counter("router_mixed_generation_refusals_total",
          stats.mixed_generation_refusals);
  counter("router_no_backend_total", stats.no_backend);
  body += util::StrFormat(
      "# TYPE router_hedge_delay_ms gauge\nrouter_hedge_delay_ms %lld\n",
      static_cast<long long>(hedge_delay().count()));
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = std::move(body);
  return response;
}

HttpResponse Router::Handle(const HttpRequest& request) {
  const std::string& path = request.path;
  if (path == "/healthz") return Healthz();
  if (path == "/metrics") return Metrics();
  if (path == "/v1/collections") return ForwardSingle(0, request);

  // Multi-collection prefix (/v1/c/<name>/<endpoint>): the router sees the
  // same endpoint table behind a collection prefix and routes by the same
  // key parameter, forwarding the prefixed target verbatim so the backend's
  // CollectionManager resolves the collection. Suffix-less forms (the
  // collection info page) and endpoints with no routing key go to shard 0 —
  // the backend owns the endpoint contract, the router only picks a shard.
  std::string_view route = path;
  bool prefixed = false;
  if (util::StartsWith(path, "/v1/c/")) {
    prefixed = true;
    const std::string_view rest = std::string_view(path).substr(6);
    const size_t slash = rest.find('/');
    if (slash == std::string_view::npos) return ForwardSingle(0, request);
    route = rest.substr(slash);
    if (route == "/" || route == "/healthz" || route == "/metrics") {
      return ForwardSingle(0, request);
    }
  } else if (util::StartsWith(path, "/v1/")) {
    route = std::string_view(path).substr(3);
  } else {
    return ErrorResponse(404, util::StatusCode::kNotFound,
                         "no such endpoint: " + path);
  }
  if (route == "/men2ent") {
    return ForwardSingle(ShardForParam(request, "mention"), request);
  }
  if (route == "/getConcept" || route == "/isa" || route == "/similar") {
    return ForwardSingle(ShardForParam(request, "entity"), request);
  }
  if (route == "/getEntity" || route == "/expand") {
    return ForwardSingle(ShardForParam(request, "concept"), request);
  }
  if (route == "/lca") {
    return ForwardSingle(ShardForParam(request, "a"), request);
  }
  if (route == "/men2ent_batch") return ForwardBatch(request, "mention");
  if (route == "/getConcept_batch") return ForwardBatch(request, "entity");
  if (route == "/getEntity_batch") return ForwardBatch(request, "concept");
  if (prefixed) return ForwardSingle(0, request);
  return ErrorResponse(404, util::StatusCode::kNotFound,
                       "no such endpoint: " + path);
}

void Router::ObserveForwardLatency(std::chrono::microseconds elapsed) {
  const uint64_t us =
      static_cast<uint64_t>(std::max<int64_t>(elapsed.count(), 1));
  const size_t bucket = std::min<size_t>(
      kLatBuckets - 1, static_cast<size_t>(std::bit_width(us)) - 1);
  lat_buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  const uint64_t n = lat_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if ((n & 127) != 0) return;
  uint64_t counts[kLatBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kLatBuckets; ++i) {
    counts[i] = lat_buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return;
  const uint64_t rank = total - total / 100;  // p99 (ceil)
  uint64_t cumulative = 0;
  size_t idx = kLatBuckets - 1;
  for (size_t i = 0; i < kLatBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      idx = i;
      break;
    }
  }
  // Bucket idx spans [2^idx, 2^(idx+1)) µs; hedge at its upper bound.
  int64_t delay_ms = ((int64_t{1} << std::min<size_t>(idx + 1, 40)) + 999) /
                     1000;
  delay_ms = std::clamp(delay_ms, options_.hedge_min.count(),
                        options_.hedge_max.count());
  hedge_delay_ms_.store(delay_ms, std::memory_order_relaxed);
}

}  // namespace cnpb::router
