#include "router/shard_map.h"

#include <algorithm>

#include "util/hash.h"
#include "util/strings.h"

namespace cnpb::router {
namespace {

// Finalizer (the murmur3 fmix64 constants) over the FNV-1a hash. FNV alone
// has weak high-bit avalanche: strings sharing a prefix and differing only
// in a trailing byte or two ("entity1200".."entity1299") land within a
// narrow band of the 64-bit space, and the ring lookup — dominated by the
// high bits — then sends whole runs of similar keys to one shard. The mix
// makes every input bit reach every output bit.
uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

uint64_t RingHash(std::string_view s) { return Mix64(util::Fnv1a64(s)); }

}  // namespace

ShardMap::ShardMap(std::vector<std::vector<Endpoint>> shards,
                   const Options& options)
    : options_(options), shards_(std::move(shards)) {
  offsets_.reserve(shards_.size());
  size_t total = 0;
  for (const auto& replicas : shards_) {
    offsets_.push_back(total);
    total += replicas.size();
  }
  backends_ = std::vector<Backend>(total);
  rr_.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    rr_.push_back(std::make_unique<std::atomic<uint32_t>>(0));
  }
  ring_.reserve(shards_.size() * options_.vnodes_per_shard);
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t v = 0; v < options_.vnodes_per_shard; ++v) {
      // The vnode label (not the endpoint list) feeds the hash, so the
      // ring — and therefore key placement — is identical for every router
      // looking at the same shard count, regardless of replica addresses.
      const uint64_t point =
          RingHash(util::StrFormat("shard%zu#%zu", s, v));
      ring_.emplace_back(point, static_cast<uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int64_t ShardMap::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

size_t ShardMap::ShardForKey(std::string_view key) const {
  if (shards_.size() == 1 || ring_.empty()) return 0;
  const uint64_t h = RingHash(key);
  // First vnode at or after h, wrapping past the top of the ring.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, uint32_t{0}));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

int ShardMap::PickReplica(size_t shard, int exclude) {
  const size_t n = shards_[shard].size();
  if (n == 0) return -1;
  const uint32_t start = rr_[shard]->fetch_add(1, std::memory_order_relaxed);
  // Healthy pass: round-robin over replicas under the failure threshold.
  for (size_t i = 0; i < n; ++i) {
    const size_t r = (start + i) % n;
    if (static_cast<int>(r) == exclude) continue;
    const Backend& b = backend(shard, r);
    if (b.consecutive_failures.load(std::memory_order_relaxed) <
        options_.quarantine_failures) {
      return static_cast<int>(r);
    }
  }
  // No healthy replica: admit one probe to a half-open backend. The CAS
  // makes the probe exclusive — concurrent requests to a dark shard do not
  // stampede a barely-recovered process.
  const int64_t now = NowMs();
  for (size_t i = 0; i < n; ++i) {
    const size_t r = (start + i) % n;
    if (static_cast<int>(r) == exclude) continue;
    Backend& b = backend(shard, r);
    if (now < b.quarantined_until_ms.load(std::memory_order_relaxed)) {
      continue;
    }
    bool expected = false;
    if (b.probe_in_flight.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      return static_cast<int>(r);
    }
  }
  return -1;
}

void ShardMap::ReportSuccess(size_t shard, size_t replica, uint64_t version) {
  Backend& b = backend(shard, replica);
  b.consecutive_failures.store(0, std::memory_order_relaxed);
  b.quarantined_until_ms.store(0, std::memory_order_relaxed);
  b.probe_in_flight.store(false, std::memory_order_release);
  if (version != 0) {
    b.last_version.store(version, std::memory_order_relaxed);
  }
}

void ShardMap::ReportFailure(size_t shard, size_t replica) {
  Backend& b = backend(shard, replica);
  const int failures =
      b.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failures >= options_.quarantine_failures) {
    b.quarantined_until_ms.store(
        NowMs() + options_.quarantine_period.count(),
        std::memory_order_relaxed);
  }
  b.probe_in_flight.store(false, std::memory_order_release);
}

ShardMap::State ShardMap::state(size_t shard, size_t replica) const {
  const Backend& b = backend(shard, replica);
  if (b.consecutive_failures.load(std::memory_order_relaxed) <
      options_.quarantine_failures) {
    return State::kHealthy;
  }
  return NowMs() < b.quarantined_until_ms.load(std::memory_order_relaxed)
             ? State::kQuarantined
             : State::kHalfOpen;
}

int ShardMap::consecutive_failures(size_t shard, size_t replica) const {
  return backend(shard, replica)
      .consecutive_failures.load(std::memory_order_relaxed);
}

uint64_t ShardMap::last_version(size_t shard, size_t replica) const {
  return backend(shard, replica).last_version.load(std::memory_order_relaxed);
}

uint64_t ShardMap::MaxVersion() const {
  uint64_t max_version = 0;
  for (const Backend& b : backends_) {
    max_version =
        std::max(max_version, b.last_version.load(std::memory_order_relaxed));
  }
  return max_version;
}

}  // namespace cnpb::router
