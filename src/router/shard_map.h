#ifndef CNPROBASE_ROUTER_SHARD_MAP_H_
#define CNPROBASE_ROUTER_SHARD_MAP_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cnpb::router {

// Static cluster topology + per-backend health for the router tier
// (DESIGN.md §12; gigablast's Hostdb is the shape). The taxonomy keyspace
// is partitioned across `num_shards()` shards by consistent hash
// (hash-by-mention for men2ent, hash-by-argument for getConcept/getEntity);
// each shard is served by one or more replica backends.
//
// Health is a tiny per-backend state machine driven by the router's
// request outcomes, all lock-free:
//
//   HEALTHY ──(quarantine_failures consecutive failures)──▶ QUARANTINED
//   QUARANTINED ──(quarantine_period elapses)──▶ HALF_OPEN
//   HALF_OPEN ──(one probe request allowed; success)──▶ HEALTHY
//   HALF_OPEN ──(probe fails)──▶ QUARANTINED (fresh period)
//
// PickReplica prefers healthy replicas round-robin; when a shard has none,
// it admits exactly one in-flight probe to a half-open backend (CAS on
// probe_in_flight), so a recovering backend sees a trickle, not a stampede.
class ShardMap {
 public:
  struct Endpoint {
    std::string host;
    uint16_t port = 0;
  };

  struct Options {
    // Consecutive failures that trip a backend into quarantine.
    int quarantine_failures = 3;
    // How long a tripped backend sits out before a probe is allowed.
    std::chrono::milliseconds quarantine_period{1000};
    // Ring points per shard; 64 keeps the max/min shard load ratio under
    // ~1.3 for realistic shard counts.
    size_t vnodes_per_shard = 64;
  };

  enum class State { kHealthy, kQuarantined, kHalfOpen };

  // `shards[s]` lists the replica endpoints serving shard s. Topology is
  // fixed after construction; only health state mutates.
  ShardMap(std::vector<std::vector<Endpoint>> shards, const Options& options);

  ShardMap(const ShardMap&) = delete;
  ShardMap& operator=(const ShardMap&) = delete;

  size_t num_shards() const { return shards_.size(); }
  size_t num_replicas(size_t shard) const { return shards_[shard].size(); }
  const Endpoint& endpoint(size_t shard, size_t replica) const {
    return shards_[shard][replica];
  }
  const Options& options() const { return options_; }

  // The shard owning `key` on the consistent-hash ring. Deterministic
  // across processes and runs (FNV-1a vnodes), so every router instance
  // agrees on placement.
  size_t ShardForKey(std::string_view key) const;

  // Picks a replica of `shard` to send to: healthy replicas round-robin,
  // else one half-open probe, else -1 (shard dark). `exclude` (or -1 for
  // none) skips a replica that already failed this request.
  int PickReplica(size_t shard, int exclude);

  // Request-outcome feedback. ReportSuccess also records the snapshot
  // version the backend answered with (0 = unknown / not stamped).
  void ReportSuccess(size_t shard, size_t replica, uint64_t version);
  void ReportFailure(size_t shard, size_t replica);

  State state(size_t shard, size_t replica) const;
  int consecutive_failures(size_t shard, size_t replica) const;
  // Last version seen from this backend (0 until its first success).
  uint64_t last_version(size_t shard, size_t replica) const;
  // Max version any backend has answered with — the cluster's newest
  // published generation, the coherence target for batch merges.
  uint64_t MaxVersion() const;

 private:
  struct Backend {
    std::atomic<int> consecutive_failures{0};
    // steady_clock ms; backend is quarantined while now < this.
    std::atomic<int64_t> quarantined_until_ms{0};
    std::atomic<bool> probe_in_flight{false};
    std::atomic<uint64_t> last_version{0};
  };

  static int64_t NowMs();
  Backend& backend(size_t shard, size_t replica) {
    return backends_[offsets_[shard] + replica];
  }
  const Backend& backend(size_t shard, size_t replica) const {
    return backends_[offsets_[shard] + replica];
  }

  const Options options_;
  const std::vector<std::vector<Endpoint>> shards_;
  std::vector<size_t> offsets_;     // shard -> index into backends_
  std::vector<Backend> backends_;   // flat, fixed after construction
  std::vector<std::unique_ptr<std::atomic<uint32_t>>> rr_;  // per-shard
  // Sorted (ring position, shard) vnode points.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
};

}  // namespace cnpb::router

#endif  // CNPROBASE_ROUTER_SHARD_MAP_H_
