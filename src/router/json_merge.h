#ifndef CNPROBASE_ROUTER_JSON_MERGE_H_
#define CNPROBASE_ROUTER_JSON_MERGE_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace cnpb::router {

// Minimal structural helpers for re-assembling backend batch responses.
// These are NOT a JSON parser: the input is the router's own backends'
// output (src/server/service.cc), which is trusted and schema-stable —
// top-level "version"/"results" keys, string values produced by
// util::JsonString (escaped, never containing raw quotes). The helpers are
// still string- and escape-aware so a Chinese mention containing '[' or
// '{' cannot desync the bracket matching.

// Finds `"key":<digits>` at the top level of `json` and parses the digits.
// False when the key is absent or the value is not an unsigned integer.
bool FindJsonUInt(std::string_view json, std::string_view key, uint64_t* out);

// Finds `"key":[...]` and returns the contents between the brackets
// (exclusive) in *out. Bracket matching skips strings and escapes.
bool FindJsonArray(std::string_view json, std::string_view key,
                   std::string_view* out);

// Splits the contents of a JSON array into its top-level elements
// (comma-separated at depth 0, string-aware). Whitespace is not trimmed —
// the backends emit none. An empty input yields an empty vector.
std::vector<std::string_view> SplitTopLevelJson(std::string_view contents);

}  // namespace cnpb::router

#endif  // CNPROBASE_ROUTER_JSON_MERGE_H_
