#!/usr/bin/env bash
# Ingest daemon smoke test for CI: the crash-safety contract, end to end.
#
#   1. boot cnprobase_ingestd with a fresh WAL dir
#   2. feed page upserts through POST /v1/ingest (every 200 = durable ack)
#   3. SIGKILL the daemon mid-stream — no drain, no cleanup
#   4. restart on the same WAL dir; recovery must replay the suffix
#   5. verify via the API that NO acked page is lost and none is duplicated
#   6. SIGTERM: graceful drain must exit 0
#
# Usage: ci/ingest_smoke.sh <path-to-cnprobase_ingestd>
set -euo pipefail

INGESTD_BIN=${1:?usage: ingest_smoke.sh <path-to-cnprobase_ingestd>}
WORK=$(mktemp -d)
LOG="$WORK/ingestd.log"
INGESTD_PID=""
trap 'kill -9 "$INGESTD_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

boot() {
  : >"$LOG"
  "$INGESTD_BIN" --wal-dir "$WORK/wal" --entities 400 --threads 2 \
    --publish-min-pages 4 --publish-max-delay-ms 50 --compact-every 6 \
    >"$LOG" 2>&1 &
  INGESTD_PID=$!
  for _ in $(seq 1 240); do
    grep -q "listening on" "$LOG" && break
    kill -0 "$INGESTD_PID" 2>/dev/null || { cat "$LOG"; echo "daemon died during startup" >&2; exit 1; }
    sleep 0.5
  done
  grep -q "listening on" "$LOG" || { cat "$LOG"; echo "daemon never started listening" >&2; exit 1; }
  PORT=$(grep -o 'listening on http://127.0.0.1:[0-9]*' "$LOG" | grep -o '[0-9]*$')
  BASE="http://127.0.0.1:$PORT"
}

# ingest <lines>: POST and require a durable ack (200 + last_lsn).
ingest() {
  local body code
  body=$(curl -sS -w '\n%{http_code}' --data-binary "$1" "$BASE/v1/ingest")
  code=${body##*$'\n'}
  body=${body%$'\n'*}
  if [ "$code" != 200 ]; then
    echo "FAIL ingest: HTTP $code — $body" >&2; exit 1
  fi
  case $body in
    *'"last_lsn":'*) : ;;
    *) echo "FAIL ingest: no last_lsn in $body" >&2; exit 1 ;;
  esac
}

# getconcept <entity>: prints the concepts JSON array for an entity.
getconcept() {
  curl -sS -G "$BASE/v1/getConcept" --data-urlencode "entity=$1"
}

boot
echo "phase 1: daemon on port $PORT, feeding acked upserts"

# Pages with explicit tag-derived relations; smoke_cat is the oracle
# concept. Names are ASCII for curl convenience — CJK round-trips are
# covered by wal_test.
ACKED=()
for i in $(seq 1 10); do
  ingest "$(printf 'u\tsmoke_ent_%d\tsmoke_ent_%d\t\t\t\tsmoke_cat' "$i" "$i")"
  ACKED+=("smoke_ent_$i")
done
# A duplicate re-submission of an already-acked page: must remain one page.
ingest "$(printf 'u\tsmoke_ent_1\tsmoke_ent_1\t\t\t\tsmoke_cat')"

echo "phase 2: SIGKILL mid-batch (no drain)"
# One more ack right before the kill so the WAL tail is fresh.
ingest "$(printf 'u\tsmoke_ent_11\tsmoke_ent_11\t\t\t\tsmoke_cat')"
ACKED+=("smoke_ent_11")
kill -9 "$INGESTD_PID"
wait "$INGESTD_PID" 2>/dev/null || true

echo "phase 3: restart on the same WAL dir"
boot
grep -q "recovered wal" "$LOG" || { cat "$LOG"; echo "FAIL: no recovery line" >&2; exit 1; }

echo "phase 4: verify no acked page lost, none duplicated"
sleep 1  # allow the post-recovery publish to land
for name in "${ACKED[@]}"; do
  concepts=$(getconcept "$name")
  case $concepts in
    *smoke_cat*) : ;;
    *) cat "$LOG"; echo "FAIL: acked page $name lost after crash ($concepts)" >&2; exit 1 ;;
  esac
done
# Duplicate check: the re-submitted page must resolve to exactly one entity.
dup=$(curl -sS -G "$BASE/v1/getEntity" --data-urlencode "concept=smoke_cat" --data-urlencode "limit=100" \
      | grep -o 'smoke_ent_1"' | wc -l)
[ "$dup" = 1 ] || { echo "FAIL: smoke_ent_1 appears $dup times (dup apply)" >&2; exit 1; }

# The daemon keeps accepting after recovery.
ingest "$(printf 'u\tsmoke_ent_12\tsmoke_ent_12\t\t\t\tsmoke_cat')"
status=$(curl -sS "$BASE/v1/ingest_status")
case $status in
  *'"acked":'*) echo "ok   ingest_status: $status" ;;
  *) echo "FAIL ingest_status: $status" >&2; exit 1 ;;
esac

echo "phase 5: graceful drain"
kill -TERM "$INGESTD_PID"
EXIT=0
wait "$INGESTD_PID" || EXIT=$?
if [ "$EXIT" != 0 ]; then
  cat "$LOG"; echo "FAIL: daemon exited $EXIT after SIGTERM" >&2; exit 1
fi
grep -q "drained:" "$LOG" || { cat "$LOG"; echo "FAIL: no drain summary" >&2; exit 1; }
echo "ingest smoke: all checks passed"
