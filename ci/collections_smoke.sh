#!/usr/bin/env bash
# Multi-collection smoke test for CI: two taxonomies (site-split synth
# worlds) in one process, end to end.
#
#   1. boot cnprobase_collections with a fresh --root (site_a read-only,
#      site_b ingest-enabled)
#   2. reasoning queries (isa / lca / similar / expand) on BOTH collections,
#      version-stamped; bare paths must answer byte-identically to the
#      /v1/c/site_a/ prefix (site_a is the default collection)
#   3. ingest pages into site_b only, wait for apply + publish
#   4. isolation: site_b's version moved, site_a's did not — and the new
#      pages are visible only under site_b
#   5. SIGTERM: graceful drain must exit 0
#
# Usage: ci/collections_smoke.sh <path-to-cnprobase_collections>
set -euo pipefail

BIN=${1:?usage: collections_smoke.sh <path-to-cnprobase_collections>}
WORK=$(mktemp -d)
LOG="$WORK/collections.log"
PID=""
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

: >"$LOG"
"$BIN" --root "$WORK/root" --entities 500 --threads 2 \
  --publish-min-pages 2 --publish-max-delay-ms 50 >"$LOG" 2>&1 &
PID=$!
for _ in $(seq 1 240); do
  grep -q "listening on" "$LOG" && break
  kill -0 "$PID" 2>/dev/null || { cat "$LOG"; echo "server died during startup" >&2; exit 1; }
  sleep 0.5
done
grep -q "listening on" "$LOG" || { cat "$LOG"; echo "server never started listening" >&2; exit 1; }
PORT=$(grep -o 'listening on http://127.0.0.1:[0-9]*' "$LOG" | grep -o '[0-9]*$')
BASE="http://127.0.0.1:$PORT"
echo "collections server on port $PORT"

# sample <collection> <field>: the printed per-collection query targets
# (fields: 3=entity 4=concept 5=ancestor 6=sibling).
sample() {
  grep -P "^sample\t$1\t" "$LOG" | head -1 | cut -f"$2"
}

# get <path> [--data-urlencode k=v ...]: prints "<code>\t<body>".
get() {
  local path=$1; shift
  curl -sS -G -w '\t%{http_code}' "$@" "$BASE$path"
}

# require <label> <expected-code> <body-must-contain> <path> [curl args...]
require() {
  local label=$1 code=$2 needle=$3 path=$4; shift 4
  local out body got
  out=$(get "$path" "$@")
  got=${out##*$'\t'}
  body=${out%$'\t'*}
  if [ "$got" != "$code" ]; then
    echo "FAIL $label: HTTP $got (want $code) — $body" >&2; exit 1
  fi
  case $body in
    *"$needle"*) : ;;
    *) echo "FAIL $label: body missing '$needle' — $body" >&2; exit 1 ;;
  esac
}

# version <collection>: the collection's current version stamp.
version() {
  get "/v1/c/$1" | sed -n 's/.*"version":\([0-9]*\).*/\1/p'
}

echo "phase 1: both collections registered"
require collections 200 '"name":"site_a"' /v1/collections
require collections 200 '"name":"site_b"' /v1/collections

echo "phase 2: reasoning queries on both collections"
for SITE in site_a site_b; do
  ENTITY=$(sample "$SITE" 3)
  CONCEPT=$(sample "$SITE" 4)
  ANCESTOR=$(sample "$SITE" 5)
  SIBLING=$(sample "$SITE" 6)
  [ -n "$ENTITY" ] && [ "$ENTITY" != "-" ] || { echo "FAIL: no sample for $SITE" >&2; exit 1; }
  require "$SITE isa parent" 200 '"isa":true' "/v1/c/$SITE/isa" \
    --data-urlencode "entity=$ENTITY" --data-urlencode "concept=$CONCEPT"
  require "$SITE isa ancestor" 200 '"isa":true' "/v1/c/$SITE/isa" \
    --data-urlencode "entity=$ENTITY" --data-urlencode "concept=$ANCESTOR"
  require "$SITE lca" 200 '"found":true' "/v1/c/$SITE/lca" \
    --data-urlencode "a=$ENTITY" --data-urlencode "b=$SIBLING"
  require "$SITE similar" 200 '"results":' "/v1/c/$SITE/similar" \
    --data-urlencode "entity=$ENTITY"
  require "$SITE expand" 200 '"children":' "/v1/c/$SITE/expand" \
    --data-urlencode "concept=$CONCEPT"
  # Every reasoning answer is version-stamped from the pinned snapshot.
  STAMP=$(curl -sS -G -D - -o /dev/null "$BASE/v1/c/$SITE/isa" \
    --data-urlencode "entity=$ENTITY" --data-urlencode "concept=$CONCEPT" \
    | grep -i '^X-Taxonomy-Version:' | tr -d '[:space:]' | cut -d: -f2)
  [ -n "$STAMP" ] || { echo "FAIL: $SITE isa has no version stamp" >&2; exit 1; }
done

echo "phase 3: bare paths == /v1/c/site_a/ prefix (default collection)"
ENTITY=$(sample site_a 3)
CONCEPT=$(sample site_a 4)
BARE=$(get /v1/isa --data-urlencode "entity=$ENTITY" --data-urlencode "concept=$CONCEPT")
PREFIXED=$(get /v1/c/site_a/isa --data-urlencode "entity=$ENTITY" --data-urlencode "concept=$CONCEPT")
if [ "$BARE" != "$PREFIXED" ]; then
  echo "FAIL: bare and prefixed default answers differ" >&2
  echo "  bare:     $BARE" >&2
  echo "  prefixed: $PREFIXED" >&2
  exit 1
fi

A_BEFORE=$(version site_a)
B_BEFORE=$(version site_b)
echo "phase 4: ingest into site_b only (site_a v$A_BEFORE, site_b v$B_BEFORE)"
BODY=$(printf 'u\tsmoke_x1\tsmoke_x1\t\t\t\tsmoke_cat\nu\tsmoke_x2\tsmoke_x2\t\t\t\tsmoke_cat\n')
OUT=$(curl -sS -w '\n%{http_code}' --data-binary "$BODY" "$BASE/v1/c/site_b/ingest")
CODE=${OUT##*$'\n'}
[ "$CODE" = 200 ] || { echo "FAIL ingest: HTTP $CODE — $OUT" >&2; exit 1; }
case $OUT in
  *'"accepted":2'*) : ;;
  *) echo "FAIL ingest: expected 2 accepted — $OUT" >&2; exit 1 ;;
esac

for _ in $(seq 1 120); do
  OUT=$(get /v1/c/site_b/getEntity --data-urlencode "concept=smoke_cat")
  case $OUT in *smoke_x1*smoke_x2*) break ;; esac
  sleep 0.25
done
case $OUT in
  *smoke_x1*smoke_x2*) : ;;
  *) echo "FAIL: ingested pages never published into site_b — $OUT" >&2; exit 1 ;;
esac

echo "phase 5: isolation — site_a untouched"
A_AFTER=$(version site_a)
B_AFTER=$(version site_b)
[ "$A_AFTER" = "$A_BEFORE" ] || { echo "FAIL: site_a version moved $A_BEFORE -> $A_AFTER" >&2; exit 1; }
[ "$B_AFTER" -gt "$B_BEFORE" ] || { echo "FAIL: site_b version never advanced ($B_BEFORE -> $B_AFTER)" >&2; exit 1; }
require "site_a isolation" 404 'unknown entity' /v1/c/site_a/isa \
  --data-urlencode "entity=smoke_x1" --data-urlencode "concept=smoke_cat"
require "site_b reasoning over ingested page" 200 '"isa":true' /v1/c/site_b/isa \
  --data-urlencode "entity=smoke_x1" --data-urlencode "concept=smoke_cat"

echo "phase 6: SIGTERM drain"
kill -TERM "$PID"
for _ in $(seq 1 240); do
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.25
done
if kill -0 "$PID" 2>/dev/null; then
  echo "FAIL: server did not exit after SIGTERM" >&2; exit 1
fi
wait "$PID" && RC=0 || RC=$?
[ "$RC" = 0 ] || { cat "$LOG"; echo "FAIL: drain exited $RC" >&2; exit 1; }
grep -q "drained:" "$LOG" || { cat "$LOG"; echo "FAIL: no drain line" >&2; exit 1; }
echo "PASS: collections smoke (site_a v$A_AFTER stable, site_b v$B_BEFORE -> v$B_AFTER)"
