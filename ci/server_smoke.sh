#!/usr/bin/env bash
# Server smoke test for CI: start cnprobase_serve on an ephemeral port, hit
# all five endpoints with curl, check the JSON answers, then SIGTERM and
# require a graceful exit 0 (drain, not a kill). Usage:
#
#   ci/server_smoke.sh <path-to-cnprobase_serve>
set -euo pipefail

SERVE_BIN=${1:?usage: server_smoke.sh <path-to-cnprobase_serve>}
LOG=$(mktemp)
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

"$SERVE_BIN" --entities 800 --threads 2 >"$LOG" 2>&1 &
SERVE_PID=$!

# Wait for the listener (the taxonomy build takes a few seconds).
for _ in $(seq 1 240); do
  grep -q "listening on" "$LOG" && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$LOG"; echo "server died during startup" >&2; exit 1; }
  sleep 0.5
done
grep -q "listening on" "$LOG" || { cat "$LOG"; echo "server never started listening" >&2; exit 1; }

PORT=$(grep -o 'listening on http://127.0.0.1:[0-9]*' "$LOG" | grep -o '[0-9]*$')
MENTION=$(grep '^sample_mention=' "$LOG" | head -1 | cut -d= -f2-)
ENTITY=$(grep '^sample_entity=' "$LOG" | head -1 | cut -d= -f2-)
CONCEPT=$(grep '^sample_concept=' "$LOG" | head -1 | cut -d= -f2-)
echo "serving on port $PORT (mention=$MENTION entity=$ENTITY concept=$CONCEPT)"

# fetch <name> <expected-substring> <url...>: 200 + body contains substring.
fetch() {
  local name=$1 expect=$2; shift 2
  local body code
  body=$(curl -sS -w '\n%{http_code}' "$@")
  code=${body##*$'\n'}
  body=${body%$'\n'*}
  if [ "$code" != 200 ]; then
    echo "FAIL $name: HTTP $code — $body" >&2; exit 1
  fi
  case $body in
    *"$expect"*) echo "ok   $name" ;;
    *) echo "FAIL $name: body missing '$expect' — $body" >&2; exit 1 ;;
  esac
}

BASE="http://127.0.0.1:$PORT"
fetch men2ent    '"entities":[{"id":' -G "$BASE/v1/men2ent"    --data-urlencode "mention=$MENTION"
fetch getConcept '"concepts":["'      -G "$BASE/v1/getConcept" --data-urlencode "entity=$ENTITY"
fetch getEntity  '"entities":["'      -G "$BASE/v1/getEntity"  --data-urlencode "concept=$CONCEPT" --data-urlencode "limit=5"
fetch healthz    '"status":"ok"'      "$BASE/healthz"
fetch metrics    'cnpb_http_requests' "$BASE/metrics"

# The error contract over the wire.
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/men2ent")
[ "$code" = 400 ] || { echo "FAIL missing-param: expected 400, got $code" >&2; exit 1; }
echo "ok   missing-param (400)"
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/nonsense")
[ "$code" = 404 ] || { echo "FAIL unknown-path: expected 404, got $code" >&2; exit 1; }
echo "ok   unknown-path (404)"

# Graceful drain: SIGTERM must yield exit 0, not a crash or a hang.
kill -TERM "$SERVE_PID"
EXIT=0
wait "$SERVE_PID" || EXIT=$?
if [ "$EXIT" != 0 ]; then
  cat "$LOG"; echo "FAIL: server exited $EXIT after SIGTERM" >&2; exit 1
fi
grep -q "draining" "$LOG" || { cat "$LOG"; echo "FAIL: no drain message" >&2; exit 1; }
echo "ok   graceful drain (exit 0)"
echo "server smoke: all checks passed"
