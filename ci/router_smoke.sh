#!/usr/bin/env bash
# Router smoke test for CI: launch cnprobase_router with 1 shard x 2
# replica backends, query every endpoint through the router, kill one
# backend mid-flight and verify the answers stay correct (degraded, not
# down), then SIGTERM the whole tree and require a graceful exit 0. Usage:
#
#   ci/router_smoke.sh <path-to-cnprobase_router>
set -euo pipefail

ROUTER_BIN=${1:?usage: router_smoke.sh <path-to-cnprobase_router>}
LOG=$(mktemp)
trap 'kill "$ROUTER_PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

"$ROUTER_BIN" --shards 1 --replicas 2 --entities 800 --threads 2 \
  --hedge-ms 20 >"$LOG" 2>&1 &
ROUTER_PID=$!

# Wait for the router (taxonomy build + snapshot + backend spawn).
for _ in $(seq 1 240); do
  grep -q "router listening on" "$LOG" && break
  kill -0 "$ROUTER_PID" 2>/dev/null || { cat "$LOG"; echo "router died during startup" >&2; exit 1; }
  sleep 0.5
done
grep -q "router listening on" "$LOG" || { cat "$LOG"; echo "router never started listening" >&2; exit 1; }

PORT=$(grep -o 'router listening on http://127.0.0.1:[0-9]*' "$LOG" | grep -o '[0-9]*$')
MENTION=$(grep '^sample_mention=' "$LOG" | head -1 | cut -d= -f2-)
ENTITY=$(grep '^sample_entity=' "$LOG" | head -1 | cut -d= -f2-)
CONCEPT=$(grep '^sample_concept=' "$LOG" | head -1 | cut -d= -f2-)
BACKEND_PIDS=$(grep -o 'backend pid=[0-9]*' "$LOG" | grep -o '[0-9]*')
echo "router on port $PORT, backends: $(echo "$BACKEND_PIDS" | tr '\n' ' ')"
[ "$(echo "$BACKEND_PIDS" | wc -l)" = 2 ] || { cat "$LOG"; echo "expected 2 backends" >&2; exit 1; }

# fetch <name> <expected-substring> <url...>: 200 + body contains substring.
fetch() {
  local name=$1 expect=$2; shift 2
  local body code
  body=$(curl -sS -w '\n%{http_code}' "$@")
  code=${body##*$'\n'}
  body=${body%$'\n'*}
  if [ "$code" != 200 ]; then
    echo "FAIL $name: HTTP $code — $body" >&2; exit 1
  fi
  case $body in
    *"$expect"*) echo "ok   $name" ;;
    *) echo "FAIL $name: body missing '$expect' — $body" >&2; exit 1 ;;
  esac
}

BASE="http://127.0.0.1:$PORT"
fetch men2ent      '"entities":[{"id":' -G "$BASE/v1/men2ent"    --data-urlencode "mention=$MENTION"
fetch getConcept   '"concepts":["'      -G "$BASE/v1/getConcept" --data-urlencode "entity=$ENTITY"
fetch getEntity    '"entities":["'      -G "$BASE/v1/getEntity"  --data-urlencode "concept=$CONCEPT" --data-urlencode "limit=5"
fetch batch        '"results":['        -X POST --data-binary "$ENTITY" "$BASE/v1/getConcept_batch"
fetch healthz      '"status":"ok"'      "$BASE/healthz"
fetch metrics      'router_forwarded_total' "$BASE/metrics"

# Every data answer must carry the generation stamp the coherence barrier
# keys on.
VERSION=$(curl -sS -D - -o /dev/null -G "$BASE/v1/getConcept" --data-urlencode "entity=$ENTITY" \
  | tr -d '\r' | awk -F': ' 'tolower($1)=="x-taxonomy-version"{print $2}')
[ -n "$VERSION" ] || { echo "FAIL: no X-Taxonomy-Version header" >&2; exit 1; }
echo "ok   version header ($VERSION)"

# Kill one replica: the shard keeps a live backend, so the router must keep
# answering correctly (failover/hedge), and /healthz must report degraded.
VICTIM=$(echo "$BACKEND_PIDS" | head -1)
kill -TERM "$VICTIM"
for _ in $(seq 1 50); do kill -0 "$VICTIM" 2>/dev/null || break; sleep 0.1; done
echo "killed backend $VICTIM"

for i in 1 2 3 4; do
  fetch "failover-$i" '"concepts":["' -G "$BASE/v1/getConcept" --data-urlencode "entity=$ENTITY"
done
fetch degraded-batch '"results":[' -X POST --data-binary "$ENTITY" "$BASE/v1/getConcept_batch"
# The dead replica must be visible in the health report within a few
# failed probes.
DEGRADED=0
for _ in $(seq 1 20); do
  if curl -sS "$BASE/healthz" | grep -q '"status":"degraded"'; then DEGRADED=1; break; fi
  curl -sS -o /dev/null -G "$BASE/v1/getConcept" --data-urlencode "entity=$ENTITY" || true
  sleep 0.1
done
[ "$DEGRADED" = 1 ] || { echo "FAIL: healthz never reported degraded" >&2; exit 1; }
echo "ok   degraded-but-correct after backend kill"

# Graceful drain of the whole tree: SIGTERM must yield exit 0.
kill -TERM "$ROUTER_PID"
EXIT=0
wait "$ROUTER_PID" || EXIT=$?
if [ "$EXIT" != 0 ]; then
  cat "$LOG"; echo "FAIL: router exited $EXIT after SIGTERM" >&2; exit 1
fi
grep -q "draining router" "$LOG" || { cat "$LOG"; echo "FAIL: no drain message" >&2; exit 1; }
grep -q "backends reaped" "$LOG" || { cat "$LOG"; echo "FAIL: backends not reaped" >&2; exit 1; }
echo "ok   graceful drain (exit 0)"
echo "router smoke: all checks passed"
