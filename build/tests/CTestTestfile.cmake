# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/taxonomy_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/integration_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/generation_test[1]_include.cmake")
include("/root/repo/build/tests/verification_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_eval_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/merge_stats_test[1]_include.cmake")
include("/root/repo/build/tests/nn_serialize_test[1]_include.cmake")
include("/root/repo/build/tests/verification_param_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/alias_test[1]_include.cmake")
include("/root/repo/build/tests/kb_core_test[1]_include.cmake")
include("/root/repo/build/tests/ner_substrate_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/copynet_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/prune_normalize_test[1]_include.cmake")
