file(REMOVE_RECURSE
  "CMakeFiles/kb_core_test.dir/kb_core_test.cc.o"
  "CMakeFiles/kb_core_test.dir/kb_core_test.cc.o.d"
  "kb_core_test"
  "kb_core_test.pdb"
  "kb_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
