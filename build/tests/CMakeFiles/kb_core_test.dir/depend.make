# Empty dependencies file for kb_core_test.
# This may be replaced when dependencies are built.
