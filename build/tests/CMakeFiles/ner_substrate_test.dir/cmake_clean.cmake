file(REMOVE_RECURSE
  "CMakeFiles/ner_substrate_test.dir/ner_substrate_test.cc.o"
  "CMakeFiles/ner_substrate_test.dir/ner_substrate_test.cc.o.d"
  "ner_substrate_test"
  "ner_substrate_test.pdb"
  "ner_substrate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ner_substrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
