# Empty dependencies file for ner_substrate_test.
# This may be replaced when dependencies are built.
