# Empty compiler generated dependencies file for prune_normalize_test.
# This may be replaced when dependencies are built.
