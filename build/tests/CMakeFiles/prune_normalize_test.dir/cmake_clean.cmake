file(REMOVE_RECURSE
  "CMakeFiles/prune_normalize_test.dir/prune_normalize_test.cc.o"
  "CMakeFiles/prune_normalize_test.dir/prune_normalize_test.cc.o.d"
  "prune_normalize_test"
  "prune_normalize_test.pdb"
  "prune_normalize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prune_normalize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
