file(REMOVE_RECURSE
  "CMakeFiles/verification_param_test.dir/verification_param_test.cc.o"
  "CMakeFiles/verification_param_test.dir/verification_param_test.cc.o.d"
  "verification_param_test"
  "verification_param_test.pdb"
  "verification_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verification_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
