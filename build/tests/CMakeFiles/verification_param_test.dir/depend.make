# Empty dependencies file for verification_param_test.
# This may be replaced when dependencies are built.
