file(REMOVE_RECURSE
  "CMakeFiles/baselines_eval_test.dir/baselines_eval_test.cc.o"
  "CMakeFiles/baselines_eval_test.dir/baselines_eval_test.cc.o.d"
  "baselines_eval_test"
  "baselines_eval_test.pdb"
  "baselines_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
