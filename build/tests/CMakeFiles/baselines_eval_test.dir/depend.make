# Empty dependencies file for baselines_eval_test.
# This may be replaced when dependencies are built.
