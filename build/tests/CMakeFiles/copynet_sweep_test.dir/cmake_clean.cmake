file(REMOVE_RECURSE
  "CMakeFiles/copynet_sweep_test.dir/copynet_sweep_test.cc.o"
  "CMakeFiles/copynet_sweep_test.dir/copynet_sweep_test.cc.o.d"
  "copynet_sweep_test"
  "copynet_sweep_test.pdb"
  "copynet_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copynet_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
