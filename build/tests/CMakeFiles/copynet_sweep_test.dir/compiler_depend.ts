# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for copynet_sweep_test.
