# Empty compiler generated dependencies file for copynet_sweep_test.
# This may be replaced when dependencies are built.
