file(REMOVE_RECURSE
  "CMakeFiles/merge_stats_test.dir/merge_stats_test.cc.o"
  "CMakeFiles/merge_stats_test.dir/merge_stats_test.cc.o.d"
  "merge_stats_test"
  "merge_stats_test.pdb"
  "merge_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
