# Empty dependencies file for merge_stats_test.
# This may be replaced when dependencies are built.
