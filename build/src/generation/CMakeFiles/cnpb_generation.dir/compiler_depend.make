# Empty compiler generated dependencies file for cnpb_generation.
# This may be replaced when dependencies are built.
