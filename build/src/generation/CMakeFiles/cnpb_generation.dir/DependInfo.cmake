
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/generation/candidate.cc" "src/generation/CMakeFiles/cnpb_generation.dir/candidate.cc.o" "gcc" "src/generation/CMakeFiles/cnpb_generation.dir/candidate.cc.o.d"
  "/root/repo/src/generation/direct_extraction.cc" "src/generation/CMakeFiles/cnpb_generation.dir/direct_extraction.cc.o" "gcc" "src/generation/CMakeFiles/cnpb_generation.dir/direct_extraction.cc.o.d"
  "/root/repo/src/generation/neural_generation.cc" "src/generation/CMakeFiles/cnpb_generation.dir/neural_generation.cc.o" "gcc" "src/generation/CMakeFiles/cnpb_generation.dir/neural_generation.cc.o.d"
  "/root/repo/src/generation/predicate_discovery.cc" "src/generation/CMakeFiles/cnpb_generation.dir/predicate_discovery.cc.o" "gcc" "src/generation/CMakeFiles/cnpb_generation.dir/predicate_discovery.cc.o.d"
  "/root/repo/src/generation/separation.cc" "src/generation/CMakeFiles/cnpb_generation.dir/separation.cc.o" "gcc" "src/generation/CMakeFiles/cnpb_generation.dir/separation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cnpb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cnpb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/cnpb_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cnpb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/cnpb_taxonomy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
