file(REMOVE_RECURSE
  "CMakeFiles/cnpb_generation.dir/candidate.cc.o"
  "CMakeFiles/cnpb_generation.dir/candidate.cc.o.d"
  "CMakeFiles/cnpb_generation.dir/direct_extraction.cc.o"
  "CMakeFiles/cnpb_generation.dir/direct_extraction.cc.o.d"
  "CMakeFiles/cnpb_generation.dir/neural_generation.cc.o"
  "CMakeFiles/cnpb_generation.dir/neural_generation.cc.o.d"
  "CMakeFiles/cnpb_generation.dir/predicate_discovery.cc.o"
  "CMakeFiles/cnpb_generation.dir/predicate_discovery.cc.o.d"
  "CMakeFiles/cnpb_generation.dir/separation.cc.o"
  "CMakeFiles/cnpb_generation.dir/separation.cc.o.d"
  "libcnpb_generation.a"
  "libcnpb_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnpb_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
