file(REMOVE_RECURSE
  "libcnpb_generation.a"
)
