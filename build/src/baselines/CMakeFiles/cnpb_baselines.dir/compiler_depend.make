# Empty compiler generated dependencies file for cnpb_baselines.
# This may be replaced when dependencies are built.
