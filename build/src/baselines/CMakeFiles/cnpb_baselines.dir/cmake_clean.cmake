file(REMOVE_RECURSE
  "CMakeFiles/cnpb_baselines.dir/probase_tran.cc.o"
  "CMakeFiles/cnpb_baselines.dir/probase_tran.cc.o.d"
  "CMakeFiles/cnpb_baselines.dir/wiki_taxonomy.cc.o"
  "CMakeFiles/cnpb_baselines.dir/wiki_taxonomy.cc.o.d"
  "libcnpb_baselines.a"
  "libcnpb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnpb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
