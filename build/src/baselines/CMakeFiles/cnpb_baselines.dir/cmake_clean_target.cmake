file(REMOVE_RECURSE
  "libcnpb_baselines.a"
)
