file(REMOVE_RECURSE
  "CMakeFiles/cnpb_verification.dir/incompatible.cc.o"
  "CMakeFiles/cnpb_verification.dir/incompatible.cc.o.d"
  "CMakeFiles/cnpb_verification.dir/ner_filter.cc.o"
  "CMakeFiles/cnpb_verification.dir/ner_filter.cc.o.d"
  "CMakeFiles/cnpb_verification.dir/pipeline.cc.o"
  "CMakeFiles/cnpb_verification.dir/pipeline.cc.o.d"
  "CMakeFiles/cnpb_verification.dir/syntax_rules.cc.o"
  "CMakeFiles/cnpb_verification.dir/syntax_rules.cc.o.d"
  "libcnpb_verification.a"
  "libcnpb_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnpb_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
