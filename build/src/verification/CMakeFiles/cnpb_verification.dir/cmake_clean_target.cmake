file(REMOVE_RECURSE
  "libcnpb_verification.a"
)
