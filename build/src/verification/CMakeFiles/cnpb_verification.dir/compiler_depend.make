# Empty compiler generated dependencies file for cnpb_verification.
# This may be replaced when dependencies are built.
