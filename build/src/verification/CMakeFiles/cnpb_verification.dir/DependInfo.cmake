
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verification/incompatible.cc" "src/verification/CMakeFiles/cnpb_verification.dir/incompatible.cc.o" "gcc" "src/verification/CMakeFiles/cnpb_verification.dir/incompatible.cc.o.d"
  "/root/repo/src/verification/ner_filter.cc" "src/verification/CMakeFiles/cnpb_verification.dir/ner_filter.cc.o" "gcc" "src/verification/CMakeFiles/cnpb_verification.dir/ner_filter.cc.o.d"
  "/root/repo/src/verification/pipeline.cc" "src/verification/CMakeFiles/cnpb_verification.dir/pipeline.cc.o" "gcc" "src/verification/CMakeFiles/cnpb_verification.dir/pipeline.cc.o.d"
  "/root/repo/src/verification/syntax_rules.cc" "src/verification/CMakeFiles/cnpb_verification.dir/syntax_rules.cc.o" "gcc" "src/verification/CMakeFiles/cnpb_verification.dir/syntax_rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cnpb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cnpb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/cnpb_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/generation/CMakeFiles/cnpb_generation.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cnpb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/cnpb_taxonomy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
