file(REMOVE_RECURSE
  "libcnpb_kb.a"
)
