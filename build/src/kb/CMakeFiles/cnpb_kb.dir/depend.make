# Empty dependencies file for cnpb_kb.
# This may be replaced when dependencies are built.
