file(REMOVE_RECURSE
  "CMakeFiles/cnpb_kb.dir/dump.cc.o"
  "CMakeFiles/cnpb_kb.dir/dump.cc.o.d"
  "CMakeFiles/cnpb_kb.dir/merge.cc.o"
  "CMakeFiles/cnpb_kb.dir/merge.cc.o.d"
  "libcnpb_kb.a"
  "libcnpb_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnpb_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
