# Empty dependencies file for cnpb_util.
# This may be replaced when dependencies are built.
