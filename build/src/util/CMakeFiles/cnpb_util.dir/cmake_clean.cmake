file(REMOVE_RECURSE
  "CMakeFiles/cnpb_util.dir/histogram.cc.o"
  "CMakeFiles/cnpb_util.dir/histogram.cc.o.d"
  "CMakeFiles/cnpb_util.dir/logging.cc.o"
  "CMakeFiles/cnpb_util.dir/logging.cc.o.d"
  "CMakeFiles/cnpb_util.dir/status.cc.o"
  "CMakeFiles/cnpb_util.dir/status.cc.o.d"
  "CMakeFiles/cnpb_util.dir/strings.cc.o"
  "CMakeFiles/cnpb_util.dir/strings.cc.o.d"
  "CMakeFiles/cnpb_util.dir/tsv.cc.o"
  "CMakeFiles/cnpb_util.dir/tsv.cc.o.d"
  "libcnpb_util.a"
  "libcnpb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnpb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
