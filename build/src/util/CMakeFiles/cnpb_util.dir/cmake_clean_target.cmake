file(REMOVE_RECURSE
  "libcnpb_util.a"
)
