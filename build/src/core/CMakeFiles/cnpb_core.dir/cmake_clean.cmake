file(REMOVE_RECURSE
  "CMakeFiles/cnpb_core.dir/builder.cc.o"
  "CMakeFiles/cnpb_core.dir/builder.cc.o.d"
  "CMakeFiles/cnpb_core.dir/incremental.cc.o"
  "CMakeFiles/cnpb_core.dir/incremental.cc.o.d"
  "libcnpb_core.a"
  "libcnpb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnpb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
