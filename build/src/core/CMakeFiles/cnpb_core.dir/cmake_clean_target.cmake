file(REMOVE_RECURSE
  "libcnpb_core.a"
)
