# Empty dependencies file for cnpb_core.
# This may be replaced when dependencies are built.
