file(REMOVE_RECURSE
  "libcnpb_taxonomy.a"
)
