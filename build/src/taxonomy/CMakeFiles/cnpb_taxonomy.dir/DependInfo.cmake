
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxonomy/api_service.cc" "src/taxonomy/CMakeFiles/cnpb_taxonomy.dir/api_service.cc.o" "gcc" "src/taxonomy/CMakeFiles/cnpb_taxonomy.dir/api_service.cc.o.d"
  "/root/repo/src/taxonomy/prune.cc" "src/taxonomy/CMakeFiles/cnpb_taxonomy.dir/prune.cc.o" "gcc" "src/taxonomy/CMakeFiles/cnpb_taxonomy.dir/prune.cc.o.d"
  "/root/repo/src/taxonomy/serialize.cc" "src/taxonomy/CMakeFiles/cnpb_taxonomy.dir/serialize.cc.o" "gcc" "src/taxonomy/CMakeFiles/cnpb_taxonomy.dir/serialize.cc.o.d"
  "/root/repo/src/taxonomy/stats.cc" "src/taxonomy/CMakeFiles/cnpb_taxonomy.dir/stats.cc.o" "gcc" "src/taxonomy/CMakeFiles/cnpb_taxonomy.dir/stats.cc.o.d"
  "/root/repo/src/taxonomy/taxonomy.cc" "src/taxonomy/CMakeFiles/cnpb_taxonomy.dir/taxonomy.cc.o" "gcc" "src/taxonomy/CMakeFiles/cnpb_taxonomy.dir/taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cnpb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cnpb_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
