file(REMOVE_RECURSE
  "CMakeFiles/cnpb_taxonomy.dir/api_service.cc.o"
  "CMakeFiles/cnpb_taxonomy.dir/api_service.cc.o.d"
  "CMakeFiles/cnpb_taxonomy.dir/prune.cc.o"
  "CMakeFiles/cnpb_taxonomy.dir/prune.cc.o.d"
  "CMakeFiles/cnpb_taxonomy.dir/serialize.cc.o"
  "CMakeFiles/cnpb_taxonomy.dir/serialize.cc.o.d"
  "CMakeFiles/cnpb_taxonomy.dir/stats.cc.o"
  "CMakeFiles/cnpb_taxonomy.dir/stats.cc.o.d"
  "CMakeFiles/cnpb_taxonomy.dir/taxonomy.cc.o"
  "CMakeFiles/cnpb_taxonomy.dir/taxonomy.cc.o.d"
  "libcnpb_taxonomy.a"
  "libcnpb_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnpb_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
