# Empty dependencies file for cnpb_taxonomy.
# This may be replaced when dependencies are built.
