# Empty dependencies file for cnpb_text.
# This may be replaced when dependencies are built.
