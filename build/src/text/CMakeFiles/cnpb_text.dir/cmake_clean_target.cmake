file(REMOVE_RECURSE
  "libcnpb_text.a"
)
