
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/lexicon.cc" "src/text/CMakeFiles/cnpb_text.dir/lexicon.cc.o" "gcc" "src/text/CMakeFiles/cnpb_text.dir/lexicon.cc.o.d"
  "/root/repo/src/text/ngram.cc" "src/text/CMakeFiles/cnpb_text.dir/ngram.cc.o" "gcc" "src/text/CMakeFiles/cnpb_text.dir/ngram.cc.o.d"
  "/root/repo/src/text/normalize.cc" "src/text/CMakeFiles/cnpb_text.dir/normalize.cc.o" "gcc" "src/text/CMakeFiles/cnpb_text.dir/normalize.cc.o.d"
  "/root/repo/src/text/segmenter.cc" "src/text/CMakeFiles/cnpb_text.dir/segmenter.cc.o" "gcc" "src/text/CMakeFiles/cnpb_text.dir/segmenter.cc.o.d"
  "/root/repo/src/text/trie_matcher.cc" "src/text/CMakeFiles/cnpb_text.dir/trie_matcher.cc.o" "gcc" "src/text/CMakeFiles/cnpb_text.dir/trie_matcher.cc.o.d"
  "/root/repo/src/text/utf8.cc" "src/text/CMakeFiles/cnpb_text.dir/utf8.cc.o" "gcc" "src/text/CMakeFiles/cnpb_text.dir/utf8.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cnpb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
