file(REMOVE_RECURSE
  "CMakeFiles/cnpb_text.dir/lexicon.cc.o"
  "CMakeFiles/cnpb_text.dir/lexicon.cc.o.d"
  "CMakeFiles/cnpb_text.dir/ngram.cc.o"
  "CMakeFiles/cnpb_text.dir/ngram.cc.o.d"
  "CMakeFiles/cnpb_text.dir/normalize.cc.o"
  "CMakeFiles/cnpb_text.dir/normalize.cc.o.d"
  "CMakeFiles/cnpb_text.dir/segmenter.cc.o"
  "CMakeFiles/cnpb_text.dir/segmenter.cc.o.d"
  "CMakeFiles/cnpb_text.dir/trie_matcher.cc.o"
  "CMakeFiles/cnpb_text.dir/trie_matcher.cc.o.d"
  "CMakeFiles/cnpb_text.dir/utf8.cc.o"
  "CMakeFiles/cnpb_text.dir/utf8.cc.o.d"
  "libcnpb_text.a"
  "libcnpb_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnpb_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
