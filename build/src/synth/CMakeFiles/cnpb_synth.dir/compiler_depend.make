# Empty compiler generated dependencies file for cnpb_synth.
# This may be replaced when dependencies are built.
