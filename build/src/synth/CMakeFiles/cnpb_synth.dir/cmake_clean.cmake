file(REMOVE_RECURSE
  "CMakeFiles/cnpb_synth.dir/bilingual.cc.o"
  "CMakeFiles/cnpb_synth.dir/bilingual.cc.o.d"
  "CMakeFiles/cnpb_synth.dir/corpus_gen.cc.o"
  "CMakeFiles/cnpb_synth.dir/corpus_gen.cc.o.d"
  "CMakeFiles/cnpb_synth.dir/encyclopedia_gen.cc.o"
  "CMakeFiles/cnpb_synth.dir/encyclopedia_gen.cc.o.d"
  "CMakeFiles/cnpb_synth.dir/ontology.cc.o"
  "CMakeFiles/cnpb_synth.dir/ontology.cc.o.d"
  "CMakeFiles/cnpb_synth.dir/qa_gen.cc.o"
  "CMakeFiles/cnpb_synth.dir/qa_gen.cc.o.d"
  "CMakeFiles/cnpb_synth.dir/site_split.cc.o"
  "CMakeFiles/cnpb_synth.dir/site_split.cc.o.d"
  "CMakeFiles/cnpb_synth.dir/world.cc.o"
  "CMakeFiles/cnpb_synth.dir/world.cc.o.d"
  "CMakeFiles/cnpb_synth.dir/world_data.cc.o"
  "CMakeFiles/cnpb_synth.dir/world_data.cc.o.d"
  "libcnpb_synth.a"
  "libcnpb_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnpb_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
