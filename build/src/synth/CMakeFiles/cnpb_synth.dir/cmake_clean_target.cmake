file(REMOVE_RECURSE
  "libcnpb_synth.a"
)
