
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/bilingual.cc" "src/synth/CMakeFiles/cnpb_synth.dir/bilingual.cc.o" "gcc" "src/synth/CMakeFiles/cnpb_synth.dir/bilingual.cc.o.d"
  "/root/repo/src/synth/corpus_gen.cc" "src/synth/CMakeFiles/cnpb_synth.dir/corpus_gen.cc.o" "gcc" "src/synth/CMakeFiles/cnpb_synth.dir/corpus_gen.cc.o.d"
  "/root/repo/src/synth/encyclopedia_gen.cc" "src/synth/CMakeFiles/cnpb_synth.dir/encyclopedia_gen.cc.o" "gcc" "src/synth/CMakeFiles/cnpb_synth.dir/encyclopedia_gen.cc.o.d"
  "/root/repo/src/synth/ontology.cc" "src/synth/CMakeFiles/cnpb_synth.dir/ontology.cc.o" "gcc" "src/synth/CMakeFiles/cnpb_synth.dir/ontology.cc.o.d"
  "/root/repo/src/synth/qa_gen.cc" "src/synth/CMakeFiles/cnpb_synth.dir/qa_gen.cc.o" "gcc" "src/synth/CMakeFiles/cnpb_synth.dir/qa_gen.cc.o.d"
  "/root/repo/src/synth/site_split.cc" "src/synth/CMakeFiles/cnpb_synth.dir/site_split.cc.o" "gcc" "src/synth/CMakeFiles/cnpb_synth.dir/site_split.cc.o.d"
  "/root/repo/src/synth/world.cc" "src/synth/CMakeFiles/cnpb_synth.dir/world.cc.o" "gcc" "src/synth/CMakeFiles/cnpb_synth.dir/world.cc.o.d"
  "/root/repo/src/synth/world_data.cc" "src/synth/CMakeFiles/cnpb_synth.dir/world_data.cc.o" "gcc" "src/synth/CMakeFiles/cnpb_synth.dir/world_data.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cnpb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cnpb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/cnpb_kb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
