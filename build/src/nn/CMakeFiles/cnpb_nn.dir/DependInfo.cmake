
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cc" "src/nn/CMakeFiles/cnpb_nn.dir/adam.cc.o" "gcc" "src/nn/CMakeFiles/cnpb_nn.dir/adam.cc.o.d"
  "/root/repo/src/nn/autograd.cc" "src/nn/CMakeFiles/cnpb_nn.dir/autograd.cc.o" "gcc" "src/nn/CMakeFiles/cnpb_nn.dir/autograd.cc.o.d"
  "/root/repo/src/nn/copynet.cc" "src/nn/CMakeFiles/cnpb_nn.dir/copynet.cc.o" "gcc" "src/nn/CMakeFiles/cnpb_nn.dir/copynet.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/cnpb_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/cnpb_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/cnpb_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/cnpb_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/vocab.cc" "src/nn/CMakeFiles/cnpb_nn.dir/vocab.cc.o" "gcc" "src/nn/CMakeFiles/cnpb_nn.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cnpb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
