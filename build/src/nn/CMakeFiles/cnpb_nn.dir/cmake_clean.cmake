file(REMOVE_RECURSE
  "CMakeFiles/cnpb_nn.dir/adam.cc.o"
  "CMakeFiles/cnpb_nn.dir/adam.cc.o.d"
  "CMakeFiles/cnpb_nn.dir/autograd.cc.o"
  "CMakeFiles/cnpb_nn.dir/autograd.cc.o.d"
  "CMakeFiles/cnpb_nn.dir/copynet.cc.o"
  "CMakeFiles/cnpb_nn.dir/copynet.cc.o.d"
  "CMakeFiles/cnpb_nn.dir/layers.cc.o"
  "CMakeFiles/cnpb_nn.dir/layers.cc.o.d"
  "CMakeFiles/cnpb_nn.dir/serialize.cc.o"
  "CMakeFiles/cnpb_nn.dir/serialize.cc.o.d"
  "CMakeFiles/cnpb_nn.dir/vocab.cc.o"
  "CMakeFiles/cnpb_nn.dir/vocab.cc.o.d"
  "libcnpb_nn.a"
  "libcnpb_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnpb_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
