# Empty compiler generated dependencies file for cnpb_nn.
# This may be replaced when dependencies are built.
