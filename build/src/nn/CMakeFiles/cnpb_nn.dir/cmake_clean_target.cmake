file(REMOVE_RECURSE
  "libcnpb_nn.a"
)
