# Empty compiler generated dependencies file for cnpb_eval.
# This may be replaced when dependencies are built.
