file(REMOVE_RECURSE
  "CMakeFiles/cnpb_eval.dir/comparison.cc.o"
  "CMakeFiles/cnpb_eval.dir/comparison.cc.o.d"
  "CMakeFiles/cnpb_eval.dir/coverage.cc.o"
  "CMakeFiles/cnpb_eval.dir/coverage.cc.o.d"
  "CMakeFiles/cnpb_eval.dir/precision.cc.o"
  "CMakeFiles/cnpb_eval.dir/precision.cc.o.d"
  "libcnpb_eval.a"
  "libcnpb_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnpb_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
