file(REMOVE_RECURSE
  "libcnpb_eval.a"
)
