file(REMOVE_RECURSE
  "CMakeFiles/bench_copynet.dir/bench_copynet.cc.o"
  "CMakeFiles/bench_copynet.dir/bench_copynet.cc.o.d"
  "bench_copynet"
  "bench_copynet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_copynet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
