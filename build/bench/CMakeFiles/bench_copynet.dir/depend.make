# Empty dependencies file for bench_copynet.
# This may be replaced when dependencies are built.
