file(REMOVE_RECURSE
  "CMakeFiles/bench_qa_coverage.dir/bench_qa_coverage.cc.o"
  "CMakeFiles/bench_qa_coverage.dir/bench_qa_coverage.cc.o.d"
  "bench_qa_coverage"
  "bench_qa_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qa_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
