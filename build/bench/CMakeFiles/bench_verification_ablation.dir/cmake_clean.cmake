file(REMOVE_RECURSE
  "CMakeFiles/bench_verification_ablation.dir/bench_verification_ablation.cc.o"
  "CMakeFiles/bench_verification_ablation.dir/bench_verification_ablation.cc.o.d"
  "bench_verification_ablation"
  "bench_verification_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verification_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
