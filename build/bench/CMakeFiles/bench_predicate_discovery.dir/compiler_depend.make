# Empty compiler generated dependencies file for bench_predicate_discovery.
# This may be replaced when dependencies are built.
