file(REMOVE_RECURSE
  "CMakeFiles/bench_predicate_discovery.dir/bench_predicate_discovery.cc.o"
  "CMakeFiles/bench_predicate_discovery.dir/bench_predicate_discovery.cc.o.d"
  "bench_predicate_discovery"
  "bench_predicate_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predicate_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
