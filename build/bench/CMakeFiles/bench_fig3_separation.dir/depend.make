# Empty dependencies file for bench_fig3_separation.
# This may be replaced when dependencies are built.
