# Empty dependencies file for bench_source_precision.
# This may be replaced when dependencies are built.
