file(REMOVE_RECURSE
  "CMakeFiles/bench_source_precision.dir/bench_source_precision.cc.o"
  "CMakeFiles/bench_source_precision.dir/bench_source_precision.cc.o.d"
  "bench_source_precision"
  "bench_source_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_source_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
