file(REMOVE_RECURSE
  "CMakeFiles/multi_site_merge.dir/multi_site_merge.cpp.o"
  "CMakeFiles/multi_site_merge.dir/multi_site_merge.cpp.o.d"
  "multi_site_merge"
  "multi_site_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_site_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
