# Empty dependencies file for multi_site_merge.
# This may be replaced when dependencies are built.
