file(REMOVE_RECURSE
  "CMakeFiles/build_taxonomy.dir/build_taxonomy.cpp.o"
  "CMakeFiles/build_taxonomy.dir/build_taxonomy.cpp.o.d"
  "build_taxonomy"
  "build_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
