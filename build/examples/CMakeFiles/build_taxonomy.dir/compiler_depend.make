# Empty compiler generated dependencies file for build_taxonomy.
# This may be replaced when dependencies are built.
