# Empty dependencies file for cnprobase_cli.
# This may be replaced when dependencies are built.
