file(REMOVE_RECURSE
  "CMakeFiles/cnprobase_cli.dir/cnprobase_cli.cpp.o"
  "CMakeFiles/cnprobase_cli.dir/cnprobase_cli.cpp.o.d"
  "cnprobase_cli"
  "cnprobase_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnprobase_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
