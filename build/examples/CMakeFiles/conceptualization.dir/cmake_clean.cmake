file(REMOVE_RECURSE
  "CMakeFiles/conceptualization.dir/conceptualization.cpp.o"
  "CMakeFiles/conceptualization.dir/conceptualization.cpp.o.d"
  "conceptualization"
  "conceptualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conceptualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
