# Empty dependencies file for conceptualization.
# This may be replaced when dependencies are built.
