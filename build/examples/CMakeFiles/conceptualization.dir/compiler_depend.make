# Empty compiler generated dependencies file for conceptualization.
# This may be replaced when dependencies are built.
