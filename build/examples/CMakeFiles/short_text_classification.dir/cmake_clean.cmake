file(REMOVE_RECURSE
  "CMakeFiles/short_text_classification.dir/short_text_classification.cpp.o"
  "CMakeFiles/short_text_classification.dir/short_text_classification.cpp.o.d"
  "short_text_classification"
  "short_text_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/short_text_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
