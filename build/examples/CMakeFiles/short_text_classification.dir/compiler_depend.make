# Empty compiler generated dependencies file for short_text_classification.
# This may be replaced when dependencies are built.
