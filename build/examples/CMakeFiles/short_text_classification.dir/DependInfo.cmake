
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/short_text_classification.cpp" "examples/CMakeFiles/short_text_classification.dir/short_text_classification.cpp.o" "gcc" "examples/CMakeFiles/short_text_classification.dir/short_text_classification.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cnpb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cnpb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/cnpb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/cnpb_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/verification/CMakeFiles/cnpb_verification.dir/DependInfo.cmake"
  "/root/repo/build/src/generation/CMakeFiles/cnpb_generation.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cnpb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/cnpb_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/cnpb_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cnpb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cnpb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
