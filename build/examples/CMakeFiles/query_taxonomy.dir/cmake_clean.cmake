file(REMOVE_RECURSE
  "CMakeFiles/query_taxonomy.dir/query_taxonomy.cpp.o"
  "CMakeFiles/query_taxonomy.dir/query_taxonomy.cpp.o.d"
  "query_taxonomy"
  "query_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
