# Empty dependencies file for query_taxonomy.
# This may be replaced when dependencies are built.
