# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "600")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_build_taxonomy "/root/repo/build/examples/build_taxonomy" "800" "/root/repo/build/examples")
set_tests_properties(example_build_taxonomy PROPERTIES  FIXTURES_SETUP "built_taxonomy" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_query_taxonomy "/root/repo/build/examples/query_taxonomy" "/root/repo/build/examples/cnprobase_taxonomy.tsv" "演员")
set_tests_properties(example_query_taxonomy PROPERTIES  FIXTURES_REQUIRED "built_taxonomy" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_conceptualization "/root/repo/build/examples/conceptualization" "800")
set_tests_properties(example_conceptualization PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_site_merge "/root/repo/build/examples/multi_site_merge" "800")
set_tests_properties(example_multi_site_merge PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_short_text_classification "/root/repo/build/examples/short_text_classification" "800")
set_tests_properties(example_short_text_classification PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_pipeline "/usr/bin/cmake" "-DCLI=/root/repo/build/examples/cnprobase_cli" "-DDIR=/root/repo/build/examples/cli_smoke" "-P" "/root/repo/examples/cli_smoke.cmake")
set_tests_properties(example_cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
