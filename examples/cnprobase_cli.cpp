// Command-line front end over the library's persistence APIs:
//
//   cnprobase_cli generate <dir> [entities]   synthesise dump+corpus+lexicon
//   cnprobase_cli build    <dir>              build taxonomy from <dir>
//   cnprobase_cli stats    <dir>              structural report
//   cnprobase_cli query    <dir> <term>...    hypernyms/hyponyms of terms
//
// `generate` then `build` then `query` reproduces the whole pipeline from
// files on disk, the way a deployment would run it stage by stage.
//
// Any command accepts `--metrics-out <base>`: on exit the process metrics
// registry is exported to <base>.prom (Prometheus text) and <base>.json.
// With `build` this covers per-stage wall times and verification outcome
// counters; `build` additionally serves a short deterministic ApiService
// workload over the fresh taxonomy (two published versions) so the export
// also carries query latency buckets and per-version QPS.
//
// Robustness flags (DESIGN.md §8):
//   --max-load-errors <n>   `build` tolerates up to n malformed dump rows,
//                           quarantining them instead of failing the load
//   --quarantine <path>     sidecar TSV receiving the quarantined rows with
//                           reason codes (implies row quarantining)
//
// Snapshot flags (DESIGN.md §10):
//   --snapshot-out <path>   `build` also writes the zero-copy binary
//                           snapshot (taxonomy + mention index)
//   --snapshot-in <path>    `stats`/`query` mmap-load the binary snapshot
//                           instead of parsing the TSV taxonomy
// Fault injection for chaos testing is configured via the CNPB_FAULTS /
// CNPB_FAULT_SEED environment variables (see util/fault_injection.h).
//
// Every failed load/save/build exits nonzero with the util::Status on
// stderr — no aborts on bad input.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/builder.h"
#include "kb/dump.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "taxonomy/api_service.h"
#include "taxonomy/serialize.h"
#include "taxonomy/snapshot.h"
#include "taxonomy/stats.h"
#include "taxonomy/view.h"
#include "text/segmenter.h"
#include "util/strings.h"
#include "util/tsv.h"

namespace {

using namespace cnpb;

std::string DumpPath(const std::string& dir) { return dir + "/dump.tsv"; }
std::string CorpusPath(const std::string& dir) { return dir + "/corpus.tsv"; }
std::string LexiconPath(const std::string& dir) { return dir + "/lexicon.tsv"; }
std::string TaxonomyPath(const std::string& dir) {
  return dir + "/taxonomy.tsv";
}

// Prints a failed Status with context and converts it to a nonzero exit
// code; bad input or a failed write is an error report, not an abort.
int Fail(const char* what, const util::Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

int Generate(const std::string& dir, size_t entities) {
  synth::WorldModel::Config wc;
  wc.num_entities = entities;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto output = synth::EncyclopediaGenerator::Generate(world, {});
  text::Segmenter segmenter(&world.lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, {});

  if (util::Status s = output.dump.Save(DumpPath(dir)); !s.ok()) {
    return Fail("save dump", s);
  }
  if (util::Status s = world.lexicon().Save(LexiconPath(dir)); !s.ok()) {
    return Fail("save lexicon", s);
  }
  util::TsvWriter writer(CorpusPath(dir));
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    writer.WriteRow(words);
  }
  if (util::Status s = writer.Close(); !s.ok()) {
    return Fail("save corpus", s);
  }
  std::printf("wrote %zu pages, %zu corpus sentences, %zu lexicon words to %s\n",
              output.dump.size(), corpus.sentences.size(),
              world.lexicon().size(), dir.c_str());
  return 0;
}

// Serves a deterministic query workload over the freshly built taxonomy so
// a --metrics-out export carries serving-side metrics (latency buckets,
// per-version QPS) and not just build-side ones. The taxonomy is published
// twice — the republish is a realistic no-op update — so the per-version
// attribution has more than one version to split across.
void ServeMetricsWorkload(const kb::EncyclopediaDump& dump,
                          taxonomy::Taxonomy taxonomy) {
  auto frozen = taxonomy::Taxonomy::Freeze(std::move(taxonomy));
  taxonomy::ApiService api(frozen,
                           core::CnProbaseBuilder::BuildMentionIndex(
                               dump, *frozen));
  // Enough passes over the dump that the 1-in-256 latency sampling in
  // ApiService still collects a few hundred observations per API.
  const size_t passes =
      std::max<size_t>(1, 100000 / std::max<size_t>(1, dump.size()));
  const auto run_queries = [&]() {
    for (size_t pass = 0; pass < passes; ++pass) {
      size_t i = 0;
      for (const kb::EncyclopediaPage& page : dump.pages()) {
        api.Men2Ent(page.mention);
        if (i % 2 == 0) api.GetConcept(page.name);
        if (i % 4 == 0) api.GetEntity(page.name, 20);
        ++i;
      }
    }
  };
  run_queries();
  api.Publish(frozen, core::CnProbaseBuilder::BuildMentionIndex(dump, *frozen));
  run_queries();
  api.ExportMetrics(&obs::MetricsRegistry::Global());
  const auto usage = api.usage();
  std::printf(
      "metrics workload: %llu API calls across %llu published versions\n",
      static_cast<unsigned long long>(usage.total()),
      static_cast<unsigned long long>(api.version()));
}

int Build(const std::string& dir, const std::string& metrics_out,
          const std::string& snapshot_out,
          const kb::DumpLoadOptions& load_options) {
  kb::DumpLoadReport load_report;
  auto dump = kb::EncyclopediaDump::Load(DumpPath(dir), load_options,
                                         &load_report);
  if (!dump.ok()) return Fail("load dump", dump.status());
  if (load_report.rows_quarantined > 0) {
    std::fprintf(stderr, "quarantined %zu of %zu dump rows",
                 load_report.rows_quarantined, load_report.rows_total);
    if (!load_options.quarantine_path.empty()) {
      std::fprintf(stderr, " -> %s", load_options.quarantine_path.c_str());
    }
    std::fprintf(stderr, "\n");
    for (const auto& [reason, count] : load_report.quarantined_by_reason) {
      std::fprintf(stderr, "  %-16s %zu\n", reason.c_str(), count);
    }
  }
  auto lexicon = text::Lexicon::Load(LexiconPath(dir));
  if (!lexicon.ok()) {
    std::fprintf(stderr, "load lexicon: %s\n",
                 lexicon.status().ToString().c_str());
    return 1;
  }
  auto corpus_rows = util::ReadTsvFile(CorpusPath(dir));
  if (!corpus_rows.ok()) {
    std::fprintf(stderr, "load corpus: %s\n",
                 corpus_rows.status().ToString().c_str());
    return 1;
  }

  core::CnProbaseBuilder::Config config;
  for (const char* word : synth::ThematicWords()) {
    config.verification.syntax.thematic_lexicon.emplace_back(word);
  }
  core::CnProbaseBuilder::Report report;
  auto taxonomy = core::CnProbaseBuilder::Build(
      *dump, *lexicon, *corpus_rows, config, &report);
  if (util::Status s = taxonomy::SaveTaxonomyDurable(taxonomy,
                                                     TaxonomyPath(dir));
      !s.ok()) {
    return Fail("save taxonomy", s);
  }
  std::printf(
      "built %s isA relations (%zu rejected by verification) -> %s\n",
      util::CommaSeparated(taxonomy.num_edges()).c_str(),
      report.verification.rejected_total(), TaxonomyPath(dir).c_str());
  if (!snapshot_out.empty()) {
    if (util::Status s = taxonomy::WriteSnapshot(
            taxonomy,
            core::CnProbaseBuilder::BuildMentionIndex(*dump, taxonomy),
            snapshot_out);
        !s.ok()) {
      return Fail("write snapshot", s);
    }
    std::printf("wrote binary snapshot -> %s\n", snapshot_out.c_str());
  }
  if (!metrics_out.empty()) {
    ServeMetricsWorkload(*dump, std::move(taxonomy));
  }
  return 0;
}

int Stats(const std::string& dir, const std::string& snapshot_in) {
  if (!snapshot_in.empty()) {
    auto snap = taxonomy::Snapshot::Load(snapshot_in);
    if (!snap.ok()) return Fail("load snapshot", snap.status());
    // The stats pass wants the full mutable structure; materialising from
    // the view is the snapshot-era equivalent of the TSV parse.
    auto materialized = taxonomy::MaterializeTaxonomy(**snap);
    if (!materialized.ok()) {
      return Fail("materialize snapshot", materialized.status());
    }
    std::printf("%s",
                taxonomy::FormatStats(taxonomy::ComputeStats(*materialized))
                    .c_str());
    return 0;
  }
  auto taxonomy = taxonomy::LoadTaxonomyWithFallback(TaxonomyPath(dir));
  if (!taxonomy.ok()) return Fail("load taxonomy", taxonomy.status());
  std::printf("%s", taxonomy::FormatStats(taxonomy::ComputeStats(*taxonomy))
                        .c_str());
  return 0;
}

int Query(const std::string& dir, const std::string& snapshot_in, int argc,
          char** argv, int first) {
  // Both persistence formats serve the same ServingView interface; the
  // query loop below cannot tell which one answered.
  std::shared_ptr<const taxonomy::ServingView> view;
  if (!snapshot_in.empty()) {
    auto snap = taxonomy::Snapshot::Load(snapshot_in);
    if (!snap.ok()) return Fail("load snapshot", snap.status());
    view = *std::move(snap);
  } else {
    auto loaded = taxonomy::LoadTaxonomyWithFallback(TaxonomyPath(dir));
    if (!loaded.ok()) return Fail("load taxonomy", loaded.status());
    view = std::make_shared<taxonomy::HeapServingView>(
        taxonomy::Taxonomy::Freeze(std::move(*loaded)),
        taxonomy::MentionIndex());
  }
  for (int i = first; i < argc; ++i) {
    const taxonomy::NodeId id = view->Find(argv[i]);
    if (id == taxonomy::kInvalidNode) {
      std::printf("%s: not found\n", argv[i]);
      continue;
    }
    std::printf("%s:\n  hypernyms:", argv[i]);
    view->VisitHypernyms(id, [&](const taxonomy::HalfEdge& edge) {
      std::printf(" %s", std::string(view->Name(edge.node)).c_str());
      return true;
    });
    std::printf("\n  hyponyms (%zu):", view->NumHyponyms(id));
    size_t shown = 0;
    view->VisitHyponyms(id, [&](const taxonomy::HalfEdge& edge) {
      std::printf(" %s", std::string(view->Name(edge.node)).c_str());
      return ++shown < 6;
    });
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip `--flag <value>` options wherever they appear; the remaining
  // positional arguments keep their usual meaning.
  std::string metrics_out;
  std::string snapshot_out;
  std::string snapshot_in;
  kb::DumpLoadOptions load_options;
  std::vector<char*> args;
  args.reserve(argc);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
      continue;
    }
    if (arg == "--snapshot-out" && i + 1 < argc) {
      snapshot_out = argv[++i];
      continue;
    }
    if (arg == "--snapshot-in" && i + 1 < argc) {
      snapshot_in = argv[++i];
      continue;
    }
    if (arg == "--max-load-errors" && i + 1 < argc) {
      load_options.max_errors =
          static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      continue;
    }
    if (arg == "--quarantine" && i + 1 < argc) {
      load_options.quarantine_path = argv[++i];
      // A quarantine sink implies tolerating at least some bad rows.
      if (load_options.max_errors == 0) {
        load_options.max_errors = static_cast<size_t>(-1);
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  const int nargs = static_cast<int>(args.size());
  if (nargs < 3) {
    std::fprintf(stderr,
                 "usage: %s generate|build|stats|query <dir> [args] "
                 "[--metrics-out <base>] [--max-load-errors <n>] "
                 "[--quarantine <path>] [--snapshot-out <path>] "
                 "[--snapshot-in <path>]\n",
                 argv[0]);
    return 2;
  }
  const std::string command = args[1];
  const std::string dir = args[2];
  int rc = 2;
  if (command == "generate") {
    rc = Generate(dir, nargs > 3 ? std::atol(args[3]) : 8000);
  } else if (command == "build") {
    rc = Build(dir, metrics_out, snapshot_out, load_options);
  } else if (command == "stats") {
    rc = Stats(dir, snapshot_in);
  } else if (command == "query") {
    rc = Query(dir, snapshot_in, nargs, args.data(), 3);
  } else {
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 2;
  }
  if (!metrics_out.empty()) {
    const cnpb::util::Status status = cnpb::obs::WriteMetricsFiles(
        cnpb::obs::MetricsRegistry::Global(), metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
      return rc == 0 ? 1 : rc;
    }
    std::printf("metrics written to %s.prom and %s.json\n",
                metrics_out.c_str(), metrics_out.c_str());
  }
  return rc;
}
