// Command-line front end over the library's persistence APIs:
//
//   cnprobase_cli generate <dir> [entities]   synthesise dump+corpus+lexicon
//   cnprobase_cli build    <dir>              build taxonomy from <dir>
//   cnprobase_cli stats    <dir>              structural report
//   cnprobase_cli query    <dir> <term>...    hypernyms/hyponyms of terms
//
// `generate` then `build` then `query` reproduces the whole pipeline from
// files on disk, the way a deployment would run it stage by stage.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/builder.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "taxonomy/serialize.h"
#include "taxonomy/stats.h"
#include "text/segmenter.h"
#include "util/strings.h"
#include "util/tsv.h"

namespace {

using namespace cnpb;

std::string DumpPath(const std::string& dir) { return dir + "/dump.tsv"; }
std::string CorpusPath(const std::string& dir) { return dir + "/corpus.tsv"; }
std::string LexiconPath(const std::string& dir) { return dir + "/lexicon.tsv"; }
std::string TaxonomyPath(const std::string& dir) {
  return dir + "/taxonomy.tsv";
}

int Generate(const std::string& dir, size_t entities) {
  synth::WorldModel::Config wc;
  wc.num_entities = entities;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto output = synth::EncyclopediaGenerator::Generate(world, {});
  text::Segmenter segmenter(&world.lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, {});

  CNPB_CHECK_OK(output.dump.Save(DumpPath(dir)));
  CNPB_CHECK_OK(world.lexicon().Save(LexiconPath(dir)));
  util::TsvWriter writer(CorpusPath(dir));
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    writer.WriteRow(words);
  }
  CNPB_CHECK_OK(writer.Close());
  std::printf("wrote %zu pages, %zu corpus sentences, %zu lexicon words to %s\n",
              output.dump.size(), corpus.sentences.size(),
              world.lexicon().size(), dir.c_str());
  return 0;
}

int Build(const std::string& dir) {
  auto dump = kb::EncyclopediaDump::Load(DumpPath(dir));
  if (!dump.ok()) {
    std::fprintf(stderr, "load dump: %s\n", dump.status().ToString().c_str());
    return 1;
  }
  auto lexicon = text::Lexicon::Load(LexiconPath(dir));
  if (!lexicon.ok()) {
    std::fprintf(stderr, "load lexicon: %s\n",
                 lexicon.status().ToString().c_str());
    return 1;
  }
  auto corpus_rows = util::ReadTsvFile(CorpusPath(dir));
  if (!corpus_rows.ok()) {
    std::fprintf(stderr, "load corpus: %s\n",
                 corpus_rows.status().ToString().c_str());
    return 1;
  }

  core::CnProbaseBuilder::Config config;
  for (const char* word : synth::ThematicWords()) {
    config.verification.syntax.thematic_lexicon.emplace_back(word);
  }
  core::CnProbaseBuilder::Report report;
  const auto taxonomy = core::CnProbaseBuilder::Build(
      *dump, *lexicon, *corpus_rows, config, &report);
  CNPB_CHECK_OK(taxonomy::SaveTaxonomy(taxonomy, TaxonomyPath(dir)));
  std::printf(
      "built %s isA relations (%zu rejected by verification) -> %s\n",
      util::CommaSeparated(taxonomy.num_edges()).c_str(),
      report.verification.rejected_total(), TaxonomyPath(dir).c_str());
  return 0;
}

int Stats(const std::string& dir) {
  auto taxonomy = taxonomy::LoadTaxonomy(TaxonomyPath(dir));
  if (!taxonomy.ok()) {
    std::fprintf(stderr, "load taxonomy: %s\n",
                 taxonomy.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", taxonomy::FormatStats(taxonomy::ComputeStats(*taxonomy))
                        .c_str());
  return 0;
}

int Query(const std::string& dir, int argc, char** argv, int first) {
  auto loaded = taxonomy::LoadTaxonomy(TaxonomyPath(dir));
  if (!loaded.ok()) {
    std::fprintf(stderr, "load taxonomy: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  for (int i = first; i < argc; ++i) {
    const taxonomy::NodeId id = loaded->Find(argv[i]);
    if (id == taxonomy::kInvalidNode) {
      std::printf("%s: not found\n", argv[i]);
      continue;
    }
    std::printf("%s:\n  hypernyms:", argv[i]);
    for (const auto& edge : loaded->Hypernyms(id)) {
      std::printf(" %s", loaded->Name(edge.hyper).c_str());
    }
    std::printf("\n  hyponyms (%zu):", loaded->Hyponyms(id).size());
    size_t shown = 0;
    for (const auto& edge : loaded->Hyponyms(id)) {
      if (++shown > 6) break;
      std::printf(" %s", loaded->Name(edge.hypo).c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s generate|build|stats|query <dir> [args]\n",
                 argv[0]);
    return 2;
  }
  const std::string command = argv[1];
  const std::string dir = argv[2];
  if (command == "generate") {
    return Generate(dir, argc > 3 ? std::atol(argv[3]) : 8000);
  }
  if (command == "build") return Build(dir);
  if (command == "stats") return Stats(dir);
  if (command == "query") return Query(dir, argc, argv, 3);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}
