// Network front end for the three public APIs (Table II): builds a
// taxonomy from the synthetic world at --entities scale, registers its
// mention index, and serves it over HTTP/1.1 until SIGTERM/SIGINT:
//
//   cnprobase_serve [--port P] [--host H] [--threads N] [--entities E]
//                   [--max-in-flight M] [--deadline-us D]
//                   [--drain-ms MS] [--metrics-out BASE]
//                   [--snapshot-in PATH] [--snapshot-out PATH]
//                   [--cache-mb MB] [--poller auto|epoll|poll]
//                   [--write-stall-ms MS]
//
// --snapshot-in mmap-loads a binary snapshot (DESIGN.md §10) and serves it
// zero-copy, skipping the build entirely — the production cold-start path.
// --snapshot-out writes the served view as a binary snapshot after startup,
// so a build-and-serve run leaves behind a file the next run can mmap.
//
// --cache-mb > 0 fronts the single-shot endpoints with the version-keyed
// result cache (DESIGN.md §11); its hit/miss tally is printed at exit.
// --poller forces the event backend (epoll fails on non-Linux builds);
// --write-stall-ms tunes how long a connection may hold unflushed output
// without the peer reading before its fd is reclaimed.
//
//   GET /v1/men2ent?mention=M        GET/POST /v1/men2ent_batch
//   GET /v1/getConcept?entity=E      GET/POST /v1/getConcept_batch
//   GET /v1/getEntity?concept=C      GET/POST /v1/getEntity_batch
//   GET /healthz                     GET /metrics
//
// --port 0 (the default) binds an ephemeral port; the actual endpoint is
// printed as "listening on http://HOST:PORT" once serving (the CI smoke
// script scrapes that line). Sample query terms that exist in the built
// taxonomy are printed too, so curl has something non-empty to ask for.
//
// SIGTERM/SIGINT trigger a graceful drain (stop accepting, finish
// in-flight requests within --drain-ms, then close) and the process exits
// 0. --max-in-flight / --deadline-us arm the ApiService overload policy:
// shed calls surface as HTTP 429 with Retry-After, blown deadlines as 504
// (DESIGN.md §9).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "core/builder.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "server/service.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "taxonomy/api_service.h"
#include "taxonomy/snapshot.h"
#include "taxonomy/view.h"
#include "text/segmenter.h"
#include "util/net.h"
#include "util/strings.h"

namespace {

using namespace cnpb;

std::atomic<int> g_signal{0};

void HandleSignal(int signum) { g_signal.store(signum); }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--host H] [--threads N] [--entities E]"
               " [--max-in-flight M] [--deadline-us D] [--drain-ms MS]"
               " [--metrics-out BASE] [--snapshot-in PATH]"
               " [--snapshot-out PATH] [--cache-mb MB]"
               " [--poller auto|epoll|poll] [--write-stall-ms MS]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  util::IgnoreSigpipe();  // client disconnects must be EPIPE, not SIGPIPE

  server::HttpServer::Config config;
  size_t entities = 2000;
  size_t max_in_flight = 0;
  long deadline_us = 0;
  size_t cache_mb = 0;
  std::string metrics_out;
  std::string snapshot_in;
  std::string snapshot_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (arg == "--host") {
      config.host = next("--host");
    } else if (arg == "--threads") {
      config.num_threads = std::max(1, std::atoi(next("--threads")));
    } else if (arg == "--entities") {
      entities = static_cast<size_t>(std::atol(next("--entities")));
    } else if (arg == "--max-in-flight") {
      max_in_flight =
          static_cast<size_t>(std::atol(next("--max-in-flight")));
    } else if (arg == "--deadline-us") {
      deadline_us = std::atol(next("--deadline-us"));
    } else if (arg == "--drain-ms") {
      config.drain_deadline =
          std::chrono::milliseconds(std::atol(next("--drain-ms")));
    } else if (arg == "--metrics-out") {
      metrics_out = next("--metrics-out");
    } else if (arg == "--snapshot-in") {
      snapshot_in = next("--snapshot-in");
    } else if (arg == "--snapshot-out") {
      snapshot_out = next("--snapshot-out");
    } else if (arg == "--cache-mb") {
      cache_mb = static_cast<size_t>(std::atol(next("--cache-mb")));
    } else if (arg == "--poller") {
      const std::string poller = next("--poller");
      if (poller == "auto") {
        config.poller = server::HttpServer::Poller::kAuto;
      } else if (poller == "epoll") {
        config.poller = server::HttpServer::Poller::kEpoll;
      } else if (poller == "poll") {
        config.poller = server::HttpServer::Poller::kPoll;
      } else {
        std::fprintf(stderr, "--poller must be auto, epoll, or poll\n");
        return 2;
      }
    } else if (arg == "--write-stall-ms") {
      config.write_stall_timeout =
          std::chrono::milliseconds(std::atol(next("--write-stall-ms")));
    } else {
      return Usage(argv[0]);
    }
  }

  // Resolve the serving backend: mmap a binary snapshot when one is given
  // (zero-copy cold start), otherwise build from the synthetic world — same
  // substrate as the benches; a deployment would load its build pipeline's
  // output either way.
  std::shared_ptr<const taxonomy::ServingView> view;
  if (!snapshot_in.empty()) {
    std::printf("loading snapshot %s...\n", snapshot_in.c_str());
    std::fflush(stdout);
    auto snap = taxonomy::Snapshot::Load(snapshot_in);
    if (!snap.ok()) {
      std::fprintf(stderr, "load snapshot failed: %s\n",
                   snap.status().ToString().c_str());
      return 1;
    }
    std::printf("mmap-loaded %zu nodes, %zu edges, %zu mentions "
                "(%zu bytes)\n",
                (*snap)->num_nodes(), (*snap)->num_edges(),
                (*snap)->num_mentions(), (*snap)->file_bytes());
    view = *std::move(snap);
  } else {
    std::printf("building taxonomy (%zu entities)...\n", entities);
    std::fflush(stdout);
    synth::WorldModel::Config wc;
    wc.num_entities = entities;
    const synth::WorldModel world = synth::WorldModel::Generate(wc);
    const auto output = synth::EncyclopediaGenerator::Generate(world, {});
    text::Segmenter segmenter(&world.lexicon());
    const auto corpus =
        synth::CorpusGenerator::Generate(world, output.dump, segmenter, {});
    std::vector<std::vector<std::string>> corpus_words;
    corpus_words.reserve(corpus.sentences.size());
    for (const auto& sentence : corpus.sentences) {
      std::vector<std::string> words;
      for (const auto& token : sentence) words.push_back(token.word);
      corpus_words.push_back(std::move(words));
    }
    core::CnProbaseBuilder::Config builder_config;
    builder_config.neural.epochs = 1;
    builder_config.neural.max_train_samples = 1000;
    core::CnProbaseBuilder::Report report;
    taxonomy::Taxonomy taxonomy = core::CnProbaseBuilder::Build(
        output.dump, world.lexicon(), corpus_words, builder_config, &report);
    auto frozen = taxonomy::Taxonomy::Freeze(std::move(taxonomy));
    view = std::make_shared<taxonomy::HeapServingView>(
        frozen,
        core::CnProbaseBuilder::BuildMentionIndex(output.dump, *frozen));
  }
  if (!snapshot_out.empty()) {
    if (const util::Status status =
            taxonomy::WriteSnapshot(*view, snapshot_out);
        !status.ok()) {
      std::fprintf(stderr, "write snapshot failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote binary snapshot -> %s\n", snapshot_out.c_str());
  }
  taxonomy::ApiService api(view);
  if (max_in_flight > 0 || deadline_us > 0) {
    taxonomy::ApiService::ServingLimits limits;
    limits.max_in_flight = max_in_flight;
    limits.deadline = std::chrono::microseconds(deadline_us);
    api.SetServingLimits(limits);
  }

  server::ResultCache::Config cache_config;
  cache_config.max_bytes = cache_mb << 20;
  auto endpoints =
      cache_mb > 0
          ? std::make_unique<server::ApiEndpoints>(&api, cache_config)
          : std::make_unique<server::ApiEndpoints>(&api);
  server::HttpServer httpd(config, endpoints->AsHandler());
  if (const util::Status status = httpd.Start(); !status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Sample terms that resolve non-empty, for interactive curl / smoke use.
  // Walks the served view's own mention index, so it works identically for
  // built and snapshot-backed runs.
  view->VisitMentions([&](std::string_view mention,
                          const taxonomy::NodeId* ids, size_t num_ids) {
    if (num_ids == 0) return true;
    const std::string entity(view->Name(ids[0]));
    const auto concepts = api.GetConcept(entity);
    if (concepts.empty()) return true;
    std::printf("sample_mention=%s\nsample_entity=%s\nsample_concept=%s\n",
                std::string(mention).c_str(), entity.c_str(),
                concepts.front().c_str());
    return false;
  });
  std::printf("listening on http://%s:%u (threads=%d, poller=%s, "
              "cache=%zuMB, version=%llu)\n",
              config.host.c_str(), unsigned{httpd.port()},
              config.num_threads, httpd.poller_name(), cache_mb,
              static_cast<unsigned long long>(api.version()));
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("signal %d: draining...\n", g_signal.load());
  std::fflush(stdout);
  httpd.Stop();
  httpd.Wait();

  const server::HttpServer::Stats stats = httpd.stats();
  std::printf("served %llu requests over %llu connections "
              "(%llu parse errors, %llu io errors, %llu idle reclaims, "
              "%llu write-stall reclaims)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.parse_errors),
              static_cast<unsigned long long>(stats.io_errors),
              static_cast<unsigned long long>(stats.idle_timeouts),
              static_cast<unsigned long long>(stats.write_stall_timeouts));
  if (const server::ResultCache* cache = endpoints->cache()) {
    const server::ResultCache::Stats cs = cache->stats();
    std::printf("cache: %.1f%% hit ratio (%llu hits, %llu misses, "
                "%llu evictions, %zu entries, %zu bytes)\n",
                100.0 * cs.hit_ratio(),
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.evictions), cs.entries,
                cs.bytes);
  }
  if (!metrics_out.empty()) {
    api.ExportMetrics(&obs::MetricsRegistry::Global());
    if (const util::Status status = obs::WriteMetricsFiles(
            obs::MetricsRegistry::Global(), metrics_out);
        !status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s.prom / %s.json\n",
                metrics_out.c_str(), metrics_out.c_str());
  }
  return 0;
}
