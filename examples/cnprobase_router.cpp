// Replicated serving demo for the shard-router tier (DESIGN.md §12): one
// process plays the whole cluster. The parent builds a taxonomy from the
// synthetic world, writes a binary snapshot, then fork/execs itself
// --shards x --replicas times as backend processes — each mmap-loads the
// snapshot zero-copy and serves the three public APIs on an ephemeral
// port. The parent wires the reported ports into a ShardMap, starts a
// Router in front, and serves until SIGTERM/SIGINT:
//
//   cnprobase_router [--shards N] [--replicas R] [--port P] [--host H]
//                    [--threads T] [--entities E] [--hedge-ms MS]
//                    [--snapshot PATH]
//
// Every backend serves the full snapshot (the router partitions the
// keyspace; replicating the data keeps the demo self-contained — see the
// honesty note in DESIGN.md §12). Each backend's pid/shard/replica/port is
// printed, so a driver (ci/router_smoke.sh) can kill one mid-traffic and
// watch the router fail over. SIGTERM drains the router, SIGTERMs the
// backends, and reaps them; exit 0 means every process drained cleanly.
//
// Internal flags for the re-exec'd backend role (not for interactive use):
//   --backend-snapshot PATH   serve this snapshot instead of routing
//   --announce-fd FD          write "PORT\n" here once listening
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/builder.h"
#include "router/router.h"
#include "router/shard_map.h"
#include "server/server.h"
#include "server/service.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "taxonomy/api_service.h"
#include "taxonomy/snapshot.h"
#include "taxonomy/view.h"
#include "text/segmenter.h"
#include "util/net.h"

namespace {

using namespace cnpb;

std::atomic<int> g_signal{0};

void HandleSignal(int signum) { g_signal.store(signum); }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--shards N] [--replicas R] [--port P] [--host H]"
               " [--threads T] [--entities E] [--hedge-ms MS]"
               " [--snapshot PATH]\n",
               argv0);
  return 2;
}

// The backend role: mmap the snapshot, serve it on an ephemeral port,
// announce the port, drain on SIGTERM. One per fork/exec.
int RunBackend(const std::string& snapshot_path, int announce_fd,
               const std::string& host) {
  auto snap = taxonomy::Snapshot::Load(snapshot_path);
  if (!snap.ok()) {
    std::fprintf(stderr, "backend: load %s failed: %s\n",
                 snapshot_path.c_str(), snap.status().ToString().c_str());
    return 1;
  }
  taxonomy::ApiService api(*std::move(snap));
  server::ApiEndpoints endpoints(&api);
  server::HttpServer::Config config;
  config.host = host;
  config.num_threads = 2;
  config.drain_deadline = std::chrono::milliseconds(2000);
  server::HttpServer httpd(config, endpoints.AsHandler());
  if (const util::Status status = httpd.Start(); !status.ok()) {
    std::fprintf(stderr, "backend: start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  if (announce_fd >= 0) {
    char line[16];
    const int n =
        std::snprintf(line, sizeof(line), "%u\n", unsigned{httpd.port()});
    if (::write(announce_fd, line, static_cast<size_t>(n)) != n) {
      std::fprintf(stderr, "backend: announce failed\n");
      return 1;
    }
    ::close(announce_fd);
  }
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  httpd.Stop();
  httpd.Wait();
  return 0;
}

struct BackendProc {
  pid_t pid = -1;
  uint16_t port = 0;
  size_t shard = 0;
  size_t replica = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::IgnoreSigpipe();

  size_t shards = 2;
  size_t replicas = 2;
  size_t entities = 800;
  long hedge_ms = 0;  // 0 = router default
  std::string snapshot_path;
  std::string backend_snapshot;
  int announce_fd = -1;
  server::HttpServer::Config frontend;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--shards") {
      shards = std::max(1l, std::atol(next("--shards")));
    } else if (arg == "--replicas") {
      replicas = std::max(1l, std::atol(next("--replicas")));
    } else if (arg == "--port") {
      frontend.port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (arg == "--host") {
      frontend.host = next("--host");
    } else if (arg == "--threads") {
      frontend.num_threads = std::max(1, std::atoi(next("--threads")));
    } else if (arg == "--entities") {
      entities = static_cast<size_t>(std::atol(next("--entities")));
    } else if (arg == "--hedge-ms") {
      hedge_ms = std::atol(next("--hedge-ms"));
    } else if (arg == "--snapshot") {
      snapshot_path = next("--snapshot");
    } else if (arg == "--backend-snapshot") {
      backend_snapshot = next("--backend-snapshot");
    } else if (arg == "--announce-fd") {
      announce_fd = std::atoi(next("--announce-fd"));
    } else {
      return Usage(argv[0]);
    }
  }
  if (!backend_snapshot.empty()) {
    return RunBackend(backend_snapshot, announce_fd, frontend.host);
  }

  // Build once, snapshot, and let every backend mmap the same file — the
  // same cold-start path a real deployment's build pipeline feeds.
  std::printf("building taxonomy (%zu entities)...\n", entities);
  std::fflush(stdout);
  synth::WorldModel::Config wc;
  wc.num_entities = entities;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto output = synth::EncyclopediaGenerator::Generate(world, {});
  text::Segmenter segmenter(&world.lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, {});
  std::vector<std::vector<std::string>> corpus_words;
  corpus_words.reserve(corpus.sentences.size());
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    corpus_words.push_back(std::move(words));
  }
  core::CnProbaseBuilder::Config builder_config;
  builder_config.neural.epochs = 1;
  builder_config.neural.max_train_samples = 1000;
  core::CnProbaseBuilder::Report report;
  taxonomy::Taxonomy taxonomy = core::CnProbaseBuilder::Build(
      output.dump, world.lexicon(), corpus_words, builder_config, &report);
  auto frozen = taxonomy::Taxonomy::Freeze(std::move(taxonomy));
  std::shared_ptr<const taxonomy::ServingView> view =
      std::make_shared<taxonomy::HeapServingView>(
          frozen,
          core::CnProbaseBuilder::BuildMentionIndex(output.dump, *frozen));

  const bool temp_snapshot = snapshot_path.empty();
  if (temp_snapshot) {
    snapshot_path = "/tmp/cnprobase_router_" +
                    std::to_string(static_cast<long>(::getpid())) + ".snap";
  }
  if (const util::Status status = taxonomy::WriteSnapshot(*view, snapshot_path);
      !status.ok()) {
    std::fprintf(stderr, "write snapshot failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("snapshot -> %s\n", snapshot_path.c_str());

  // Spawn the backends: fork/exec ourselves in the backend role, one pipe
  // each to learn the ephemeral port.
  std::vector<BackendProc> procs;
  std::vector<std::vector<router::ShardMap::Endpoint>> topology(shards);
  for (size_t s = 0; s < shards; ++s) {
    for (size_t r = 0; r < replicas; ++r) {
      int fds[2];
      if (::pipe(fds) != 0) {
        std::perror("pipe");
        return 1;
      }
      const pid_t pid = ::fork();
      if (pid < 0) {
        std::perror("fork");
        return 1;
      }
      if (pid == 0) {
        ::close(fds[0]);
        const std::string fd_arg = std::to_string(fds[1]);
        ::execl("/proc/self/exe", argv[0], "--backend-snapshot",
                snapshot_path.c_str(), "--announce-fd", fd_arg.c_str(),
                "--host", frontend.host.c_str(), static_cast<char*>(nullptr));
        std::perror("execl");  // only reached on failure
        ::_exit(127);
      }
      ::close(fds[1]);
      std::string announced;
      char c;
      while (::read(fds[0], &c, 1) == 1 && c != '\n') announced.push_back(c);
      ::close(fds[0]);
      const int port = announced.empty() ? 0 : std::atoi(announced.c_str());
      if (port <= 0 || port > 65535) {
        std::fprintf(stderr, "backend (shard %zu replica %zu) never came up\n",
                     s, r);
        return 1;
      }
      BackendProc proc;
      proc.pid = pid;
      proc.port = static_cast<uint16_t>(port);
      proc.shard = s;
      proc.replica = r;
      procs.push_back(proc);
      topology[s].push_back({frontend.host, proc.port});
      std::printf("backend pid=%ld shard=%zu replica=%zu port=%u\n",
                  static_cast<long>(pid), s, r, unsigned{proc.port});
    }
  }
  std::fflush(stdout);

  router::ShardMap::Options map_options;
  map_options.quarantine_period = std::chrono::milliseconds(500);
  router::ShardMap shard_map(std::move(topology), map_options);
  router::Router::Options options;
  options.server = frontend;
  if (hedge_ms > 0) {
    options.hedge_initial = std::chrono::milliseconds(hedge_ms);
  }
  router::Router router(&shard_map, options);
  if (const util::Status status = router.Start(); !status.ok()) {
    std::fprintf(stderr, "router start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // Sample terms that resolve non-empty, for curl / the smoke script.
  {
    taxonomy::ApiService sampler(view);
    view->VisitMentions([&](std::string_view mention,
                            const taxonomy::NodeId* ids, size_t num_ids) {
      if (num_ids == 0) return true;
      const std::string entity(view->Name(ids[0]));
      const auto concepts = sampler.GetConcept(entity);
      if (concepts.empty()) return true;
      std::printf("sample_mention=%s\nsample_entity=%s\nsample_concept=%s\n",
                  std::string(mention).c_str(), entity.c_str(),
                  concepts.front().c_str());
      return false;
    });
  }
  std::printf("router listening on http://%s:%u "
              "(shards=%zu, replicas=%zu, hedge=%lldms)\n",
              frontend.host.c_str(), unsigned{router.port()}, shards, replicas,
              static_cast<long long>(router.hedge_delay().count()));
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("signal %d: draining router...\n", g_signal.load());
  std::fflush(stdout);
  router.Stop();
  router.Wait();

  const router::Router::Stats stats = router.stats();
  std::printf("router: %llu forwarded, %llu batches, %llu failovers, "
              "%llu hedges (%llu wins), %llu coherence retries, "
              "%llu mixed-generation refusals, %llu no-backend\n",
              static_cast<unsigned long long>(stats.forwarded),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.hedges),
              static_cast<unsigned long long>(stats.hedge_wins),
              static_cast<unsigned long long>(stats.coherence_retries),
              static_cast<unsigned long long>(stats.mixed_generation_refusals),
              static_cast<unsigned long long>(stats.no_backend));

  // Stop the cluster: SIGTERM every live backend (some may already have
  // been killed by a chaos driver — ESRCH is fine), then reap them all.
  int failures = 0;
  for (const BackendProc& proc : procs) {
    ::kill(proc.pid, SIGTERM);
  }
  for (const BackendProc& proc : procs) {
    int wstatus = 0;
    if (::waitpid(proc.pid, &wstatus, 0) != proc.pid) {
      std::fprintf(stderr, "waitpid(%ld) failed\n",
                   static_cast<long>(proc.pid));
      ++failures;
      continue;
    }
    const bool clean_exit = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
    // A backend the driver killed mid-test died by signal; that is the
    // test, not a failure of ours.
    const bool killed = WIFSIGNALED(wstatus);
    if (!clean_exit && !killed) {
      std::fprintf(stderr, "backend pid=%ld exited %d\n",
                   static_cast<long>(proc.pid), WEXITSTATUS(wstatus));
      ++failures;
    }
  }
  if (temp_snapshot) ::unlink(snapshot_path.c_str());
  if (failures > 0) return 1;
  std::printf("router drained; %zu backends reaped\n", procs.size());
  return 0;
}
