// Multi-collection serving front end (DESIGN.md §14): splits the synthetic
// world into overlapping per-site dumps (the CN-DBpedia setting — no site
// alone has everything), builds one taxonomy per site, and hosts both as
// independent collections in a single process:
//
//   cnprobase_collections --root DIR [--port P] [--host H] [--threads N]
//                         [--entities E] [--publish-min-pages N]
//                         [--publish-max-delay-ms T] [--drain-ms MS]
//                         [--cache-mb MB] [--metrics-out BASE]
//
//   site_a  read-only, snapshot-persisted under --root (also the default
//           collection: bare /v1/... paths serve it byte-compatibly)
//   site_b  ingest-enabled: WAL under ROOT/site_b/wal, POST
//           /v1/c/site_b/ingest is a durable ack, the daemon applies and
//           publishes into site_b only
//
//   GET /v1/collections              both registrations + versions
//   GET /v1/c/<site>/isa|lca|similar|expand     reasoning queries
//   GET /v1/c/<site>/men2ent|getConcept|getEntity ...  the read API
//
// The point the CI smoke script drives: publishing into site_b never
// perturbs site_a's version stamps — isolation falls out of per-collection
// ApiService ownership, not an after-the-fact check.
//
// --port 0 (default) binds an ephemeral port, printed as "listening on
// http://HOST:PORT". One "sample<TAB>collection<TAB>entity<TAB>concept<TAB>
// ancestor<TAB>sibling" line per collection gives curl non-empty reasoning
// targets. SIGTERM/SIGINT: stop accepting, drain every ingest daemon, exit 0.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collections/manager.h"
#include "core/builder.h"
#include "core/incremental.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/site_split.h"
#include "synth/world.h"
#include "taxonomy/api_service.h"
#include "taxonomy/view.h"
#include "text/segmenter.h"
#include "util/net.h"

namespace {

using namespace cnpb;

std::atomic<int> g_signal{0};

void HandleSignal(int signum) { g_signal.store(signum); }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --root DIR [--port P] [--host H] [--threads N]"
               " [--entities E] [--publish-min-pages N]"
               " [--publish-max-delay-ms T] [--drain-ms MS] [--cache-mb MB]"
               " [--metrics-out BASE]\n",
               argv0);
  return 2;
}

// One entity with a parent (and, when the graph is deep enough, a
// grandparent and a sibling) — enough for the smoke script to issue isa,
// lca, similar and expand queries that resolve non-trivially.
void PrintSample(const std::string& name, const taxonomy::ServingView& view) {
  for (taxonomy::NodeId id = 0; id < view.num_nodes(); ++id) {
    if (view.Kind(id) != taxonomy::NodeKind::kEntity) continue;
    if (view.NumHypernyms(id) == 0) continue;
    taxonomy::NodeId parent = taxonomy::kInvalidNode;
    view.VisitHypernyms(id, [&](const taxonomy::HalfEdge& edge) {
      parent = edge.node;
      return false;
    });
    taxonomy::NodeId grandparent = parent;
    view.VisitHypernyms(parent, [&](const taxonomy::HalfEdge& edge) {
      grandparent = edge.node;
      return false;
    });
    taxonomy::NodeId sibling = id;
    view.VisitHyponyms(parent, [&](const taxonomy::HalfEdge& edge) {
      if (edge.node == id) return true;
      sibling = edge.node;
      return false;
    });
    std::printf("sample\t%s\t%.*s\t%.*s\t%.*s\t%.*s\n", name.c_str(),
                static_cast<int>(view.Name(id).size()), view.Name(id).data(),
                static_cast<int>(view.Name(parent).size()),
                view.Name(parent).data(),
                static_cast<int>(view.Name(grandparent).size()),
                view.Name(grandparent).data(),
                static_cast<int>(view.Name(sibling).size()),
                view.Name(sibling).data());
    return;
  }
  std::printf("sample\t%s\t-\t-\t-\t-\n", name.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::IgnoreSigpipe();

  server::HttpServer::Config config;
  collections::CollectionManager::Options options;
  options.default_collection = "site_a";
  ingest::IngestDaemon::Options daemon_options;
  daemon_options.publish_min_pages = 4;
  size_t entities = 800;
  size_t cache_mb = 0;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      options.root_dir = next("--root");
    } else if (arg == "--port") {
      config.port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (arg == "--host") {
      config.host = next("--host");
    } else if (arg == "--threads") {
      config.num_threads = std::max(1, std::atoi(next("--threads")));
    } else if (arg == "--entities") {
      entities = static_cast<size_t>(std::atol(next("--entities")));
    } else if (arg == "--publish-min-pages") {
      daemon_options.publish_min_pages =
          static_cast<size_t>(std::atol(next("--publish-min-pages")));
    } else if (arg == "--publish-max-delay-ms") {
      daemon_options.publish_max_delay = std::chrono::milliseconds(
          std::atol(next("--publish-max-delay-ms")));
    } else if (arg == "--drain-ms") {
      config.drain_deadline =
          std::chrono::milliseconds(std::atol(next("--drain-ms")));
    } else if (arg == "--cache-mb") {
      cache_mb = static_cast<size_t>(std::atol(next("--cache-mb")));
    } else if (arg == "--metrics-out") {
      metrics_out = next("--metrics-out");
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.root_dir.empty()) return Usage(argv[0]);
  if (cache_mb > 0) {
    options.enable_cache = true;
    options.cache_config.max_bytes = cache_mb << 20;
  }

  // One deterministic world, split into overlapping sites: the same page
  // may exist on both sites with different content regions retained.
  std::printf("building site taxonomies (%zu entities)...\n", entities);
  std::fflush(stdout);
  synth::WorldModel::Config wc;
  wc.num_entities = entities;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto master = synth::EncyclopediaGenerator::Generate(world, {});
  synth::SiteSplitConfig split_config;
  split_config.num_sites = 2;
  const auto sites = synth::SplitIntoSites(master.dump, split_config);

  collections::CollectionManager manager(options);

  // site_a: the classic batch build, served read-only and persisted so a
  // restart could mmap it back via CollectionManager::Open().
  text::Segmenter segmenter(&world.lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(world, sites[0], segmenter, {});
  std::vector<std::vector<std::string>> corpus_words;
  corpus_words.reserve(corpus.sentences.size());
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    corpus_words.push_back(std::move(words));
  }
  core::CnProbaseBuilder::Config builder_config;
  builder_config.neural.epochs = 1;
  builder_config.neural.max_train_samples = 1000;
  taxonomy::Taxonomy taxonomy_a = core::CnProbaseBuilder::Build(
      sites[0], world.lexicon(), corpus_words, builder_config, nullptr);
  auto frozen_a = taxonomy::Taxonomy::Freeze(std::move(taxonomy_a));
  auto view_a = std::make_shared<taxonomy::HeapServingView>(
      frozen_a, core::CnProbaseBuilder::BuildMentionIndex(sites[0], *frozen_a));
  if (const util::Status status = manager.AddCollection("site_a", view_a);
      !status.ok()) {
    std::fprintf(stderr, "add site_a failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // site_b: ingest-enabled — incremental base from its own site dump, WAL
  // recovery inside AddIngestCollection, live upserts over HTTP after.
  core::CnProbaseBuilder::Config stream_config;
  stream_config.neural.epochs = 1;
  stream_config.neural.max_train_samples = 1000;
  // Streamed pages carry explicit relations; the statistical verifier has
  // no corpus evidence for live traffic (same trade cnprobase_ingestd makes).
  stream_config.enable_verification = false;
  core::IncrementalUpdater updater(sites[1], &world.lexicon(), {},
                                   stream_config);
  if (const util::Status status =
          manager.AddIngestCollection("site_b", &updater, daemon_options);
      !status.ok()) {
    std::fprintf(stderr, "add site_b failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  server::HttpServer httpd(config, manager.AsHandler());
  if (const util::Status status = httpd.Start(); !status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "listening on http://%s:%u (threads=%d, root=%s, site_a v%llu, "
      "site_b v%llu)\n",
      config.host.c_str(), unsigned{httpd.port()}, config.num_threads,
      options.root_dir.c_str(),
      static_cast<unsigned long long>(manager.service("site_a")->version()),
      static_cast<unsigned long long>(manager.service("site_b")->version()));
  PrintSample("site_a", *manager.service("site_a")->CurrentView());
  PrintSample("site_b", *manager.service("site_b")->CurrentView());
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("signal %d: draining...\n", g_signal.load());
  std::fflush(stdout);

  httpd.Stop();
  httpd.Wait();
  const util::Status drained = manager.StopAll();
  std::printf("drained: site_a v%llu, site_b v%llu\n",
              static_cast<unsigned long long>(
                  manager.service("site_a")->version()),
              static_cast<unsigned long long>(
                  manager.service("site_b")->version()));
  if (!drained.ok()) {
    std::fprintf(stderr, "drain failed: %s\n", drained.ToString().c_str());
    return 1;
  }
  if (!metrics_out.empty()) {
    manager.service("site_a")->ExportMetrics(&obs::MetricsRegistry::Global());
    manager.service("site_b")->ExportMetrics(&obs::MetricsRegistry::Global());
    manager.daemon("site_b")->ExportMetrics(&obs::MetricsRegistry::Global());
    if (const util::Status status = obs::WriteMetricsFiles(
            obs::MetricsRegistry::Global(), metrics_out);
        !status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s.prom / %s.json\n", metrics_out.c_str(),
                metrics_out.c_str());
  }
  return 0;
}
