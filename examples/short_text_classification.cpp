// Short-text classification with taxonomy knowledge — the application the
// paper cites as a consumer of CN-Probase (Chen et al., AAAI 2019, "Deep
// Short Text Classification with Knowledge Powered Attention"). Short texts
// are sparse; lifting detected entities to their taxonomy concepts supplies
// the missing evidence. This demo classifies synthetic short texts into
// domains with (a) a no-knowledge keyword baseline and (b) taxonomy
// conceptualisation, and reports the accuracy gap.
//
//   ./short_text_classification [num_entities]
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "core/builder.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "text/trie_matcher.h"
#include "text/segmenter.h"
#include "util/rng.h"

namespace {

using cnpb::synth::Domain;

const char* DomainName(Domain domain) {
  switch (domain) {
    case Domain::kPerson:
      return "人物";
    case Domain::kPlace:
      return "地点";
    case Domain::kWork:
      return "作品";
    case Domain::kOrg:
      return "组织";
    case Domain::kBio:
      return "生物";
    case Domain::kFood:
      return "食物";
    case Domain::kProduct:
      return "产品";
    case Domain::kEvent:
      return "事件";
    case Domain::kOther:
      return "其他";
  }
  return "其他";
}

struct LabeledText {
  std::string text;
  Domain label;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cnpb;
  const size_t num_entities = argc > 1 ? std::atol(argv[1]) : 4000;

  synth::WorldModel::Config wc;
  wc.num_entities = num_entities;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto output = synth::EncyclopediaGenerator::Generate(world, {});
  text::Segmenter segmenter(&world.lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, {});
  std::vector<std::vector<std::string>> corpus_words;
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    corpus_words.push_back(std::move(words));
  }
  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 2;
  config.neural.max_train_samples = 1000;
  for (const char* word : synth::ThematicWords()) {
    config.verification.syntax.thematic_lexicon.emplace_back(word);
  }
  core::CnProbaseBuilder::Report report;
  const auto taxonomy = core::CnProbaseBuilder::Build(
      output.dump, world.lexicon(), corpus_words, config, &report);

  // Mention detector over taxonomy entities.
  text::TrieMatcher matcher;
  for (const auto& page : output.dump.pages()) {
    const taxonomy::NodeId id = taxonomy.Find(page.name);
    if (id == taxonomy::kInvalidNode) continue;
    matcher.Add(page.mention, static_cast<uint64_t>(id) + 1);
    for (const std::string& alias : page.aliases) {
      matcher.Add(alias, static_cast<uint64_t>(id) + 1);
    }
  }

  // Domain roots by name -> Domain.
  const std::unordered_map<std::string, Domain> roots = {
      {"人物", Domain::kPerson}, {"地点", Domain::kPlace},
      {"作品", Domain::kWork},   {"组织", Domain::kOrg},
      {"生物", Domain::kBio},    {"食物", Domain::kFood},
      {"产品", Domain::kProduct}, {"事件", Domain::kEvent},
  };

  // Labeled short texts: each mentions one entity; the label is the
  // entity's true domain. Texts give almost no surface signal on their own.
  util::Rng rng(321);
  std::vector<LabeledText> texts;
  const char* templates[] = {"我很喜欢%s", "%s怎么样", "帮我查一下%s",
                             "%s真不错", "聊聊%s吧"};
  for (const synth::WorldEntity& entity : world.entities()) {
    if (!rng.Bernoulli(0.2)) continue;
    LabeledText item;
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer), templates[rng.Uniform(5)],
                  entity.mention.c_str());
    item.text = buffer;
    item.label = entity.domain;
    texts.push_back(std::move(item));
    if (texts.size() >= 3000) break;
  }

  // Baseline: keyword heuristics only (《》 -> work; suffix cues; else the
  // majority class 人物).
  size_t baseline_correct = 0;
  for (const LabeledText& item : texts) {
    Domain guess = Domain::kPerson;
    if (item.text.find("《") != std::string::npos) guess = Domain::kWork;
    if (item.text.find("公司") != std::string::npos ||
        item.text.find("大学") != std::string::npos) {
      guess = Domain::kOrg;
    }
    if (guess == item.label) ++baseline_correct;
  }

  // Taxonomy classifier: detect the entity, walk its transitive hypernyms
  // to a domain root.
  size_t taxonomy_correct = 0, matched = 0;
  for (const LabeledText& item : texts) {
    const auto matches = matcher.FindAll(item.text);
    Domain guess = Domain::kPerson;
    if (!matches.empty()) {
      ++matched;
      const auto id =
          static_cast<taxonomy::NodeId>(matches[0].payload - 1);
      for (const taxonomy::NodeId up : taxonomy.TransitiveHypernyms(id)) {
        auto it = roots.find(taxonomy.Name(up));
        if (it != roots.end()) {
          guess = it->second;
          break;
        }
      }
    }
    if (guess == item.label) ++taxonomy_correct;
  }

  std::printf("short texts:                 %zu (8 domain labels)\n",
              texts.size());
  std::printf("keyword baseline accuracy:   %.1f%%\n",
              100.0 * baseline_correct / texts.size());
  std::printf("taxonomy accuracy:           %.1f%%  (%.1f%% texts matched an "
              "entity)\n",
              100.0 * taxonomy_correct / texts.size(),
              100.0 * matched / texts.size());
  std::printf("\nexample classifications:\n");
  for (size_t i = 0; i < texts.size() && i < 5; ++i) {
    const auto matches = matcher.FindAll(texts[i].text);
    std::printf("  \"%s\" -> gold %s", texts[i].text.c_str(),
                DomainName(texts[i].label));
    if (!matches.empty()) {
      const auto id = static_cast<taxonomy::NodeId>(matches[0].payload - 1);
      std::printf("  (entity: %s)", taxonomy.Name(id).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
