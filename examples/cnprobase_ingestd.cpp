// Continuous-ingestion daemon (DESIGN.md §13): builds a base taxonomy from
// the synthetic world, recovers any WAL state under --wal-dir (checkpoint +
// suffix replay), and serves both the query APIs and the ingest APIs over
// HTTP/1.1 until SIGTERM/SIGINT:
//
//   cnprobase_ingestd --wal-dir DIR [--port P] [--host H] [--threads N]
//                     [--entities E] [--publish-min-pages N]
//                     [--publish-max-delay-ms T] [--compact-every N]
//                     [--drain-ms MS] [--metrics-out BASE]
//
//   POST /v1/ingest            one op per line (see server/ingest_endpoints.h)
//   GET  /v1/ingest_status     daemon stats as JSON
//   GET  /v1/men2ent ...       the full read API (ApiEndpoints fallback)
//
// A 200 from /v1/ingest means the operations are fsynced in the WAL: kill
// this process at any instant — including SIGKILL mid-batch — and a restart
// with the same --wal-dir recovers every acknowledged page exactly once
// (the CI smoke script does exactly that).
//
// --port 0 (the default) binds an ephemeral port; the endpoint is printed
// as "listening on http://HOST:PORT" once serving. SIGTERM/SIGINT drain:
// stop accepting, apply + publish everything acked, write a final
// checkpoint, exit 0.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.h"
#include "ingest/daemon.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "server/ingest_endpoints.h"
#include "server/server.h"
#include "server/service.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "taxonomy/api_service.h"
#include "text/segmenter.h"
#include "util/net.h"

namespace {

using namespace cnpb;

std::atomic<int> g_signal{0};

void HandleSignal(int signum) { g_signal.store(signum); }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --wal-dir DIR [--port P] [--host H] [--threads N]"
               " [--entities E] [--publish-min-pages N]"
               " [--publish-max-delay-ms T] [--compact-every N]"
               " [--drain-ms MS] [--metrics-out BASE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  util::IgnoreSigpipe();

  server::HttpServer::Config config;
  ingest::IngestDaemon::Options daemon_options;
  size_t entities = 500;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--wal-dir") {
      daemon_options.wal_dir = next("--wal-dir");
    } else if (arg == "--port") {
      config.port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (arg == "--host") {
      config.host = next("--host");
    } else if (arg == "--threads") {
      config.num_threads = std::max(1, std::atoi(next("--threads")));
    } else if (arg == "--entities") {
      entities = static_cast<size_t>(std::atol(next("--entities")));
    } else if (arg == "--publish-min-pages") {
      daemon_options.publish_min_pages =
          static_cast<size_t>(std::atol(next("--publish-min-pages")));
    } else if (arg == "--publish-max-delay-ms") {
      daemon_options.publish_max_delay = std::chrono::milliseconds(
          std::atol(next("--publish-max-delay-ms")));
    } else if (arg == "--compact-every") {
      daemon_options.compact_every_records =
          static_cast<uint64_t>(std::atol(next("--compact-every")));
    } else if (arg == "--drain-ms") {
      config.drain_deadline =
          std::chrono::milliseconds(std::atol(next("--drain-ms")));
    } else if (arg == "--metrics-out") {
      metrics_out = next("--metrics-out");
    } else {
      return Usage(argv[0]);
    }
  }
  if (daemon_options.wal_dir.empty()) return Usage(argv[0]);

  // Base build from the synthetic world — deterministic, so every restart
  // reconstructs the identical base and recovery only has to re-derive what
  // arrived through the WAL.
  std::printf("building base taxonomy (%zu entities)...\n", entities);
  std::fflush(stdout);
  synth::WorldModel::Config wc;
  wc.num_entities = entities;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto output = synth::EncyclopediaGenerator::Generate(world, {});
  text::Segmenter segmenter(&world.lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, {});
  std::vector<std::vector<std::string>> corpus_words;
  corpus_words.reserve(corpus.sentences.size());
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    corpus_words.push_back(std::move(words));
  }
  core::CnProbaseBuilder::Config builder_config;
  builder_config.neural.epochs = 1;
  builder_config.neural.max_train_samples = 1000;
  // Streamed pages carry explicit relations (infobox/tags); the statistical
  // verifier needs corpus evidence that live traffic does not ship, so the
  // daemon applies without it — same trade the chaos tests make.
  builder_config.enable_verification = false;
  core::IncrementalUpdater updater(output.dump, &world.lexicon(),
                                   corpus_words, builder_config);

  taxonomy::ApiService api(updater.snapshot());
  ingest::IngestDaemon daemon(&updater, &api, daemon_options);
  if (const util::Status status = daemon.Start(); !status.ok()) {
    std::fprintf(stderr, "ingest recovery failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  const ingest::WalReplayReport& recovery = daemon.recovery_report();
  std::printf("recovered wal: %llu replayed, %llu skipped, %zu/%zu segments "
              "scanned%s\n",
              static_cast<unsigned long long>(recovery.records_delivered),
              static_cast<unsigned long long>(recovery.records_skipped),
              recovery.segments_scanned, recovery.segments_total,
              recovery.torn_tail ? " (torn tail discarded)" : "");

  server::ApiEndpoints read_endpoints(&api);
  server::IngestEndpoints endpoints(&daemon, read_endpoints.AsHandler());
  server::HttpServer httpd(config, endpoints.AsHandler());
  if (const util::Status status = httpd.Start(); !status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("listening on http://%s:%u (threads=%d, wal=%s, version=%llu)\n",
              config.host.c_str(), unsigned{httpd.port()}, config.num_threads,
              daemon_options.wal_dir.c_str(),
              static_cast<unsigned long long>(api.version()));
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("signal %d: draining...\n", g_signal.load());
  std::fflush(stdout);

  // Order: stop taking requests first, then drain the daemon — every ack
  // the HTTP layer handed out is applied, published, and checkpointed
  // before exit.
  httpd.Stop();
  httpd.Wait();
  const util::Status drained = daemon.Stop(ingest::IngestDaemon::StopMode::kDrain);
  const ingest::IngestDaemon::Stats stats = daemon.stats();
  std::printf("drained: %llu submitted, %llu acked, %llu applied, "
              "%llu publishes, %llu compactions (cursor lsn %llu)\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.acked),
              static_cast<unsigned long long>(stats.applied),
              static_cast<unsigned long long>(stats.publishes),
              static_cast<unsigned long long>(stats.compactions),
              static_cast<unsigned long long>(stats.cursor_lsn));
  if (!drained.ok()) {
    std::fprintf(stderr, "drain failed: %s\n", drained.ToString().c_str());
    return 1;
  }
  if (!metrics_out.empty()) {
    api.ExportMetrics(&obs::MetricsRegistry::Global());
    daemon.ExportMetrics(&obs::MetricsRegistry::Global());
    if (const util::Status status = obs::WriteMetricsFiles(
            obs::MetricsRegistry::Global(), metrics_out);
        !status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s.prom / %s.json\n", metrics_out.c_str(),
                metrics_out.c_str());
  }
  return 0;
}
