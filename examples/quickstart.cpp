// Quickstart: generate a small synthetic encyclopedia, show one page with
// the five regions of the paper's Figure 1, build CN-Probase over it, and
// query the three public APIs.
//
//   ./quickstart [num_entities]
#include <cstdio>
#include <cstdlib>

#include "core/builder.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "taxonomy/api_service.h"
#include "text/segmenter.h"

int main(int argc, char** argv) {
  using namespace cnpb;
  const size_t num_entities = argc > 1 ? std::atol(argv[1]) : 2000;

  // 1. A synthetic world + its CN-DBpedia-style dump.
  synth::WorldModel::Config wc;
  wc.num_entities = num_entities;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto output =
      synth::EncyclopediaGenerator::Generate(world, {});
  std::printf("generated %zu encyclopedia pages\n\n", output.dump.size());

  // 2. One page, Figure-1 style.
  for (const kb::EncyclopediaPage& page : output.dump.pages()) {
    if (page.bracket.empty() || page.abstract.empty() || page.tags.empty() ||
        page.infobox.size() < 4) {
      continue;
    }
    std::printf("(a) entity with bracket: %s\n", page.name.c_str());
    std::printf("(b) abstract:            %s\n", page.abstract.c_str());
    std::printf("(c) infobox:\n");
    for (const kb::SpoTriple& t : page.infobox) {
      std::printf("      %s = %s\n", t.predicate.c_str(), t.object.c_str());
    }
    std::printf("(d) tags:                ");
    for (const std::string& tag : page.tags) std::printf("%s ", tag.c_str());
    std::printf("\n\n");
    break;
  }

  // 3. Build the taxonomy (generation + verification).
  text::Segmenter segmenter(&world.lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, {});
  std::vector<std::vector<std::string>> corpus_words;
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    corpus_words.push_back(std::move(words));
  }
  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 2;
  config.neural.max_train_samples = 800;
  for (const char* word : synth::ThematicWords()) {
    config.verification.syntax.thematic_lexicon.emplace_back(word);
  }
  core::CnProbaseBuilder::Report report;
  const auto taxonomy = core::CnProbaseBuilder::Build(
      output.dump, world.lexicon(), corpus_words, config, &report);
  std::printf("built taxonomy: %zu entities, %zu concepts, %zu isA "
              "(%zu rejected by verification)\n\n",
              taxonomy.NumEntities(), taxonomy.NumConcepts(),
              taxonomy.num_edges(), report.verification.rejected_total());

  // 4. The three public APIs.
  taxonomy::ApiService api(&taxonomy);
  core::CnProbaseBuilder::RegisterMentions(output.dump, taxonomy, &api);
  for (const kb::EncyclopediaPage& page : output.dump.pages()) {
    const auto entities = api.Men2Ent(page.mention);
    if (entities.empty()) continue;
    const std::string& name = taxonomy.Name(entities[0]);
    const auto concepts = api.GetConcept(name);
    if (concepts.size() < 2) continue;
    std::printf("men2ent(\"%s\")    -> %s\n", page.mention.c_str(),
                name.c_str());
    std::printf("getConcept(\"%s\") -> ", name.c_str());
    for (const auto& c : concepts) std::printf("%s ", c.c_str());
    std::printf("\n");
    const auto hyponyms = api.GetEntity(concepts[0], 5);
    std::printf("getEntity(\"%s\", 5) -> ", concepts[0].c_str());
    for (const auto& h : hyponyms) std::printf("%s ", h.c_str());
    std::printf("\n");
    break;
  }
  return 0;
}
