// CN-DBpedia-style construction: three partial source encyclopedias (think
// Baidu Baike / Hudong Baike / Chinese Wikipedia) are merged into one dump,
// and the taxonomy built from the union beats any single site — the reason
// the paper's pipeline starts from a merged encyclopedia.
//
//   ./multi_site_merge [num_entities]
#include <cstdio>
#include <cstdlib>

#include "core/builder.h"
#include "eval/precision.h"
#include "kb/merge.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/site_split.h"
#include "synth/world.h"
#include "text/segmenter.h"

namespace {

cnpb::taxonomy::Taxonomy BuildFrom(
    const cnpb::kb::EncyclopediaDump& dump,
    const cnpb::synth::WorldModel& world,
    const std::vector<std::vector<std::string>>& corpus,
    cnpb::core::CnProbaseBuilder::Report* report) {
  cnpb::core::CnProbaseBuilder::Config config;
  config.neural.epochs = 2;
  config.neural.max_train_samples = 1000;
  for (const char* word : cnpb::synth::ThematicWords()) {
    config.verification.syntax.thematic_lexicon.emplace_back(word);
  }
  return cnpb::core::CnProbaseBuilder::Build(dump, world.lexicon(), corpus,
                                             config, report);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cnpb;
  const size_t num_entities = argc > 1 ? std::atol(argv[1]) : 4000;

  synth::WorldModel::Config wc;
  wc.num_entities = num_entities;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto master = synth::EncyclopediaGenerator::Generate(world, {});
  const auto sites = synth::SplitIntoSites(master.dump, {});
  const auto merged = kb::MergeDumps({&sites[0], &sites[1], &sites[2]});

  text::Segmenter segmenter(&world.lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(world, merged, segmenter, {});
  std::vector<std::vector<std::string>> corpus_words;
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    corpus_words.push_back(std::move(words));
  }

  const eval::Oracle oracle = [&](const std::string& hypo,
                                  const std::string& hyper) {
    return master.gold.IsCorrect(hypo, hyper);
  };

  std::printf("%-22s %8s %8s %8s %10s\n", "input encyclopedia", "pages",
              "isA", "entities", "precision");
  for (size_t i = 0; i < sites.size(); ++i) {
    core::CnProbaseBuilder::Report report;
    const auto taxonomy = BuildFrom(sites[i], world, corpus_words, &report);
    const auto precision = eval::ExactPrecision(taxonomy, oracle);
    std::printf("site %zu alone           %8zu %8zu %8zu %9.1f%%\n", i + 1,
                sites[i].size(), taxonomy.num_edges(), taxonomy.NumEntities(),
                100.0 * precision.precision());
  }
  core::CnProbaseBuilder::Report report;
  const auto taxonomy = BuildFrom(merged, world, corpus_words, &report);
  const auto precision = eval::ExactPrecision(taxonomy, oracle);
  std::printf("merged (CN-DBpedia)    %8zu %8zu %8zu %9.1f%%\n", merged.size(),
              taxonomy.num_edges(), taxonomy.NumEntities(),
              100.0 * precision.precision());
  std::printf("\nthe union covers more entities at the same precision — the "
              "coverage argument\nfor building on a merged encyclopedia.\n");
  return 0;
}
