// Short-text conceptualization — the application the paper motivates
// (short-text classification, information extraction): detect taxonomy
// mentions in a sentence and lift them to concepts via getConcept, exactly
// what a text-understanding client does against the deployed APIs.
//
//   ./conceptualization [num_entities]
#include <cstdio>
#include <cstdlib>

#include "core/builder.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/qa_gen.h"
#include "synth/world.h"
#include "taxonomy/api_service.h"
#include "text/trie_matcher.h"
#include "text/segmenter.h"

int main(int argc, char** argv) {
  using namespace cnpb;
  const size_t num_entities = argc > 1 ? std::atol(argv[1]) : 4000;

  synth::WorldModel::Config wc;
  wc.num_entities = num_entities;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto output = synth::EncyclopediaGenerator::Generate(world, {});
  text::Segmenter segmenter(&world.lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, {});
  std::vector<std::vector<std::string>> corpus_words;
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    corpus_words.push_back(std::move(words));
  }

  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 2;
  config.neural.max_train_samples = 1000;
  for (const char* word : synth::ThematicWords()) {
    config.verification.syntax.thematic_lexicon.emplace_back(word);
  }
  core::CnProbaseBuilder::Report report;
  const auto taxonomy = core::CnProbaseBuilder::Build(
      output.dump, world.lexicon(), corpus_words, config, &report);
  taxonomy::ApiService api(&taxonomy);
  core::CnProbaseBuilder::RegisterMentions(output.dump, taxonomy, &api);

  // Mention detector over the taxonomy's surface forms.
  text::TrieMatcher matcher;
  for (const auto& page : output.dump.pages()) {
    if (taxonomy.Find(page.name) != taxonomy::kInvalidNode) {
      matcher.Add(page.mention, 1);
    }
  }

  // Conceptualize a batch of questions.
  synth::QaGenerator::Config qc;
  qc.num_questions = 200;
  const auto questions = synth::QaGenerator::Generate(world, qc);
  int shown = 0;
  for (const auto& question : questions) {
    const auto matches = matcher.FindAll(question.text);
    if (matches.empty()) continue;
    std::printf("text:      %s\n", question.text.c_str());
    for (const auto& match : matches) {
      const std::string mention(match.text);
      const auto entities = api.Men2Ent(mention);
      if (entities.empty()) continue;
      std::printf("  mention \"%s\"", mention.c_str());
      if (entities.size() > 1) {
        std::printf(" (ambiguous: %zu readings, top by popularity)",
                    entities.size());
      }
      std::printf("\n");
      const auto concepts = api.GetConcept(taxonomy.Name(entities[0]));
      std::printf("    -> %s isA { ", taxonomy.Name(entities[0]).c_str());
      for (const auto& concept_name : concepts) {
        std::printf("%s ", concept_name.c_str());
      }
      std::printf("}\n");
    }
    std::printf("\n");
    if (++shown >= 8) break;
  }
  std::printf("API usage so far: men2ent=%llu getConcept=%llu getEntity=%llu\n",
              (unsigned long long)api.usage().men2ent_calls,
              (unsigned long long)api.usage().get_concept_calls,
              (unsigned long long)api.usage().get_entity_calls);
  return 0;
}
