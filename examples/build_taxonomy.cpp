// Full pipeline walkthrough (the paper's Figure 2 dataflow): generation from
// four sources, candidate merging, three-strategy verification, and
// persistence of the result. Prints per-stage statistics and evaluates the
// final taxonomy against the generator's ground truth.
//
//   ./build_taxonomy [num_entities] [output_dir]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/builder.h"
#include "eval/precision.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "taxonomy/serialize.h"
#include "taxonomy/stats.h"
#include "text/segmenter.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace cnpb;
  const size_t num_entities = argc > 1 ? std::atol(argv[1]) : 8000;
  const std::string out_dir = argc > 2 ? argv[2] : "/tmp";

  util::WallTimer total;
  std::printf("== input: Chinese encyclopedia (synthetic, %zu entities) ==\n",
              num_entities);
  synth::WorldModel::Config wc;
  wc.num_entities = num_entities;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto output = synth::EncyclopediaGenerator::Generate(world, {});
  const kb::DumpStats stats = output.dump.Stats();
  std::printf("  pages %zu | abstracts %zu | SPO triples %zu | tags %zu | "
              "brackets %zu\n\n",
              stats.num_pages, stats.num_abstracts, stats.num_triples,
              stats.num_tags, stats.num_brackets);

  text::Segmenter segmenter(&world.lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, {});
  std::vector<std::vector<std::string>> corpus_words;
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    corpus_words.push_back(std::move(words));
  }
  std::printf("== text corpus: %zu sentences, %zu tokens ==\n\n",
              corpus.sentences.size(), corpus.NumTokens());

  core::CnProbaseBuilder::Config config;
  for (const char* word : synth::ThematicWords()) {
    config.verification.syntax.thematic_lexicon.emplace_back(word);
  }
  config.neural.epochs = 2;
  config.neural.max_train_samples = 2000;
  core::CnProbaseBuilder::Report report;
  const auto candidates = core::CnProbaseBuilder::BuildCandidates(
      output.dump, world.lexicon(), corpus_words, config, &report);

  std::printf("== generation module (%.1fs) ==\n", report.seconds_generation);
  std::printf("  separation algorithm (bracket): %zu candidates\n",
              report.bracket_candidates);
  std::printf("  neural generation (abstract):   %zu candidates "
              "(%zu training samples)\n",
              report.abstract_candidates, report.neural_stats.num_samples);
  std::printf("  predicate discovery (infobox):  %zu candidates "
              "(%zu predicates selected of %zu discovered)\n",
              report.infobox_candidates, report.discovery.selected.size(),
              report.discovery.candidates.size());
  std::printf("  direct extraction (tag):        %zu candidates\n",
              report.tag_candidates);
  std::printf("  merged:                         %zu candidate isA\n\n",
              report.merged_candidates);

  std::printf("== verification module (%.1fs) ==\n",
              report.seconds_verification);
  std::printf("  syntax rules:          -%zu\n",
              report.verification.rejected_syntax);
  std::printf("  named-entity filter:   -%zu\n",
              report.verification.rejected_ner);
  std::printf("  incompatible concepts: -%zu\n",
              report.verification.rejected_incompatible);
  std::printf("  verified:              %zu isA\n\n",
              report.verification.output);

  const auto taxonomy = core::CnProbaseBuilder::Materialise(candidates);
  const eval::Oracle oracle = [&](const std::string& hypo,
                                  const std::string& hyper) {
    return output.gold.IsCorrect(hypo, hyper);
  };
  const auto precision = eval::SampledPrecision(taxonomy, oracle, 2000);
  std::printf("== taxonomy ==\n");
  std::printf("  %zu entities, %zu concepts, %zu entity-concept + %zu "
              "subconcept-concept relations\n",
              taxonomy.NumEntities(), taxonomy.NumConcepts(),
              taxonomy.NumEntityConceptEdges(), taxonomy.NumSubconceptEdges());
  std::printf("  precision (2000-sample protocol): %.1f%%\n",
              100.0 * precision.precision());
  std::printf("  acyclic: %s\n", taxonomy.IsAcyclic() ? "yes" : "no");
  std::printf("\n== structure ==\n%s",
              taxonomy::FormatStats(taxonomy::ComputeStats(taxonomy)).c_str());

  const std::string taxonomy_path = out_dir + "/cnprobase_taxonomy.tsv";
  const std::string dump_path = out_dir + "/cnprobase_dump.tsv";
  CNPB_CHECK_OK(taxonomy::SaveTaxonomy(taxonomy, taxonomy_path));
  CNPB_CHECK_OK(output.dump.Save(dump_path));
  std::printf("  saved taxonomy -> %s\n  saved dump     -> %s\n",
              taxonomy_path.c_str(), dump_path.c_str());
  std::printf("\ntotal %.1fs\n", total.ElapsedSeconds());
  return 0;
}
