# Drives the CLI through generate -> build -> stats -> query.
file(MAKE_DIRECTORY ${DIR})
foreach(args "generate;${DIR};800" "build;${DIR}" "stats;${DIR}" "query;${DIR};歌手")
  execute_process(COMMAND ${CLI} ${args} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "cnprobase_cli ${args} failed with ${rc}")
  endif()
endforeach()
