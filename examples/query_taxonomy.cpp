// Loads a taxonomy saved by build_taxonomy and serves ad-hoc queries —
// demonstrates the persistence layer and offline reuse of a built taxonomy.
//
//   ./query_taxonomy <taxonomy.tsv> [term ...]
// With no terms, prints summary statistics and a few sample concepts.
#include <cstdio>

#include "taxonomy/serialize.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace cnpb;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <taxonomy.tsv> [term ...]\n"
                 "hint: run build_taxonomy first; it writes "
                 "/tmp/cnprobase_taxonomy.tsv\n",
                 argv[0]);
    return 2;
  }
  auto loaded = taxonomy::LoadTaxonomy(argv[1]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                 loaded.status().ToString().c_str());
    return 1;
  }
  const taxonomy::Taxonomy& taxonomy = *loaded;
  std::printf("loaded %s entities, %s concepts, %s isA relations\n",
              util::CommaSeparated(taxonomy.NumEntities()).c_str(),
              util::CommaSeparated(taxonomy.NumConcepts()).c_str(),
              util::CommaSeparated(taxonomy.num_edges()).c_str());

  if (argc == 2) {
    // No query terms: show the largest concepts.
    std::printf("\nlargest concepts by hyponym count:\n");
    std::vector<std::pair<size_t, taxonomy::NodeId>> sized;
    for (taxonomy::NodeId id = 0; id < taxonomy.num_nodes(); ++id) {
      if (taxonomy.Kind(id) == taxonomy::NodeKind::kConcept) {
        sized.emplace_back(taxonomy.Hyponyms(id).size(), id);
      }
    }
    std::sort(sized.rbegin(), sized.rend());
    for (size_t i = 0; i < std::min<size_t>(10, sized.size()); ++i) {
      std::printf("  %-12s %zu hyponyms\n",
                  taxonomy.Name(sized[i].second).c_str(), sized[i].first);
    }
    return 0;
  }

  for (int i = 2; i < argc; ++i) {
    const taxonomy::NodeId id = taxonomy.Find(argv[i]);
    std::printf("\n\"%s\": ", argv[i]);
    if (id == taxonomy::kInvalidNode) {
      std::printf("not in taxonomy\n");
      continue;
    }
    std::printf("%s\n",
                taxonomy.Kind(id) == taxonomy::NodeKind::kConcept ? "concept"
                                                                  : "entity");
    std::printf("  hypernyms: ");
    for (const auto& edge : taxonomy.Hypernyms(id)) {
      std::printf("%s(%s) ", taxonomy.Name(edge.hyper).c_str(),
                  taxonomy::SourceName(edge.source));
    }
    std::printf("\n  transitive hypernyms: ");
    for (taxonomy::NodeId up : taxonomy.TransitiveHypernyms(id)) {
      std::printf("%s ", taxonomy.Name(up).c_str());
    }
    const auto& hyponyms = taxonomy.Hyponyms(id);
    std::printf("\n  hyponyms (%zu): ", hyponyms.size());
    for (size_t k = 0; k < std::min<size_t>(8, hyponyms.size()); ++k) {
      std::printf("%s ", taxonomy.Name(hyponyms[k].hypo).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
