#include <gtest/gtest.h>

#include "generation/candidate.h"
#include "generation/direct_extraction.h"
#include "generation/neural_generation.h"
#include "generation/predicate_discovery.h"
#include "generation/separation.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "text/ngram.h"
#include "text/segmenter.h"

namespace cnpb::generation {
namespace {

// ---- separation algorithm ----------------------------------------------------

// Replays Figure 3: 蚂蚁金服首席战略官 with 蚂蚁/金服 split in the lexicon.
class SeparationFig3Test : public ::testing::Test {
 protected:
  SeparationFig3Test() {
    lex_.Add("蚂蚁", 40);
    lex_.Add("金服", 40);
    lex_.Add("首席", 100);
    lex_.Add("战略官", 80);
    lex_.Add("担任", 60);
    lex_.Add("他", 100);
    for (int i = 0; i < 40; ++i) ngrams_.AddSentence({"蚂蚁", "金服"});
    for (int i = 0; i < 40; ++i) {
      ngrams_.AddSentence({"他", "担任", "首席", "战略官"});
    }
  }
  text::Lexicon lex_;
  text::NgramCounter ngrams_;
};

TEST_F(SeparationFig3Test, ReproducesPaperExample) {
  SeparationAlgorithm separation(&ngrams_);
  const auto parse =
      separation.ParseWords({"蚂蚁", "金服", "首席", "战略官"});
  ASSERT_NE(parse.root, nullptr);
  EXPECT_EQ(parse.root->text, "蚂蚁金服首席战略官");
  // Left subtree is the modifier 蚂蚁金服, right subtree the head compound.
  ASSERT_NE(parse.root->left, nullptr);
  EXPECT_EQ(parse.root->left->text, "蚂蚁金服");
  ASSERT_NE(parse.root->right, nullptr);
  EXPECT_EQ(parse.root->right->text, "首席战略官");
  // Hypernyms are read off the rightmost path (Fig. 3's blue phrases).
  EXPECT_EQ(parse.hypernyms,
            (std::vector<std::string>{"首席战略官", "战略官"}));
}

TEST_F(SeparationFig3Test, SegmentsThenParses) {
  text::Segmenter segmenter(&lex_);
  SeparationAlgorithm separation(&ngrams_);
  const auto parse =
      separation.ParseCompound("蚂蚁金服首席战略官", segmenter);
  EXPECT_EQ(parse.hypernyms,
            (std::vector<std::string>{"首席战略官", "战略官"}));
}

TEST_F(SeparationFig3Test, TwoWordCompound) {
  SeparationAlgorithm separation(&ngrams_);
  const auto parse = separation.ParseWords({"蚂蚁", "金服"});
  EXPECT_EQ(parse.hypernyms, (std::vector<std::string>{"金服"}));
}

TEST_F(SeparationFig3Test, SingleWordIsItsOwnHypernym) {
  SeparationAlgorithm separation(&ngrams_);
  const auto parse = separation.ParseWords({"战略官"});
  EXPECT_EQ(parse.hypernyms, (std::vector<std::string>{"战略官"}));
}

TEST_F(SeparationFig3Test, EmptyInputGivesNullRoot) {
  SeparationAlgorithm separation(&ngrams_);
  const auto parse = separation.ParseWords({});
  EXPECT_EQ(parse.root, nullptr);
  EXPECT_TRUE(parse.hypernyms.empty());
}

TEST_F(SeparationFig3Test, LongCompoundTerminates) {
  SeparationAlgorithm separation(&ngrams_);
  // Ten arbitrary words: no PMI signal, must still terminate with a tree
  // covering the whole string.
  std::vector<std::string> words;
  for (int i = 0; i < 10; ++i) words.push_back("w" + std::to_string(i));
  const auto parse = separation.ParseWords(words);
  ASSERT_NE(parse.root, nullptr);
  std::string all;
  for (const auto& w : words) all += w;
  EXPECT_EQ(parse.root->text, all);
  EXPECT_FALSE(parse.hypernyms.empty());
}

TEST_F(SeparationFig3Test, BracketExtractorSplitsEnumeration) {
  text::Segmenter segmenter(&lex_);
  BracketExtractor extractor(&segmenter, &ngrams_);
  const auto hypernyms = extractor.HypernymsOf("首席战略官、金服");
  // First part yields 首席战略官 (+ 战略官 via rightmost path), second 金服.
  EXPECT_NE(std::find(hypernyms.begin(), hypernyms.end(), "战略官"),
            hypernyms.end());
  EXPECT_NE(std::find(hypernyms.begin(), hypernyms.end(), "金服"),
            hypernyms.end());
}

TEST_F(SeparationFig3Test, NumericDebrisDropped) {
  text::Segmenter segmenter(&lex_);
  BracketExtractor extractor(&segmenter, &ngrams_);
  for (const std::string& hyper : extractor.HypernymsOf("1994战略官")) {
    EXPECT_NE(hyper, "1994");
  }
}

// ---- candidate merging --------------------------------------------------------

TEST(MergeCandidatesTest, FirstSourceWinsAndDeduplicates) {
  CandidateList a = {{"e1", "c1", taxonomy::Source::kBracket, 1.0f}};
  CandidateList b = {{"e1", "c1", taxonomy::Source::kTag, 1.0f},
                     {"e1", "c2", taxonomy::Source::kTag, 1.0f}};
  const CandidateList merged = MergeCandidates({&a, &b});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].source, taxonomy::Source::kBracket);
  EXPECT_EQ(merged[1].hyper, "c2");
}

TEST(MergeCandidatesTest, EmptyListsAreFine) {
  CandidateList empty;
  EXPECT_TRUE(MergeCandidates({&empty, &empty}).empty());
}

// ---- direct extraction ----------------------------------------------------------

TEST(DirectExtractionTest, TagsBecomeCandidates) {
  kb::EncyclopediaDump dump;
  kb::EncyclopediaPage page;
  page.name = "刘德华（演员）";
  page.mention = "刘德华";
  page.tags = {"演员", "刘德华", ""};  // self-tag and empty tag dropped
  dump.AddPage(page);
  const CandidateList candidates = ExtractFromTags(dump);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].hypo, "刘德华（演员）");
  EXPECT_EQ(candidates[0].hyper, "演员");
  EXPECT_EQ(candidates[0].source, taxonomy::Source::kTag);
}

// ---- predicate discovery ---------------------------------------------------------

class PredicateDiscoveryTest : public ::testing::Test {
 protected:
  PredicateDiscoveryTest() {
    for (int i = 0; i < 50; ++i) {
      kb::EncyclopediaPage page;
      page.name = "person" + std::to_string(i);
      page.mention = page.name;
      page.infobox.push_back({page.name, "职业", "演员"});
      page.infobox.push_back({page.name, "出生地", "北京"});
      page.infobox.push_back({page.name, "身高", "180"});
      dump_.AddPage(page);
      // Bracket prior confirms 职业 objects as hypernyms.
      prior_.push_back(
          {page.name, "演员", taxonomy::Source::kBracket, 1.0f});
    }
  }
  kb::EncyclopediaDump dump_;
  CandidateList prior_;
};

TEST_F(PredicateDiscoveryTest, SelectsAlignedPredicateOnly) {
  PredicateDiscovery::Config config;
  config.min_support = 10;
  PredicateDiscovery discovery(config);
  const auto result = discovery.Discover(dump_, prior_);
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(result.selected[0], "职业");
  // 出生地 never aligns, so it is not even a candidate.
  for (const auto& stats : result.candidates) {
    EXPECT_NE(stats.predicate, "出生地");
  }
}

TEST_F(PredicateDiscoveryTest, MinSupportGate) {
  PredicateDiscovery::Config config;
  config.min_support = 100;  // more than the 50 triples available
  PredicateDiscovery discovery(config);
  EXPECT_TRUE(discovery.Discover(dump_, prior_).selected.empty());
}

TEST_F(PredicateDiscoveryTest, ExtractUsesSelectedPredicates) {
  const CandidateList candidates =
      PredicateDiscovery::Extract(dump_, {"职业"});
  EXPECT_EQ(candidates.size(), 50u);
  for (const Candidate& candidate : candidates) {
    EXPECT_EQ(candidate.hyper, "演员");
    EXPECT_EQ(candidate.source, taxonomy::Source::kInfobox);
  }
  EXPECT_TRUE(PredicateDiscovery::Extract(dump_, {}).empty());
}

TEST_F(PredicateDiscoveryTest, PrecisionMath) {
  PredicateDiscovery::PredicateStats stats;
  stats.total = 40;
  stats.aligned = 30;
  EXPECT_DOUBLE_EQ(stats.precision(), 0.75);
  stats.total = 0;
  EXPECT_DOUBLE_EQ(stats.precision(), 0.0);
}

// ---- neural generation (distant supervision, end to end but small) ------------------

TEST(NeuralGenerationTest, TrainsAndExtractsOnSyntheticWorld) {
  synth::WorldModel::Config wc;
  wc.num_entities = 1200;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  synth::EncyclopediaGenerator::Config gc;
  const auto output = synth::EncyclopediaGenerator::Generate(world, gc);
  text::Segmenter segmenter(&world.lexicon());
  synth::CorpusGenerator::Config cc;
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, cc);
  text::NgramCounter ngrams;
  corpus.FillNgrams(&ngrams);
  BracketExtractor extractor(&segmenter, &ngrams);
  const CandidateList prior = extractor.Extract(output.dump);
  ASSERT_GT(prior.size(), 100u);

  NeuralGeneration::Config config;
  config.epochs = 2;
  config.max_train_samples = 400;
  NeuralGeneration neural(config);
  const size_t n = neural.BuildDataset(output.dump, prior, segmenter);
  ASSERT_GT(n, 100u);
  const auto stats = neural.Train();
  ASSERT_EQ(stats.epoch_loss.size(), 2u);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());

  const CandidateList candidates = neural.ExtractAll(output.dump, segmenter);
  EXPECT_GT(candidates.size(), 500u);
  size_t correct = 0;
  for (const Candidate& candidate : candidates) {
    EXPECT_EQ(candidate.source, taxonomy::Source::kAbstract);
    if (output.gold.IsCorrect(candidate.hypo, candidate.hyper)) ++correct;
  }
  // The abstracts embed the concept; even a briefly trained model should
  // beat a coin flip comfortably.
  EXPECT_GT(static_cast<double>(correct) / candidates.size(), 0.6);
}

}  // namespace
}  // namespace cnpb::generation
