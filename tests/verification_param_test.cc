// Parameterized threshold sweeps over the verification strategies:
// monotonicity properties that must hold for any calibration.
#include <gtest/gtest.h>

#include <memory>

#include "core/builder.h"
#include "eval/precision.h"
#include "kb/merge.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/site_split.h"
#include "synth/world.h"
#include "text/segmenter.h"
#include "verification/pipeline.h"

namespace cnpb {
namespace {

// Shared candidate pool (generation once, verification under many configs).
class VerificationSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::WorldModel::Config wc;
    wc.num_entities = 2500;
    world_ = new synth::WorldModel(synth::WorldModel::Generate(wc));
    output_ = new synth::EncyclopediaGenerator::Output(
        synth::EncyclopediaGenerator::Generate(*world_, {}));
    segmenter_ = new text::Segmenter(&world_->lexicon());
    const auto corpus = synth::CorpusGenerator::Generate(
        *world_, output_->dump, *segmenter_, {});
    corpus_words_ = new std::vector<std::vector<std::string>>();
    for (const auto& sentence : corpus.sentences) {
      std::vector<std::string> words;
      for (const auto& token : sentence) words.push_back(token.word);
      corpus_words_->push_back(std::move(words));
    }
    core::CnProbaseBuilder::Config config;
    config.enable_verification = false;
    config.enable_abstract = false;  // keep the sweep fast
    core::CnProbaseBuilder::Report report;
    raw_ = new generation::CandidateList(core::CnProbaseBuilder::BuildCandidates(
        output_->dump, world_->lexicon(), *corpus_words_, config, &report));
  }
  static void TearDownTestSuite() {
    delete raw_;
    delete corpus_words_;
    delete segmenter_;
    delete output_;
    delete world_;
  }

  static verification::VerificationPipeline::Report VerifyWith(
      const verification::VerificationPipeline::Config& config) {
    verification::VerificationPipeline pipeline(&output_->dump,
                                                &world_->lexicon(), config);
    for (const auto& sentence : *corpus_words_) {
      pipeline.AddCorpusSentence(sentence);
    }
    verification::VerificationPipeline::Report report;
    pipeline.Verify(*raw_, &report);
    return report;
  }

  static verification::VerificationPipeline::Config BaseConfig() {
    verification::VerificationPipeline::Config config;
    for (const char* word : synth::ThematicWords()) {
      config.syntax.thematic_lexicon.emplace_back(word);
    }
    return config;
  }

  static synth::WorldModel* world_;
  static synth::EncyclopediaGenerator::Output* output_;
  static text::Segmenter* segmenter_;
  static std::vector<std::vector<std::string>>* corpus_words_;
  static generation::CandidateList* raw_;
};

synth::WorldModel* VerificationSweepTest::world_ = nullptr;
synth::EncyclopediaGenerator::Output* VerificationSweepTest::output_ = nullptr;
text::Segmenter* VerificationSweepTest::segmenter_ = nullptr;
std::vector<std::vector<std::string>>* VerificationSweepTest::corpus_words_ =
    nullptr;
generation::CandidateList* VerificationSweepTest::raw_ = nullptr;

TEST_F(VerificationSweepTest, NerThresholdIsMonotone) {
  size_t previous_rejections = SIZE_MAX;
  for (const double threshold : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto config = BaseConfig();
    config.use_syntax = false;
    config.use_incompatible = false;
    config.ner.threshold = threshold;
    const auto report = VerifyWith(config);
    EXPECT_LE(report.rejected_ner, previous_rejections)
        << "threshold " << threshold;
    previous_rejections = report.rejected_ner;
  }
}

TEST_F(VerificationSweepTest, JaccardThresholdIsMonotone) {
  size_t previous_rejections = 0;
  for (const double threshold : {0.0, 0.02, 0.05, 0.15, 0.5}) {
    auto config = BaseConfig();
    config.use_syntax = false;
    config.use_ner = false;
    config.incompatible.jaccard_threshold = threshold;
    const auto report = VerifyWith(config);
    EXPECT_GE(report.rejected_incompatible, previous_rejections)
        << "threshold " << threshold;
    previous_rejections = report.rejected_incompatible;
  }
  // Jaccard 0 means nothing is incompatible at all.
  auto config = BaseConfig();
  config.use_syntax = false;
  config.use_ner = false;
  config.incompatible.jaccard_threshold = 0.0;
  EXPECT_EQ(VerifyWith(config).rejected_incompatible, 0u);
}

TEST_F(VerificationSweepTest, EachStrategyOnlyImprovesPrecision) {
  const eval::Oracle oracle = [&](const std::string& hypo,
                                  const std::string& hyper) {
    return output_->gold.IsCorrect(hypo, hyper);
  };
  const double raw_precision =
      eval::CandidatePrecision(*raw_, oracle).precision();
  for (int mask = 1; mask < 8; ++mask) {
    auto config = BaseConfig();
    config.use_syntax = (mask & 1) != 0;
    config.use_ner = (mask & 2) != 0;
    config.use_incompatible = (mask & 4) != 0;
    verification::VerificationPipeline pipeline(&output_->dump,
                                                &world_->lexicon(), config);
    for (const auto& sentence : *corpus_words_) {
      pipeline.AddCorpusSentence(sentence);
    }
    verification::VerificationPipeline::Report report;
    const auto verified = pipeline.Verify(*raw_, &report);
    const double precision =
        eval::CandidatePrecision(verified, oracle).precision();
    EXPECT_GE(precision + 1e-9, raw_precision) << "mask " << mask;
  }
}

// Full pipeline over a merged multi-site dump keeps the precision band.
TEST(MultiSitePipelineTest, MergedSitesReachPrecisionBand) {
  synth::WorldModel::Config wc;
  wc.num_entities = 2500;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto master = synth::EncyclopediaGenerator::Generate(world, {});
  const auto sites = synth::SplitIntoSites(master.dump, {});
  const auto merged = kb::MergeDumps({&sites[0], &sites[1], &sites[2]});

  text::Segmenter segmenter(&world.lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(world, merged, segmenter, {});
  std::vector<std::vector<std::string>> corpus_words;
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    corpus_words.push_back(std::move(words));
  }
  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 1;
  config.neural.max_train_samples = 500;
  for (const char* word : synth::ThematicWords()) {
    config.verification.syntax.thematic_lexicon.emplace_back(word);
  }
  core::CnProbaseBuilder::Report report;
  const auto taxonomy = core::CnProbaseBuilder::Build(
      merged, world.lexicon(), corpus_words, config, &report);
  const eval::Oracle oracle = [&](const std::string& hypo,
                                  const std::string& hyper) {
    return master.gold.IsCorrect(hypo, hyper);
  };
  EXPECT_GT(taxonomy.num_edges(), 2000u);
  EXPECT_GT(eval::ExactPrecision(taxonomy, oracle).precision(), 0.9);
}

}  // namespace
}  // namespace cnpb
