#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/parallel.h"
#include "util/thread_pool.h"

namespace cnpb::util {
namespace {

// Thread counts are varied through the override hook, never setenv:
// CNPB_THREADS is resolved once and cached, and setenv is not thread-safe
// against a pool that may read the environment concurrently.
class ParallelTest : public ::testing::Test {
 protected:
  void SetThreads(int n) { SetThreadsOverride(n); }
  void TearDown() override { SetThreadsOverride(0); }
};

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  SetThreads(4);
  for (const size_t n : {0ul, 1ul, 63ul, 64ul, 100ul, 1000ul}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    ParallelFor(n, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(ParallelTest, SlotWritesAreDeterministic) {
  SetThreads(8);
  std::vector<size_t> out_parallel(5000);
  ParallelFor(out_parallel.size(),
              [&](size_t i) { out_parallel[i] = i * i % 97; });
  SetThreads(1);
  std::vector<size_t> out_serial(5000);
  ParallelFor(out_serial.size(),
              [&](size_t i) { out_serial[i] = i * i % 97; });
  EXPECT_EQ(out_parallel, out_serial);
}

TEST_F(ParallelTest, MoreThreadsThanWork) {
  SetThreads(16);
  std::atomic<size_t> total{0};
  ParallelFor(70, [&](size_t i) { total += i; });
  EXPECT_EQ(total.load(), 70u * 69u / 2);
}

TEST_F(ParallelTest, DefaultThreadsPositiveAndOverridable) {
  EXPECT_GE(DefaultThreads(), 1);
  SetThreads(3);
  EXPECT_EQ(DefaultThreads(), 3);
  SetThreads(0);
  EXPECT_GE(DefaultThreads(), 1);
}

TEST_F(ParallelTest, ScopedOverrideRestoresPrevious) {
  SetThreads(2);
  {
    ScopedThreadsOverride inner(5);
    EXPECT_EQ(DefaultThreads(), 5);
  }
  EXPECT_EQ(DefaultThreads(), 2);
}

TEST_F(ParallelTest, ParallelMapPreservesIndexOrder) {
  SetThreads(8);
  const std::vector<size_t> out =
      ParallelMap(257, [](size_t i) { return i * 3; });
  ASSERT_EQ(out.size(), 257u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 3);
}

TEST_F(ParallelTest, MakeShardsCoversRangeExactly) {
  for (const size_t n : {0ul, 1ul, 5ul, 127ul, 128ul, 129ul, 100000ul}) {
    const auto shards = MakeShards(n);
    size_t covered = 0;
    size_t expected_begin = 0;
    for (const auto& [begin, end] : shards) {
      EXPECT_EQ(begin, expected_begin);
      EXPECT_LT(begin, end);
      covered += end - begin;
      expected_begin = end;
    }
    EXPECT_EQ(covered, n) << "n=" << n;
    if (n > 0) EXPECT_EQ(shards.back().second, n);
    // Pure function of n: thread overrides must not change the plan.
    SetThreads(7);
    EXPECT_EQ(MakeShards(n), shards);
    SetThreads(0);
  }
}

TEST_F(ParallelTest, ShardedConcatEqualsSerialConcat) {
  SetThreads(8);
  // Each shard contributes a variable-length list; concatenation must be in
  // index order regardless of scheduling.
  const auto out = ShardedConcat(1000, [](size_t begin, size_t end) {
    std::vector<size_t> part;
    for (size_t i = begin; i < end; ++i) {
      for (size_t k = 0; k <= i % 3; ++k) part.push_back(i);
    }
    return part;
  });
  std::vector<size_t> expected;
  for (size_t i = 0; i < 1000; ++i) {
    for (size_t k = 0; k <= i % 3; ++k) expected.push_back(i);
  }
  EXPECT_EQ(out, expected);
}

// --- ThreadPool itself ----------------------------------------------------

TEST(ThreadPoolTest, RunsNothingForEmptyRange) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, FewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(3, 8, [&](size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ManyMoreItemsThanWorkers) {
  ThreadPool pool(4);
  constexpr size_t kN = 100000;
  std::vector<std::atomic<uint8_t>> hits(kN);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(kN, 4, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ReentrantCallRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 50;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(kOuter, 4, [&](size_t outer) {
    // This nested call happens on a pool worker (or the caller); it must
    // complete inline rather than waiting on the already-busy queue.
    pool.ParallelFor(kInner, 4, [&](size_t inner) {
      ++hits[outer * kInner + inner];
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, NestedGlobalParallelForCompletes) {
  ScopedThreadsOverride threads(4);
  std::vector<std::atomic<int>> hits(64 * 16);
  for (auto& h : hits) h = 0;
  ParallelFor(64, [&](size_t outer) {
    ParallelFor(16, [&](size_t inner) { ++hits[outer * 16 + inner]; });
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_workers(), 2);
  pool.EnsureWorkers(5);
  EXPECT_EQ(pool.num_workers(), 5);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.num_workers(), 5);
  // The grown pool still covers every index exactly once.
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(1000, 5, [&](size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentSubmittersShareThePool) {
  ThreadPool pool(4);
  constexpr size_t kN = 5000;
  std::vector<std::atomic<int>> hits_a(kN), hits_b(kN);
  for (auto& h : hits_a) h = 0;
  for (auto& h : hits_b) h = 0;
  std::thread submitter(
      [&]() { pool.ParallelFor(kN, 4, [&](size_t i) { ++hits_a[i]; }); });
  pool.ParallelFor(kN, 4, [&](size_t i) { ++hits_b[i]; });
  submitter.join();
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits_a[i].load(), 1) << i;
    ASSERT_EQ(hits_b[i].load(), 1) << i;
  }
}

}  // namespace
}  // namespace cnpb::util
