#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>

#include "util/parallel.h"

namespace cnpb::util {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  void SetThreads(const char* n) { setenv("CNPB_THREADS", n, 1); }
  void TearDown() override { unsetenv("CNPB_THREADS"); }
};

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  SetThreads("4");
  for (const size_t n : {0ul, 1ul, 63ul, 64ul, 100ul, 1000ul}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    ParallelFor(n, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(ParallelTest, SlotWritesAreDeterministic) {
  SetThreads("8");
  std::vector<size_t> out_parallel(5000);
  ParallelFor(out_parallel.size(),
              [&](size_t i) { out_parallel[i] = i * i % 97; });
  SetThreads("1");
  std::vector<size_t> out_serial(5000);
  ParallelFor(out_serial.size(),
              [&](size_t i) { out_serial[i] = i * i % 97; });
  EXPECT_EQ(out_parallel, out_serial);
}

TEST_F(ParallelTest, MoreThreadsThanWork) {
  SetThreads("16");
  std::atomic<size_t> total{0};
  ParallelFor(70, [&](size_t i) { total += i; });
  EXPECT_EQ(total.load(), 70u * 69u / 2);
}

TEST_F(ParallelTest, DefaultThreadsPositive) {
  unsetenv("CNPB_THREADS");
  EXPECT_GE(DefaultThreads(), 1);
  SetThreads("3");
  EXPECT_EQ(DefaultThreads(), 3);
}

}  // namespace
}  // namespace cnpb::util
