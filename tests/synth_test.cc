#include <gtest/gtest.h>

#include <unordered_set>

#include "synth/bilingual.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/ontology.h"
#include "synth/qa_gen.h"
#include "synth/world.h"
#include "text/segmenter.h"
#include "text/utf8.h"

namespace cnpb::synth {
namespace {

TEST(OntologyTest, BuildsWithoutDanglingParents) {
  const Ontology onto = Ontology::Build();
  EXPECT_GT(onto.size(), 120u);
  const int actor = onto.Find("男演员");
  ASSERT_GE(actor, 0);
  const int person = onto.Find("人物");
  ASSERT_GE(person, 0);
  EXPECT_TRUE(onto.IsAncestor(person, actor));
  EXPECT_FALSE(onto.IsAncestor(actor, person));
}

TEST(OntologyTest, AncestorsAreTransitive) {
  const Ontology onto = Ontology::Build();
  const int cso = onto.Find("首席战略官");
  ASSERT_GE(cso, 0);
  std::unordered_set<int> ancestors;
  for (int a : onto.Ancestors(cso)) ancestors.insert(a);
  EXPECT_TRUE(ancestors.count(onto.Find("战略官")) > 0);
  EXPECT_TRUE(ancestors.count(onto.Find("经理人")) > 0);
  EXPECT_TRUE(ancestors.count(onto.Find("人物")) > 0);
}

TEST(OntologyTest, ThematicWordsAreNotConcepts) {
  const Ontology onto = Ontology::Build();
  for (const char* word : ThematicWords()) {
    EXPECT_LT(onto.Find(word), 0) << word << " is both thematic and concept";
    EXPECT_TRUE(onto.IsThematic(word));
  }
  EXPECT_FALSE(onto.IsThematic("演员"));
}

TEST(OntologyTest, ConfusionWordsAreNotConcepts) {
  const Ontology onto = Ontology::Build();
  for (const char* word : ConfusionWords()) {
    EXPECT_LT(onto.Find(word), 0) << word;
  }
}

TEST(OntologyTest, EntityBearingConceptsHaveStyles) {
  const Ontology onto = Ontology::Build();
  for (int c : onto.EntityBearingConcepts()) {
    EXPECT_NE(onto.ConceptAt(c).style, NameStyle::kNone)
        << onto.ConceptAt(c).name;
  }
}

TEST(OntologyTest, SchemasHaveIsaBearingPredicate) {
  for (Domain domain :
       {Domain::kPerson, Domain::kPlace, Domain::kWork, Domain::kOrg,
        Domain::kBio, Domain::kFood, Domain::kProduct, Domain::kEvent}) {
    bool has_isa = false;
    for (const AttributeSpec& spec : SchemaFor(domain)) {
      if (spec.kind == ValueKind::kConceptIsa) has_isa = true;
    }
    EXPECT_TRUE(has_isa) << "domain " << static_cast<int>(domain);
  }
}

class WorldTest : public ::testing::Test {
 protected:
  static WorldModel MakeWorld(size_t n = 2000, uint64_t seed = 42) {
    WorldModel::Config config;
    config.num_entities = n;
    config.seed = seed;
    return WorldModel::Generate(config);
  }
};

TEST_F(WorldTest, GeneratesRequestedEntities) {
  const WorldModel world = MakeWorld();
  EXPECT_EQ(world.entities().size(), 2000u);
  // All domains populated at this size.
  EXPECT_FALSE(world.EntitiesOfDomain(Domain::kPerson).empty());
  EXPECT_FALSE(world.EntitiesOfDomain(Domain::kPlace).empty());
  EXPECT_FALSE(world.EntitiesOfDomain(Domain::kWork).empty());
  EXPECT_FALSE(world.EntitiesOfDomain(Domain::kOrg).empty());
  EXPECT_FALSE(world.Schools().empty());
  EXPECT_FALSE(world.Companies().empty());
}

TEST_F(WorldTest, DeterministicAcrossRuns) {
  const WorldModel a = MakeWorld(500, 7);
  const WorldModel b = MakeWorld(500, 7);
  ASSERT_EQ(a.entities().size(), b.entities().size());
  for (size_t i = 0; i < a.entities().size(); ++i) {
    EXPECT_EQ(a.entities()[i].mention, b.entities()[i].mention);
    EXPECT_EQ(a.entities()[i].concepts, b.entities()[i].concepts);
  }
}

TEST_F(WorldTest, EntitiesHaveValidConcepts) {
  const WorldModel world = MakeWorld(1000);
  for (const WorldEntity& entity : world.entities()) {
    ASSERT_FALSE(entity.concepts.empty());
    EXPECT_EQ(entity.concepts[0], entity.primary);
    for (int c : entity.concepts) {
      ASSERT_GE(c, 0);
      ASSERT_LT(static_cast<size_t>(c), world.ontology().size());
    }
    EXPECT_FALSE(entity.mention.empty());
  }
}

TEST_F(WorldTest, LexiconCoversConceptsAndMentions) {
  const WorldModel world = MakeWorld(500);
  const text::Lexicon& lex = world.lexicon();
  EXPECT_TRUE(lex.Contains("演员"));
  EXPECT_TRUE(lex.Contains("首席"));
  EXPECT_TRUE(lex.Contains("战略官"));
  EXPECT_FALSE(lex.Contains("首席战略官"));  // kept split for separation
  for (const WorldEntity& entity : world.entities()) {
    EXPECT_TRUE(lex.Contains(entity.mention)) << entity.mention;
  }
}

TEST_F(WorldTest, SecondConceptsAreCompatible) {
  const WorldModel world = MakeWorld(3000);
  size_t multi = 0;
  for (const WorldEntity& entity : world.entities()) {
    if (entity.concepts.size() < 2) continue;
    ++multi;
    const auto& onto = world.ontology();
    EXPECT_EQ(onto.ConceptAt(entity.concepts[0]).domain,
              onto.ConceptAt(entity.concepts[1]).domain);
  }
  EXPECT_GT(multi, 300u);  // second_concept_rate = 0.35 nominal
}

class EncyclopediaTest : public ::testing::Test {
 protected:
  EncyclopediaTest() {
    WorldModel::Config wc;
    wc.num_entities = 2000;
    world_ = std::make_unique<WorldModel>(WorldModel::Generate(wc));
    EncyclopediaGenerator::Config gc;
    output_ = std::make_unique<EncyclopediaGenerator::Output>(
        EncyclopediaGenerator::Generate(*world_, gc));
  }
  std::unique_ptr<WorldModel> world_;
  std::unique_ptr<EncyclopediaGenerator::Output> output_;
};

TEST_F(EncyclopediaTest, PageNamesAreUnique) {
  std::unordered_set<std::string> names;
  for (const auto& page : output_->dump.pages()) {
    EXPECT_TRUE(names.insert(page.name).second) << page.name;
  }
}

TEST_F(EncyclopediaTest, AmbiguousMentionsCarryBrackets) {
  std::unordered_map<std::string, int> mention_count;
  for (const auto& page : output_->dump.pages()) ++mention_count[page.mention];
  for (const auto& page : output_->dump.pages()) {
    if (mention_count[page.mention] > 1) {
      EXPECT_FALSE(page.bracket.empty()) << page.mention;
    }
  }
}

TEST_F(EncyclopediaTest, StatsInShape) {
  const kb::DumpStats stats = output_->dump.Stats();
  EXPECT_GT(stats.num_pages, 1500u);
  EXPECT_GT(stats.num_abstracts, stats.num_pages / 2);
  EXPECT_GT(stats.num_triples, stats.num_pages);  // several per page
  EXPECT_GT(stats.num_tags, stats.num_pages / 2);
  EXPECT_GT(stats.num_brackets, stats.num_pages / 3);
}

TEST_F(EncyclopediaTest, GoldAcceptsDirectConceptAndAncestors) {
  const auto& onto = world_->ontology();
  bool checked = false;
  for (size_t p = 0; p < output_->dump.size(); ++p) {
    const size_t entity_index = output_->page_entity[p];
    if (entity_index == SIZE_MAX) continue;
    const WorldEntity& entity = world_->entities()[entity_index];
    const auto& page = output_->dump.page(p);
    const std::string& direct = onto.ConceptAt(entity.primary).name;
    EXPECT_TRUE(output_->gold.IsCorrect(page.name, direct));
    for (int a : onto.Ancestors(entity.primary)) {
      EXPECT_TRUE(output_->gold.IsCorrect(page.name, onto.ConceptAt(a).name));
    }
    EXPECT_FALSE(output_->gold.IsCorrect(page.name, "随声附和者"));
    checked = true;
    if (p > 50) break;
  }
  EXPECT_TRUE(checked);
}

TEST_F(EncyclopediaTest, ConceptPagesPresent) {
  const auto* page = output_->dump.FindByName("男演员");
  ASSERT_NE(page, nullptr);
  EXPECT_FALSE(page->tags.empty());
  // Its tag should (almost surely) include the parent 演员.
  EXPECT_TRUE(output_->gold.IsCorrect("男演员", "演员"));
  EXPECT_FALSE(output_->gold.IsCorrect("演员", "男演员"));
}

TEST_F(EncyclopediaTest, DumpSaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dump_test.tsv";
  ASSERT_TRUE(output_->dump.Save(path).ok());
  auto loaded = kb::EncyclopediaDump::Load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), output_->dump.size());
  for (size_t i = 0; i < loaded->size(); i += 97) {
    EXPECT_EQ(loaded->page(i).name, output_->dump.page(i).name);
    EXPECT_EQ(loaded->page(i).infobox, output_->dump.page(i).infobox);
    EXPECT_EQ(loaded->page(i).tags, output_->dump.page(i).tags);
    EXPECT_EQ(loaded->page(i).abstract, output_->dump.page(i).abstract);
  }
  std::remove(path.c_str());
}

TEST_F(EncyclopediaTest, CorpusFeedsPmi) {
  text::Segmenter segmenter(&world_->lexicon());
  CorpusGenerator::Config cc;
  const Corpus corpus =
      CorpusGenerator::Generate(*world_, output_->dump, segmenter, cc);
  EXPECT_GT(corpus.sentences.size(), output_->dump.Stats().num_abstracts);
  text::NgramCounter ngrams;
  corpus.FillNgrams(&ngrams);
  EXPECT_GT(ngrams.total_bigrams(), 0u);
  // The load-bearing collocation for the separation algorithm.
  EXPECT_GT(ngrams.Pmi("首席", "战略官"), 0.0);
}

TEST(QaGeneratorTest, SizesAndKbShare) {
  WorldModel::Config wc;
  wc.num_entities = 500;
  const WorldModel world = WorldModel::Generate(wc);
  QaGenerator::Config qc;
  qc.num_questions = 2000;
  const auto questions = QaGenerator::Generate(world, qc);
  EXPECT_EQ(questions.size(), 2000u);
  size_t in_kb = 0;
  for (const auto& q : questions) {
    EXPECT_FALSE(q.text.empty());
    if (q.mentions_kb) ++in_kb;
  }
  EXPECT_NEAR(static_cast<double>(in_kb) / questions.size(), 0.92, 0.03);
}

TEST(BilingualTest, RomanizeDeterministicNonEmpty) {
  EXPECT_EQ(BilingualDictionary::Romanize("刘德华"),
            BilingualDictionary::Romanize("刘德华"));
  EXPECT_FALSE(BilingualDictionary::Romanize("刘德华").empty());
  EXPECT_NE(BilingualDictionary::Romanize("刘德华"),
            BilingualDictionary::Romanize("张学友"));
}

TEST(BilingualTest, ErrorRatesRoughlyCalibrated) {
  WorldModel::Config wc;
  wc.num_entities = 1000;
  const WorldModel world = WorldModel::Generate(wc);
  BilingualDictionary::Config bc;
  const BilingualDictionary dict = BilingualDictionary::Build(world, bc);
  size_t correct = 0, total = 0;
  for (size_t c = 0; c < world.ontology().size(); ++c) {
    const auto& t = dict.TranslateConcept(dict.EnglishConcept(static_cast<int>(c)));
    if (t.chinese.empty()) continue;
    ++total;
    if (t.correct) ++correct;
  }
  ASSERT_GT(total, 0u);
  const double rate = static_cast<double>(correct) / total;
  EXPECT_GT(rate, 0.5);
  EXPECT_LT(rate, 0.9);
}

}  // namespace
}  // namespace cnpb::synth
