// Serve-while-updating contract (ISSUE 2 tentpole): ApiService queries are
// answered against one coherent published taxonomy version even while
// IncrementalUpdater applies and publishes batches concurrently. Readers
// never block on a publish and never observe a half-applied update. Run
// under -fsanitize=thread (the tsan CMake preset / CI job) to prove the
// absence of data races.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.h"
#include "taxonomy/api_service.h"
#include "taxonomy/taxonomy.h"
#include "util/parallel.h"

namespace cnpb {
namespace {

kb::EncyclopediaPage MakePage(const std::string& name,
                              std::vector<std::string> tags) {
  kb::EncyclopediaPage page;
  page.name = name;
  page.mention = name;
  page.tags = std::move(tags);
  return page;
}

// A tiny tag-only world: `base` pages under the "anchor" concept, plus
// `num_batches` batches whose pages also carry a per-batch "wave<k>" tag.
// Cheap enough for TSan, rich enough that every published version answers
// differently.
struct TinyWorld {
  kb::EncyclopediaDump base;
  std::vector<std::vector<kb::EncyclopediaPage>> batches;
  text::Lexicon lexicon;
};

std::unique_ptr<TinyWorld> MakeTinyWorld(size_t base_pages = 20,
                                         size_t num_batches = 3,
                                         size_t batch_pages = 10) {
  auto world = std::make_unique<TinyWorld>();
  for (size_t i = 0; i < base_pages; ++i) {
    world->base.AddPage(MakePage("base" + std::to_string(i), {"anchor"}));
  }
  world->batches.resize(num_batches);
  for (size_t k = 0; k < num_batches; ++k) {
    for (size_t i = 0; i < batch_pages; ++i) {
      world->batches[k].push_back(
          MakePage("b" + std::to_string(k) + "_" + std::to_string(i),
                   {"anchor", "wave" + std::to_string(k)}));
    }
  }
  return world;
}

core::CnProbaseBuilder::Config TinyConfig() {
  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 1;
  // Tag extraction drives this world; syntax/incompatible have nothing to
  // judge on tag-only pages and are off to keep the expected sets obvious.
  config.verification.use_syntax = false;
  config.verification.use_incompatible = false;
  return config;
}

std::string Fingerprint(const taxonomy::Taxonomy& taxonomy) {
  std::ostringstream out;
  taxonomy.ForEachEdge([&](const taxonomy::IsaEdge& edge) {
    out << taxonomy.Name(edge.hypo) << '\t' << taxonomy.Name(edge.hyper)
        << '\t' << static_cast<int>(edge.source) << '\n';
  });
  return out.str();
}

// Hand-published versions: version k carries entity "probe" under concepts
// {c0 .. c(k-1)}, so a coherent GetConcept result is exactly one of those
// prefix sets. A torn read (a blend of two versions) would produce anything
// else.
TEST(ServeWhileUpdateTest, QueriesObserveExactlyOneCoherentVersion) {
  constexpr size_t kVersions = 6;
  constexpr int kReaders = 4;

  taxonomy::Taxonomy empty;
  taxonomy::ApiService api(taxonomy::Taxonomy::Freeze(std::move(empty)));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> incoherent{0};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        const std::vector<std::string> out = api.GetConcept("probe");
        // Coherent iff out == {c0 .. c(n-1)} in insertion order for some n.
        bool ok = true;
        for (size_t i = 0; i < out.size(); ++i) {
          if (out[i] != "c" + std::to_string(i)) ok = false;
        }
        if (!ok) incoherent.fetch_add(1, std::memory_order_relaxed);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (size_t version = 1; version <= kVersions; ++version) {
    // Materialise the next version off to the side, then swap it in.
    taxonomy::Taxonomy next;
    taxonomy::ApiService::MentionIndex mentions;
    for (size_t c = 0; c < version; ++c) {
      next.AddIsa("probe", "c" + std::to_string(c), taxonomy::Source::kTag,
                  0.9f);
    }
    mentions["probe"].push_back(next.Find("probe"));
    api.Publish(taxonomy::Taxonomy::Freeze(std::move(next)),
                std::move(mentions));
    // Let the readers interleave with this version before the next swap.
    const uint64_t reads_before = reads.load(std::memory_order_relaxed);
    while (reads.load(std::memory_order_relaxed) < reads_before + 50) {
      std::this_thread::yield();
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(incoherent.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(api.version(), kVersions + 1);  // ctor published version 1
}

TEST(ServeWhileUpdateTest, ReadersObserveCoherentVersionsWhileUpdaterPublishes) {
  auto world = MakeTinyWorld();

  // Reference pass: the pipeline is deterministic, so a serial run of the
  // identical update schedule yields each version's expected answers.
  std::map<uint64_t, std::vector<std::string>> expected_entities;
  std::map<uint64_t, std::vector<std::string>> expected_probe_concepts;
  {
    core::IncrementalUpdater updater(world->base, &world->lexicon, {},
                                     TinyConfig());
    taxonomy::ApiService api(updater.snapshot());
    uint64_t version = updater.Publish(&api);
    expected_entities[version] = api.GetEntity("anchor", 1000);
    expected_probe_concepts[version] = api.GetConcept("b0_0");
    for (const auto& batch : world->batches) {
      updater.ApplyBatch(batch);
      version = updater.Publish(&api);
      expected_entities[version] = api.GetEntity("anchor", 1000);
      expected_probe_concepts[version] = api.GetConcept("b0_0");
    }
    ASSERT_GE(expected_entities.size(), 4u);  // base + 3 batches
    // Every batch grows the anchor concept, so versions are distinguishable.
    ASSERT_LT(expected_entities[version - 1].size(),
              expected_entities[version].size());
  }

  // Concurrent pass: N readers hammer the service while the updater applies
  // and publishes the same batches.
  core::IncrementalUpdater updater(world->base, &world->lexicon, {},
                                   TinyConfig());
  taxonomy::ApiService api(updater.snapshot());
  const uint64_t first_version = updater.Publish(&api);

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> checked{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        // If no publish interleaved (version stable across the call), the
        // result must match that version's expected answer exactly.
        const uint64_t v1 = api.version();
        const std::vector<std::string> entities = api.GetEntity("anchor", 1000);
        const std::vector<std::string> concepts = api.GetConcept("b0_0");
        const uint64_t v2 = api.version();
        api.Men2Ent("base0");  // load on the mention path as well
        if (v1 == v2) {
          const auto want_entities = expected_entities.find(v1);
          const auto want_concepts = expected_probe_concepts.find(v1);
          if (want_entities == expected_entities.end() ||
              want_entities->second != entities ||
              want_concepts == expected_probe_concepts.end() ||
              want_concepts->second != concepts) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
          checked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  uint64_t last_version = first_version;
  for (const auto& batch : world->batches) {
    updater.ApplyBatch(batch);
    last_version = updater.Publish(&api);
    // Make sure readers actually sample this version before the next swap.
    const uint64_t checked_before = checked.load(std::memory_order_relaxed);
    while (checked.load(std::memory_order_relaxed) < checked_before + 20) {
      std::this_thread::yield();
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(checked.load(), 0u);
  EXPECT_EQ(last_version, first_version + world->batches.size());

  // Every query pinned exactly one version: per-version counts partition
  // the global totals.
  uint64_t attributed = 0;
  for (const auto& stats : api.AllVersionStats()) attributed += stats.queries;
  EXPECT_EQ(attributed, api.usage().total());
}

TEST(ServeWhileUpdateTest, OldSnapshotStaysQueryableAfterPublish) {
  auto world = MakeTinyWorld(10, 1, 5);
  core::IncrementalUpdater updater(world->base, &world->lexicon, {},
                                   TinyConfig());
  const std::shared_ptr<const taxonomy::Taxonomy> pinned = updater.snapshot();
  const size_t pinned_edges = pinned->num_edges();

  updater.ApplyBatch(world->batches[0]);
  // The updater swapped in a new generation; the pinned snapshot is
  // unchanged and still answers, exactly as an in-flight query would see it.
  EXPECT_EQ(pinned->num_edges(), pinned_edges);
  EXPECT_GT(updater.taxonomy().num_edges(), pinned_edges);
  EXPECT_EQ(pinned->Find("b0_0"), taxonomy::kInvalidNode);
  EXPECT_NE(updater.taxonomy().Find("b0_0"), taxonomy::kInvalidNode);
}

TEST(ServeWhileUpdateTest, PublishedSnapshotsByteIdenticalAcrossThreadCounts) {
  // The determinism contract (DESIGN.md §6) extends to published snapshots:
  // every version's serialized form is independent of CNPB_THREADS.
  auto world = MakeTinyWorld();
  std::vector<std::vector<std::string>> per_thread_fingerprints;
  for (const int threads : {1, 3}) {
    util::ScopedThreadsOverride override_threads(threads);
    core::IncrementalUpdater updater(world->base, &world->lexicon, {},
                                     TinyConfig());
    std::vector<std::string> fingerprints;
    fingerprints.push_back(Fingerprint(updater.taxonomy()));
    for (const auto& batch : world->batches) {
      updater.ApplyBatch(batch);
      fingerprints.push_back(Fingerprint(updater.taxonomy()));
    }
    per_thread_fingerprints.push_back(std::move(fingerprints));
  }
  ASSERT_EQ(per_thread_fingerprints[0].size(),
            per_thread_fingerprints[1].size());
  for (size_t v = 0; v < per_thread_fingerprints[0].size(); ++v) {
    EXPECT_EQ(per_thread_fingerprints[0][v], per_thread_fingerprints[1][v])
        << "version " << v << " diverged across thread counts";
  }
}

}  // namespace
}  // namespace cnpb
