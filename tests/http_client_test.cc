// Hardened HttpClient coverage: the malformed-response corpus. The client
// talks to a scripted raw-socket "server" that writes exactly the bytes a
// test asks for (or deliberately stalls), so every parsing and deadline
// path is driven end to end. The contract under test: every entry yields a
// definite util::Status — never a hang, never a silent desync.
#include "server/client.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/net.h"
#include "util/status.h"

namespace cnpb::server {
namespace {

using util::StatusCode;

// Accepts one connection on `listen_fd` (non-blocking listener), waiting up
// to `timeout_ms`. Returns the connected fd or -1.
int AcceptOne(int listen_fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return -1;
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

// One-shot scripted peer: accepts a single connection, writes `bytes`,
// then either closes or holds the connection open for `hold_ms`.
class ScriptedServer {
 public:
  ScriptedServer() {
    util::Result<int> fd = util::ListenTcp("127.0.0.1", 0, 8, &port_);
    EXPECT_TRUE(fd.ok()) << fd.status().message();
    listen_fd_ = fd.ok() ? *fd : -1;
  }

  ~ScriptedServer() {
    if (thread_.joinable()) thread_.join();
    util::CloseFd(held_fd_);
    util::CloseFd(listen_fd_);
  }

  uint16_t port() const { return port_; }

  // `close_after` false keeps the accepted socket open (stalled peer)
  // until the script thread is joined at destruction.
  void Script(std::string bytes, bool close_after = true, int hold_ms = 0) {
    thread_ = std::thread([this, bytes = std::move(bytes), close_after,
                           hold_ms] {
      const int fd = AcceptOne(listen_fd_, 5000);
      if (fd < 0) return;
      size_t off = 0;
      while (off < bytes.size()) {
        const util::Result<size_t> sent =
            util::SendSome(fd, bytes.data() + off, bytes.size() - off);
        if (!sent.ok() || *sent == 0) break;
        off += *sent;
      }
      if (hold_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
      }
      if (close_after) {
        util::CloseFd(fd);
      } else {
        held_fd_ = fd;
      }
    });
  }

 private:
  int listen_fd_ = -1;
  int held_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

HttpClient MakeClient(uint16_t port, int recv_deadline_ms = 2000) {
  HttpClient::Options options;
  options.recv_deadline = std::chrono::milliseconds(recv_deadline_ms);
  HttpClient client(options);
  const util::Status connected = client.Connect("127.0.0.1", port);
  EXPECT_TRUE(connected.ok()) << connected.message();
  return client;
}

TEST(HttpClientTest, ParsesWellFormedResponse) {
  ScriptedServer server;
  server.Script(
      "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
      "Content-Length: 5\r\n\r\nhello");
  HttpClient client = MakeClient(server.port());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "hello");
  EXPECT_EQ(response->Header("content-type"), "application/json");
  EXPECT_TRUE(client.connected());  // keep-alive survives a clean response
}

TEST(HttpClientTest, KeepAliveParsesPipelinedResponses) {
  ScriptedServer server;
  server.Script(
      "HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\none"
      "HTTP/1.1 404 Not Found\r\nContent-Length: 3\r\n\r\ntwo");
  HttpClient client = MakeClient(server.port());
  util::Result<HttpClient::Response> first = client.ReadResponse();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 200);
  EXPECT_EQ(first->body, "one");
  util::Result<HttpClient::Response> second = client.ReadResponse();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, 404);
  EXPECT_EQ(second->body, "two");
}

// --- Content-Length strictness (regression: atoll accepted all of these) --

TEST(HttpClientTest, GarbageContentLengthIsIoError) {
  // atoll("abc") == 0: the old client treated this as an empty body and
  // desynced the keep-alive stream.
  ScriptedServer server;
  server.Script("HTTP/1.1 200 OK\r\nContent-Length: abc\r\n\r\n");
  HttpClient client = MakeClient(server.port());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(client.connected());  // poisoned stream must be closed
}

TEST(HttpClientTest, NegativeContentLengthIsIoError) {
  // atoll("-5") cast to size_t was a huge length: the old client hung
  // until peer close. Now it is rejected before any body read.
  ScriptedServer server;
  server.Script("HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\n");
  HttpClient client = MakeClient(server.port());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
}

TEST(HttpClientTest, TrailingJunkContentLengthIsIoError) {
  // atoll("5x") == 5: full-field digit-only parsing rejects it.
  ScriptedServer server;
  server.Script("HTTP/1.1 200 OK\r\nContent-Length: 5x\r\n\r\nhello");
  HttpClient client = MakeClient(server.port());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
}

TEST(HttpClientTest, ConflictingDuplicateContentLengthIsIoError) {
  ScriptedServer server;
  server.Script(
      "HTTP/1.1 200 OK\r\nContent-Length: 3\r\nContent-Length: 7\r\n\r\n"
      "smuggled");
  HttpClient client = MakeClient(server.port());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
}

TEST(HttpClientTest, IdenticalDuplicateContentLengthIsAccepted) {
  ScriptedServer server;
  server.Script(
      "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi");
  HttpClient client = MakeClient(server.port());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->body, "hi");
}

TEST(HttpClientTest, OversizedContentLengthIsIoError) {
  ScriptedServer server;
  server.Script("HTTP/1.1 200 OK\r\nContent-Length: 1073741824\r\n\r\n");
  HttpClient::Options options;
  options.recv_deadline = std::chrono::milliseconds(2000);
  options.max_body_bytes = 1024;
  HttpClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
}

// --- Status-line strictness ----------------------------------------------

TEST(HttpClientTest, TruncatedStatusLineIsIoError) {
  ScriptedServer server;
  server.Script("HTTP/1.1\r\n\r\n");
  HttpClient client = MakeClient(server.port());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
}

TEST(HttpClientTest, NonNumericStatusCodeIsIoError) {
  // atoi("20x") == 20: the old client accepted it as status 20.
  ScriptedServer server;
  server.Script("HTTP/1.1 20x OK\r\nContent-Length: 0\r\n\r\n");
  HttpClient client = MakeClient(server.port());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
}

TEST(HttpClientTest, OutOfRangeStatusCodeIsIoError) {
  ScriptedServer server;
  server.Script("HTTP/1.1 1000 Nope\r\nContent-Length: 0\r\n\r\n");
  HttpClient client = MakeClient(server.port());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
}

TEST(HttpClientTest, SignedStatusCodeIsIoError) {
  ScriptedServer server;
  server.Script("HTTP/1.1 +200 OK\r\nContent-Length: 0\r\n\r\n");
  HttpClient client = MakeClient(server.port());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
}

// --- Connection lifecycle -------------------------------------------------

TEST(HttpClientTest, EarlyCloseMidBodyIsIoError) {
  ScriptedServer server;
  server.Script("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc");
  HttpClient client = MakeClient(server.port());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
}

TEST(HttpClientTest, CloseBeforeAnyResponseIsIoError) {
  ScriptedServer server;
  server.Script("");
  HttpClient client = MakeClient(server.port());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
}

// --- Deadlines ------------------------------------------------------------

TEST(HttpClientTest, StalledSocketHitsRecvDeadline) {
  // The peer accepts and then never writes a byte: the old client blocked
  // in recv() forever. With a 100ms recv_deadline the call must return
  // kDeadlineExceeded promptly.
  ScriptedServer server;
  server.Script("", /*close_after=*/false);
  HttpClient client = MakeClient(server.port(), /*recv_deadline_ms=*/100);
  const auto start = std::chrono::steady_clock::now();
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_FALSE(client.connected());
}

TEST(HttpClientTest, StallMidHeadersHitsRecvDeadline) {
  ScriptedServer server;
  server.Script("HTTP/1.1 200 OK\r\nContent-Ty", /*close_after=*/false);
  HttpClient client = MakeClient(server.port(), /*recv_deadline_ms=*/100);
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(HttpClientTest, StallMidBodyHitsRecvDeadline) {
  ScriptedServer server;
  server.Script("HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\npartial",
                /*close_after=*/false);
  HttpClient client = MakeClient(server.port(), /*recv_deadline_ms=*/100);
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(HttpClientTest, ZeroRecvDeadlineDisablesTheTimer) {
  ScriptedServer server;
  server.Script("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
  HttpClient::Options options;
  options.recv_deadline = std::chrono::milliseconds(0);
  HttpClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->body, "ok");
}

TEST(HttpClientTest, ConnectToUnresponsiveListenerIsDefiniteStatus) {
  // A black hole built on loopback: a listener with a backlog of 1 that
  // never accepts. The first couple of connects park in the accept queue;
  // once it is full the kernel drops (or resets) further SYNs, and the
  // connect deadline must turn that into a definite Status — either
  // kDeadlineExceeded (SYN silently dropped, retries outlast the deadline)
  // or kIoError (overflow answered with RST) — well before the kernel's
  // multi-minute SYN retry budget.
  uint16_t port = 0;
  util::Result<int> hole = util::ListenTcp("127.0.0.1", 0, 1, &port);
  ASSERT_TRUE(hole.ok());

  HttpClient::Options options;
  options.connect_deadline = std::chrono::milliseconds(300);
  std::vector<HttpClient> parked;  // keeps queue-filling connections open
  bool saw_failure = false;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 16 && !saw_failure; ++i) {
    HttpClient client(options);
    const util::Status status = client.Connect("127.0.0.1", port);
    if (status.ok()) {
      parked.push_back(std::move(client));
      continue;
    }
    saw_failure = true;
    EXPECT_TRUE(status.code() == StatusCode::kDeadlineExceeded ||
                status.code() == StatusCode::kIoError)
        << status.message();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(saw_failure) << "accept queue never overflowed";
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  util::CloseFd(*hole);
}

TEST(HttpClientTest, ConnectWithDeadlineSucceedsAgainstLiveListener) {
  ScriptedServer server;
  server.Script("HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n");
  HttpClient::Options options;
  options.connect_deadline = std::chrono::milliseconds(1000);
  HttpClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const util::Result<HttpClient::Response> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, 204);
}

}  // namespace
}  // namespace cnpb::server
