// Heap-vs-mmap equivalence for the reasoning engine (ISSUE 10 satellite):
// every reasoning API must return bit-identical results — nodes, depths,
// witness paths, scores and order included — whether the ServingView is
// the heap-backed Taxonomy or the snapshot round-tripped through disk and
// mmapped back. The engine's determinism contract (canonical edge order +
// totally-ordered rankings, engine.h) is what makes this a strict
// equality, not an approximate one.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "reason/engine.h"
#include "reason/service.h"
#include "taxonomy/api_service.h"
#include "taxonomy/snapshot.h"
#include "taxonomy/taxonomy.h"
#include "taxonomy/view.h"

namespace cnpb::reason {
namespace {

using taxonomy::NodeId;
using taxonomy::ServingView;
using taxonomy::Source;
using taxonomy::Taxonomy;

// A moderately rich world: 36 entities fanned over 6 overlapping leaf
// concepts plus 4 "extra" facets, a 3-level concept hierarchy, and a
// deliberate cycle through the top — so the sweeps, rankings, and
// tie-breaks all have real work to do on both backends.
Taxonomy MakeWorld() {
  Taxonomy t;
  for (int i = 0; i < 36; ++i) {
    const std::string entity = "ent" + std::to_string(i);
    t.AddIsa(entity, "cat" + std::to_string(i % 6), Source::kTag,
             0.30f + 0.015f * static_cast<float>(i));
    if (i % 3 == 0) {
      t.AddIsa(entity, "cat" + std::to_string((i + 1) % 6), Source::kTag,
               0.55f + 0.01f * static_cast<float>(i % 7));
    }
    if (i % 5 == 0) {
      t.AddIsa(entity, "extra" + std::to_string(i % 4), Source::kTag,
               0.42f + 0.02f * static_cast<float>(i % 5));
    }
  }
  for (int c = 0; c < 6; ++c) {
    t.AddIsa("cat" + std::to_string(c), "mid" + std::to_string(c % 2),
             Source::kTag, 0.7f);
  }
  t.AddIsa("extra0", "mid0", Source::kTag, 0.65f);
  t.AddIsa("extra1", "mid1", Source::kTag, 0.6f);
  t.AddIsa("mid0", "top", Source::kTag, 0.8f);
  t.AddIsa("mid1", "top", Source::kTag, 0.8f);
  // The cycle: top isA cat0 closes a loop through mid0 and back.
  t.AddIsa("top", "cat0", Source::kTag, 0.5f);
  return t;
}

class ReasonEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Taxonomy world = MakeWorld();
    taxonomy::MentionIndex mentions;
    mentions["e0"].push_back(world.Find("ent0"));
    heap_ = new std::shared_ptr<const taxonomy::HeapServingView>(
        std::make_shared<taxonomy::HeapServingView>(
            Taxonomy::Freeze(std::move(world)), std::move(mentions)));
    const std::string path =
        ::testing::TempDir() + "/reason_equivalence_snapshot.bin";
    std::remove(path.c_str());
    ASSERT_TRUE(taxonomy::WriteSnapshot(**heap_, path).ok());
    auto loaded = taxonomy::Snapshot::Load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    mmap_ = new std::shared_ptr<const taxonomy::Snapshot>(*loaded);
  }

  static void TearDownTestSuite() {
    delete heap_;
    delete mmap_;
    heap_ = nullptr;
    mmap_ = nullptr;
  }

  static const ServingView& Heap() { return **heap_; }
  static const ServingView& Mmap() { return **mmap_; }

  static std::shared_ptr<const taxonomy::HeapServingView>* heap_;
  static std::shared_ptr<const taxonomy::Snapshot>* mmap_;
};

std::shared_ptr<const taxonomy::HeapServingView>*
    ReasonEquivalenceTest::heap_ = nullptr;
std::shared_ptr<const taxonomy::Snapshot>* ReasonEquivalenceTest::mmap_ =
    nullptr;

TEST_F(ReasonEquivalenceTest, NodeIdsAndNamesRoundTrip) {
  ASSERT_EQ(Heap().num_nodes(), Mmap().num_nodes());
  ASSERT_EQ(Heap().num_edges(), Mmap().num_edges());
  for (NodeId id = 0; id < Heap().num_nodes(); ++id) {
    EXPECT_EQ(Heap().Name(id), Mmap().Name(id));
    EXPECT_EQ(Mmap().Find(Heap().Name(id)), id);
  }
}

TEST_F(ReasonEquivalenceTest, IsaClosureIsIdenticalForAllPairs) {
  const size_t n = Heap().num_nodes();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      const IsaResult h = IsaClosure(Heap(), a, b, 4);
      const IsaResult m = IsaClosure(Mmap(), a, b, 4);
      ASSERT_EQ(h.reached, m.reached) << "pair " << a << "," << b;
      ASSERT_EQ(h.depth, m.depth) << "pair " << a << "," << b;
      ASSERT_EQ(h.path, m.path) << "pair " << a << "," << b;
    }
  }
}

TEST_F(ReasonEquivalenceTest, AncestorsAreIdenticalForAllNodes) {
  for (NodeId id = 0; id < Heap().num_nodes(); ++id) {
    const std::vector<Ancestor> h = Ancestors(Heap(), id, 6);
    const std::vector<Ancestor> m = Ancestors(Mmap(), id, 6);
    ASSERT_EQ(h.size(), m.size()) << "node " << id;
    for (size_t i = 0; i < h.size(); ++i) {
      ASSERT_EQ(h[i].node, m[i].node) << "node " << id << " rank " << i;
      ASSERT_EQ(h[i].depth, m[i].depth) << "node " << id << " rank " << i;
    }
  }
}

TEST_F(ReasonEquivalenceTest, LcaIsIdenticalForAllPairs) {
  const size_t n = Heap().num_nodes();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      const LcaResult h = LowestCommonAncestor(Heap(), a, b, 6);
      const LcaResult m = LowestCommonAncestor(Mmap(), a, b, 6);
      ASSERT_EQ(h.node, m.node) << "pair " << a << "," << b;
      ASSERT_EQ(h.depth_a, m.depth_a) << "pair " << a << "," << b;
      ASSERT_EQ(h.depth_b, m.depth_b) << "pair " << a << "," << b;
    }
  }
}

// Rankings must agree to the bit: same candidates, same double scores,
// same float tie-breaks, same order and truncation.
void ExpectSameRanking(const std::vector<Scored>& h,
                       const std::vector<Scored>& m, NodeId id) {
  ASSERT_EQ(h.size(), m.size()) << "node " << id;
  for (size_t i = 0; i < h.size(); ++i) {
    ASSERT_EQ(h[i].node, m[i].node) << "node " << id << " rank " << i;
    ASSERT_EQ(h[i].score, m[i].score) << "node " << id << " rank " << i;
    ASSERT_EQ(h[i].tie, m[i].tie) << "node " << id << " rank " << i;
  }
}

TEST_F(ReasonEquivalenceTest, SimilarEntitiesRankIdentically) {
  for (NodeId id = 0; id < Heap().num_nodes(); ++id) {
    ExpectSameRanking(SimilarEntities(Heap(), id, 10),
                      SimilarEntities(Mmap(), id, 10), id);
    // Tight candidate caps truncate the same way on both backends.
    ExpectSameRanking(SimilarEntities(Heap(), id, 10, 5),
                      SimilarEntities(Mmap(), id, 10, 5), id);
  }
}

TEST_F(ReasonEquivalenceTest, ExpandConceptRanksIdentically) {
  for (NodeId id = 0; id < Heap().num_nodes(); ++id) {
    ExpectSameRanking(ExpandConcept(Heap(), id, 10),
                      ExpandConcept(Mmap(), id, 10), id);
    ExpectSameRanking(ExpandConcept(Heap(), id, 10, 5),
                      ExpandConcept(Mmap(), id, 10, 5), id);
  }
}

// The service layer on top of both backends: same names, same versions
// (both ApiServices publish their first version identically), same
// resolved payloads.
TEST_F(ReasonEquivalenceTest, ReasonServiceAgreesAcrossBackends) {
  taxonomy::ApiService heap_api(*heap_);
  taxonomy::ApiService mmap_api(*mmap_);
  ReasonService heap_service(&heap_api);
  ReasonService mmap_service(&mmap_api);

  const auto h_isa = heap_service.TryIsa("ent0", "top", 4);
  const auto m_isa = mmap_service.TryIsa("ent0", "top", 4);
  ASSERT_TRUE(h_isa.ok());
  ASSERT_TRUE(m_isa.ok());
  EXPECT_EQ(h_isa->isa, m_isa->isa);
  EXPECT_EQ(h_isa->depth, m_isa->depth);
  EXPECT_EQ(h_isa->path, m_isa->path);

  const auto h_lca = heap_service.TryLca("ent1", "ent2", 6);
  const auto m_lca = mmap_service.TryLca("ent1", "ent2", 6);
  ASSERT_TRUE(h_lca.ok());
  ASSERT_TRUE(m_lca.ok());
  EXPECT_EQ(h_lca->found, m_lca->found);
  EXPECT_EQ(h_lca->lca, m_lca->lca);

  const auto h_sim = heap_service.TrySimilar("ent0", 8);
  const auto m_sim = mmap_service.TrySimilar("ent0", 8);
  ASSERT_TRUE(h_sim.ok());
  ASSERT_TRUE(m_sim.ok());
  ASSERT_EQ(h_sim->results.size(), m_sim->results.size());
  for (size_t i = 0; i < h_sim->results.size(); ++i) {
    EXPECT_EQ(h_sim->results[i].name, m_sim->results[i].name);
    EXPECT_EQ(h_sim->results[i].score, m_sim->results[i].score);
  }

  const auto h_exp = heap_service.TryExpand("cat0", 8);
  const auto m_exp = mmap_service.TryExpand("cat0", 8);
  ASSERT_TRUE(h_exp.ok());
  ASSERT_TRUE(m_exp.ok());
  ASSERT_EQ(h_exp->results.size(), m_exp->results.size());
  for (size_t i = 0; i < h_exp->results.size(); ++i) {
    EXPECT_EQ(h_exp->results[i].name, m_exp->results[i].name);
    EXPECT_EQ(h_exp->results[i].score, m_exp->results[i].score);
  }
}

}  // namespace
}  // namespace cnpb::reason
