#include <gtest/gtest.h>

#include "verification/incompatible.h"
#include "verification/ner_filter.h"
#include "verification/pipeline.h"
#include "verification/syntax_rules.h"

namespace cnpb::verification {
namespace {

// ---- syntax rules ------------------------------------------------------------

TEST(SyntaxRulesTest, ThematicWordsRejected) {
  SyntaxRules::Config config;
  config.thematic_lexicon = {"政治", "军事", "音乐"};
  SyntaxRules rules(config);
  EXPECT_TRUE(rules.Rejects("某人", "音乐"));
  EXPECT_FALSE(rules.Rejects("某人", "音乐家"));
}

TEST(SyntaxRulesTest, HeadStemRule) {
  SyntaxRules rules(SyntaxRules::Config{});
  // The paper's example: isA(教育机构, 教育) is wrong — 教育 occurs in a
  // non-head (non-suffix) position of the hyponym.
  EXPECT_TRUE(rules.Rejects("教育机构", "教育"));
  // isA(男演员, 演员) is fine — the hypernym is the hyponym's head suffix.
  EXPECT_FALSE(rules.Rejects("男演员", "演员"));
  // Unrelated strings pass.
  EXPECT_FALSE(rules.Rejects("刘德华", "演员"));
  // A term is not its own hypernym.
  EXPECT_TRUE(rules.Rejects("演员", "演员"));
}

TEST(SyntaxRulesTest, MarkRejectionsUsesBareMention) {
  SyntaxRules rules(SyntaxRules::Config{});
  generation::CandidateList candidates = {
      {"教育机构（中国组织）", "教育", taxonomy::Source::kTag, 1.0f},
      {"教育机构（中国组织）", "机构", taxonomy::Source::kTag, 1.0f},
  };
  std::unordered_map<std::string, std::string> mentions = {
      {"教育机构（中国组织）", "教育机构"}};
  std::vector<uint8_t> rejected(2, 0);
  EXPECT_EQ(rules.MarkRejections(candidates, mentions, &rejected), 1u);
  EXPECT_TRUE(rejected[0]);   // 教育 in non-head position
  EXPECT_FALSE(rejected[1]);  // 机构 is the head suffix
}

// ---- NER filter ----------------------------------------------------------------

class NerFilterTest : public ::testing::Test {
 protected:
  NerFilterTest() {
    lexicon_.Add("北京", 100, text::Pos::kProperNoun);
    lexicon_.Add("演员", 100, text::Pos::kNoun);
    lexicon_.Add("出生", 100, text::Pos::kOther);
    lexicon_.Add("于", 100, text::Pos::kOther);
  }
  text::Lexicon lexicon_;
};

TEST_F(NerFilterTest, RecogniserUsesLexiconAndContext) {
  NerFilter filter(&lexicon_, NerFilter::Config{});
  EXPECT_TRUE(filter.IsNamedEntity("北京", ""));
  EXPECT_FALSE(filter.IsNamedEntity("演员", ""));
  EXPECT_TRUE(filter.IsNamedEntity("某地", "于"));
  EXPECT_TRUE(filter.IsNamedEntity("某地", "位于"));
  EXPECT_FALSE(filter.IsNamedEntity("某地", "是"));
}

TEST_F(NerFilterTest, S1FromCorpus) {
  NerFilter filter(&lexicon_, NerFilter::Config{});
  filter.AddCorpusSentence({"北京", "演员", "出生", "于", "北京"});
  EXPECT_DOUBLE_EQ(filter.S1("北京"), 1.0);
  EXPECT_DOUBLE_EQ(filter.S1("演员"), 0.0);
  EXPECT_DOUBLE_EQ(filter.S1("没见过"), 0.0);
}

TEST_F(NerFilterTest, S2FromCandidateRoles) {
  NerFilter filter(&lexicon_, NerFilter::Config{});
  generation::CandidateList candidates = {
      {"北京（城市）", "城市", taxonomy::Source::kTag, 1.0f},
      {"某人（演员）", "北京", taxonomy::Source::kTag, 1.0f},
  };
  std::unordered_map<std::string, std::string> mentions = {
      {"北京（城市）", "北京"}, {"某人（演员）", "某人"}};
  filter.Prepare(candidates, mentions);
  // 北京: once as an entity mention (NE role), once as a hypernym.
  EXPECT_DOUBLE_EQ(filter.S2("北京"), 0.5);
  // 城市 only ever plays the class role.
  EXPECT_DOUBLE_EQ(filter.S2("城市"), 0.0);
}

TEST_F(NerFilterTest, NoisyOrCombination) {
  NerFilter filter(&lexicon_, NerFilter::Config{});
  filter.AddCorpusSentence({"出生", "于", "北京"});
  // s1(北京)=1 -> s=1 regardless of s2.
  EXPECT_DOUBLE_EQ(filter.Support("北京"), 1.0);
  EXPECT_DOUBLE_EQ(filter.Support("演员"), 0.0);
}

TEST_F(NerFilterTest, MarkRejectionsThreshold) {
  NerFilter::Config config;
  config.threshold = 0.5;
  NerFilter filter(&lexicon_, config);
  filter.AddCorpusSentence({"北京", "演员"});
  generation::CandidateList candidates = {
      {"iPhone（手机）", "北京", taxonomy::Source::kTag, 1.0f},
      {"某人（演员）", "演员", taxonomy::Source::kTag, 1.0f},
  };
  std::vector<uint8_t> rejected(2, 0);
  EXPECT_EQ(filter.MarkRejections(candidates, &rejected), 1u);
  EXPECT_TRUE(rejected[0]);
  EXPECT_FALSE(rejected[1]);
}

// ---- incompatible concepts --------------------------------------------------------

TEST(IncompatibleMathTest, Jaccard) {
  EXPECT_DOUBLE_EQ(IncompatibleConcepts::Jaccard({"a", "b"}, {"b", "c"}),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(IncompatibleConcepts::Jaccard({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(IncompatibleConcepts::Jaccard({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(IncompatibleConcepts::Jaccard({"a", "a"}, {"a"}), 1.0);
}

TEST(IncompatibleMathTest, Cosine) {
  std::unordered_map<std::string, double> a = {{"x", 1.0}};
  std::unordered_map<std::string, double> b = {{"x", 2.0}};
  std::unordered_map<std::string, double> c = {{"y", 1.0}};
  EXPECT_NEAR(IncompatibleConcepts::Cosine(a, b), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(IncompatibleConcepts::Cosine(a, c), 0.0);
  EXPECT_DOUBLE_EQ(IncompatibleConcepts::Cosine({}, a), 0.0);
}

TEST(IncompatibleMathTest, KlDivergence) {
  std::unordered_map<std::string, double> e = {{"x", 0.5}, {"y", 0.5}};
  std::unordered_map<std::string, double> same = e;
  std::unordered_map<std::string, double> far = {{"z", 1.0}};
  EXPECT_NEAR(IncompatibleConcepts::KlDivergence(e, same), 0.0, 1e-9);
  EXPECT_GT(IncompatibleConcepts::KlDivergence(e, far), 5.0);
}

class IncompatibleConceptsTest : public ::testing::Test {
 protected:
  // 20 persons (职业/出生地 attributes) and 20 books (作者/出版社).
  // person i=0 wrongly also carries the concept 书籍.
  IncompatibleConceptsTest() {
    for (int i = 0; i < 20; ++i) {
      kb::EncyclopediaPage page;
      page.name = "人" + std::to_string(i);
      page.mention = page.name;
      page.infobox.push_back({page.name, "职业", "演员"});
      page.infobox.push_back({page.name, "出生地", "北京"});
      dump_.AddPage(page);
      candidates_.push_back({page.name, "人物", taxonomy::Source::kTag, 1.0f});
      if (i % 2 == 0) {
        candidates_.push_back(
            {page.name, "演员", taxonomy::Source::kTag, 1.0f});
      }
    }
    for (int i = 0; i < 20; ++i) {
      kb::EncyclopediaPage page;
      page.name = "书" + std::to_string(i);
      page.mention = page.name;
      page.infobox.push_back({page.name, "作者", "某人"});
      page.infobox.push_back({page.name, "出版社", "某社"});
      dump_.AddPage(page);
      candidates_.push_back({page.name, "书籍", taxonomy::Source::kTag, 1.0f});
    }
    // The wrong relation: person 0 tagged 书籍.
    candidates_.push_back({"人0", "书籍", taxonomy::Source::kTag, 1.0f});
    wrong_index_ = candidates_.size() - 1;
  }

  kb::EncyclopediaDump dump_;
  generation::CandidateList candidates_;
  size_t wrong_index_ = 0;
};

TEST_F(IncompatibleConceptsTest, RejectsCrossDomainConcept) {
  IncompatibleConcepts::Config config;
  config.min_hyponyms = 5;
  IncompatibleConcepts strategy(&dump_, config);
  std::vector<uint8_t> rejected(candidates_.size(), 0);
  const size_t n = strategy.MarkRejections(candidates_, &rejected);
  EXPECT_GE(n, 1u);
  EXPECT_TRUE(rejected[wrong_index_]);
}

TEST_F(IncompatibleConceptsTest, KeepsCompatiblePair) {
  IncompatibleConcepts::Config config;
  config.min_hyponyms = 5;
  IncompatibleConcepts strategy(&dump_, config);
  std::vector<uint8_t> rejected(candidates_.size(), 0);
  strategy.MarkRejections(candidates_, &rejected);
  // 人物 and 演员 share hyponyms and attributes: never incompatible.
  for (size_t i = 0; i + 1 < candidates_.size(); ++i) {
    if (candidates_[i].hyper == "人物" || candidates_[i].hyper == "演员") {
      EXPECT_FALSE(rejected[i]) << candidates_[i].hypo << " -> "
                                << candidates_[i].hyper;
    }
  }
}

TEST_F(IncompatibleConceptsTest, SparseConceptsNotJudged) {
  IncompatibleConcepts::Config config;
  config.min_hyponyms = 100;  // nothing has 100 hyponyms
  IncompatibleConcepts strategy(&dump_, config);
  std::vector<uint8_t> rejected(candidates_.size(), 0);
  EXPECT_EQ(strategy.MarkRejections(candidates_, &rejected), 0u);
}

// ---- pipeline -------------------------------------------------------------------

TEST(PipelineUnitTest, StrategiesComposeAndReportAttribution) {
  kb::EncyclopediaDump dump;
  kb::EncyclopediaPage page;
  page.name = "某人（演员）";
  page.mention = "某人";
  page.infobox.push_back({page.name, "职业", "演员"});
  dump.AddPage(page);

  text::Lexicon lexicon;
  lexicon.Add("北京", 100, text::Pos::kProperNoun);
  lexicon.Add("演员", 100, text::Pos::kNoun);

  VerificationPipeline::Config config;
  config.syntax.thematic_lexicon = {"音乐"};
  VerificationPipeline pipeline(&dump, &lexicon, config);
  pipeline.AddCorpusSentence({"北京", "演员"});

  generation::CandidateList candidates = {
      {"某人（演员）", "演员", taxonomy::Source::kTag, 1.0f},  // keep
      {"某人（演员）", "音乐", taxonomy::Source::kTag, 1.0f},  // syntax
      {"某人（演员）", "北京", taxonomy::Source::kTag, 1.0f},  // NER
  };
  VerificationPipeline::Report report;
  const auto verified = pipeline.Verify(candidates, &report);
  ASSERT_EQ(verified.size(), 1u);
  EXPECT_EQ(verified[0].hyper, "演员");
  EXPECT_EQ(report.input, 3u);
  EXPECT_EQ(report.output, 1u);
  EXPECT_EQ(report.rejected_syntax, 1u);
  EXPECT_EQ(report.rejected_ner, 1u);
  EXPECT_EQ(report.rejected_incompatible, 0u);
}

TEST(PipelineUnitTest, DisabledStrategiesRejectNothing) {
  kb::EncyclopediaDump dump;
  text::Lexicon lexicon;
  lexicon.Add("北京", 100, text::Pos::kProperNoun);
  VerificationPipeline::Config config;
  config.use_syntax = false;
  config.use_ner = false;
  config.use_incompatible = false;
  config.syntax.thematic_lexicon = {"音乐"};
  VerificationPipeline pipeline(&dump, &lexicon, config);
  generation::CandidateList candidates = {
      {"x", "音乐", taxonomy::Source::kTag, 1.0f},
      {"y", "北京", taxonomy::Source::kTag, 1.0f},
  };
  VerificationPipeline::Report report;
  EXPECT_EQ(pipeline.Verify(candidates, &report).size(), 2u);
  EXPECT_EQ(report.rejected_total(), 0u);
}

}  // namespace
}  // namespace cnpb::verification
