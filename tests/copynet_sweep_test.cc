// Architecture sweep: CopyNet must train across embedding/hidden sizes and
// stay deterministic per seed.
#include <gtest/gtest.h>

#include <tuple>

#include "nn/adam.h"
#include "nn/copynet.h"
#include "util/rng.h"

namespace cnpb::nn {
namespace {

class CopyNetSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  void BuildData() {
    util::Rng rng(7);
    const std::vector<std::string> targets = {"演员", "歌手", "作家", "画家"};
    for (const char* w : {"他", "是", "的"}) input_vocab_.Add(w);
    for (const std::string& w : targets) {
      input_vocab_.Add(w);
      output_vocab_.Add(w);
    }
    for (int i = 0; i < 120; ++i) {
      CopyNet::Example example;
      const std::string& target = targets[rng.Uniform(targets.size())];
      example.source_words = {"他", "是", target};
      example.source_ids = input_vocab_.Encode(example.source_words);
      example.target_words = {target};
      examples_.push_back(std::move(example));
    }
  }

  float Train(CopyNet* model, int epochs = 8) {
    Adam::Config adam_config;
    adam_config.lr = 0.03f;
    Adam adam(model->Params(), adam_config);
    float last = 0;
    for (int e = 0; e < epochs; ++e) {
      std::vector<const CopyNet::Example*> batch;
      float loss = 0;
      int batches = 0;
      for (const auto& example : examples_) {
        batch.push_back(&example);
        if (batch.size() == 12) {
          loss += model->AccumulateBatch(batch);
          adam.Step();
          batch.clear();
          ++batches;
        }
      }
      last = loss / batches;
    }
    return last;
  }

  Vocab input_vocab_;
  Vocab output_vocab_;
  std::vector<CopyNet::Example> examples_;
};

TEST_P(CopyNetSweepTest, TrainsAtEveryScale) {
  const auto [embed, hidden] = GetParam();
  BuildData();
  CopyNet::Config config;
  config.embed_dim = embed;
  config.hidden_dim = hidden;
  CopyNet model(&input_vocab_, &output_vocab_, config);
  std::vector<const CopyNet::Example*> probe = {&examples_[0]};
  const float initial = model.AccumulateBatch(probe);
  const float trained = Train(&model);
  EXPECT_LT(trained, initial * 0.6f) << "embed=" << embed
                                     << " hidden=" << hidden;
  // Trained model solves the copy task.
  size_t correct = 0;
  for (const auto& example : examples_) {
    const auto generated =
        model.Generate(example.source_ids, example.source_words);
    if (!generated.empty() && generated[0] == example.target_words[0]) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / examples_.size(), 0.9);
}

TEST_P(CopyNetSweepTest, DeterministicPerSeed) {
  const auto [embed, hidden] = GetParam();
  BuildData();
  CopyNet::Config config;
  config.embed_dim = embed;
  config.hidden_dim = hidden;
  CopyNet a(&input_vocab_, &output_vocab_, config);
  CopyNet b(&input_vocab_, &output_vocab_, config);
  std::vector<const CopyNet::Example*> batch;
  for (const auto& example : examples_) batch.push_back(&example);
  EXPECT_FLOAT_EQ(a.AccumulateBatch(batch), b.AccumulateBatch(batch));
}

INSTANTIATE_TEST_SUITE_P(
    Dims, CopyNetSweepTest,
    ::testing::Values(std::make_tuple(8, 12), std::make_tuple(16, 24),
                      std::make_tuple(32, 48)));

}  // namespace
}  // namespace cnpb::nn
