// Crash-safe persistence: CRC32, AtomicFileWriter, checksum footers, and
// the save/load recovery paths built on them (taxonomy .bak fallback,
// nn checkpoint trailer).
#include "util/atomic_file.h"

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "nn/autograd.h"
#include "nn/serialize.h"
#include "taxonomy/serialize.h"
#include "taxonomy/taxonomy.h"
#include "util/fault_injection.h"
#include "util/status.h"
#include "util/tsv.h"

namespace cnpb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string MustRead(const std::string& path) {
  auto content = util::ReadFileToString(path);
  EXPECT_TRUE(content.ok()) << content.status().ToString();
  return content.ok() ? *content : std::string();
}

TEST(Crc32Test, MatchesKnownVectors) {
  // Standard check values for the ISO-HDLC (zlib) CRC-32.
  EXPECT_EQ(util::Crc32(""), 0x00000000u);
  EXPECT_EQ(util::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(util::Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, SeedChainsIncrementalComputation) {
  const std::string a = "hello ";
  const std::string b = "world";
  EXPECT_EQ(util::Crc32(b, util::Crc32(a)), util::Crc32(a + b));
}

TEST(Crc32cTest, MatchesKnownVectors) {
  // Standard check values for CRC-32C (Castagnoli, iSCSI/ext4).
  EXPECT_EQ(util::Crc32c(""), 0x00000000u);
  EXPECT_EQ(util::Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, SeedChainsIncrementalComputation) {
  const std::string a = "hello ";
  const std::string b = "world";
  EXPECT_EQ(util::Crc32c(b, util::Crc32c(a)), util::Crc32c(a + b));
}

TEST(Crc32cTest, ChainingConsistentAcrossBlockBoundaries) {
  // The hardware path switches strategy at 8 KiB blocks (3-way interleave
  // with a GF(2) combine) and again for sub-8-byte tails; splitting the
  // buffer at awkward points must not change the value. This also pins the
  // hardware and software implementations to each other: whichever path
  // runs, the chained value over odd splits must match the one-shot value.
  std::string data(3 * 8192 + 8192 / 2 + 5, '\0');
  uint32_t x = 0x12345678u;
  for (auto& ch : data) {  // xorshift keeps the buffer incompressible
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    ch = static_cast<char>(x);
  }
  const uint32_t whole = util::Crc32c(data);
  for (const size_t split : {size_t{1}, size_t{7}, size_t{8}, size_t{4095},
                             size_t{8192}, size_t{3 * 8192},
                             data.size() - 3}) {
    const std::string_view head(data.data(), split);
    const std::string_view tail(data.data() + split, data.size() - split);
    EXPECT_EQ(util::Crc32c(tail, util::Crc32c(head)), whole)
        << "split at " << split;
  }
}

TEST(AtomicFileTest, WriteThenReadRoundTrips) {
  const std::string path = TempPath("atomic_roundtrip.txt");
  ASSERT_TRUE(util::WriteFileAtomic(path, "payload\n").ok());
  EXPECT_EQ(MustRead(path), "payload\n");
  // Overwrite is atomic too.
  ASSERT_TRUE(util::WriteFileAtomic(path, "second\n").ok());
  EXPECT_EQ(MustRead(path), "second\n");
}

TEST(AtomicFileTest, AbandonedWriterLeavesDestinationUntouched) {
  const std::string path = TempPath("atomic_abandoned.txt");
  ASSERT_TRUE(util::WriteFileAtomic(path, "original").ok());
  {
    util::AtomicFileWriter writer(path);
    writer.Append("never committed");
    // Destructor without Commit() abandons the write.
  }
  EXPECT_EQ(MustRead(path), "original");
}

TEST(AtomicFileTest, FooterVerifiesAndStrips) {
  const std::string payload = "a\tb\nc\td\n";
  const std::string path = TempPath("atomic_footer.tsv");
  ASSERT_TRUE(
      util::WriteFileAtomic(path, payload, {.checksum_footer = true}).ok());
  const std::string on_disk = MustRead(path);
  ASSERT_GT(on_disk.size(), payload.size());
  auto verified = util::StripVerifyChecksumFooter(on_disk, path);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(*verified, payload);
}

TEST(AtomicFileTest, FooterlessContentPassesThroughUnchanged) {
  auto verified = util::StripVerifyChecksumFooter("legacy\tfile\n", "x.tsv");
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(*verified, "legacy\tfile\n");
}

TEST(AtomicFileTest, CorruptedPayloadIsDataLoss) {
  const std::string path = TempPath("atomic_corrupt.tsv");
  ASSERT_TRUE(
      util::WriteFileAtomic(path, "a\tb\n", {.checksum_footer = true}).ok());
  std::string on_disk = MustRead(path);
  on_disk[0] = 'z';  // flip a payload byte; footer now mismatches
  auto verified = util::StripVerifyChecksumFooter(on_disk, path);
  EXPECT_EQ(verified.status().code(), util::StatusCode::kDataLoss);
}

TEST(AtomicFileTest, InjectedRenameFaultLeavesOldFileIntact) {
  const std::string path = TempPath("atomic_faulted.txt");
  ASSERT_TRUE(util::WriteFileAtomic(path, "old good bytes").ok());
  {
    util::ScopedFaultInjection scoped("file.rename=1", 17);
    const util::Status status = util::WriteFileAtomic(path, "new bytes");
    EXPECT_EQ(status.code(), util::StatusCode::kIoError);
  }
  EXPECT_EQ(MustRead(path), "old good bytes");
  // And no temp litter: the very same path writes fine afterwards.
  ASSERT_TRUE(util::WriteFileAtomic(path, "new bytes").ok());
  EXPECT_EQ(MustRead(path), "new bytes");
}

TEST(AtomicFileTest, InjectedDirsyncFaultFailsCommitWithFileInstalled) {
  const std::string path = TempPath("atomic_dirsync.txt");
  ASSERT_TRUE(util::WriteFileAtomic(path, "old good bytes").ok());
  {
    util::ScopedFaultInjection scoped("file.dirsync=1", 17);
    const util::Status status = util::WriteFileAtomic(path, "new bytes");
    EXPECT_EQ(status.code(), util::StatusCode::kIoError);
    // The rename already landed before the directory fsync failed: the new
    // bytes are visible, but the commit reported failure because the
    // *directory entry* may not survive a power cut — the caller must
    // treat the write as not durable and retry.
    EXPECT_EQ(MustRead(path), "new bytes");
  }
  ASSERT_TRUE(util::WriteFileAtomic(path, "new bytes").ok());
  EXPECT_EQ(MustRead(path), "new bytes");
}

TEST(AtomicFileTest, ParentDirSplitsLikeDirname) {
  EXPECT_EQ(util::ParentDir("/a/b/c.txt"), "/a/b");
  EXPECT_EQ(util::ParentDir("/c.txt"), "/");
  EXPECT_EQ(util::ParentDir("c.txt"), ".");
}

TEST(AtomicFileTest, SyncDirAcceptsRealDirectories) {
  EXPECT_TRUE(util::SyncDir(::testing::TempDir()).ok());
  EXPECT_FALSE(util::SyncDir(::testing::TempDir() + "/no_such_dir").ok());
}

TEST(AtomicFileTest, TsvReadRejectsTamperedChecksummedFile) {
  const std::string path = TempPath("atomic_tamper.tsv");
  {
    util::TsvWriter writer(path);
    writer.WriteRow({"k", "v"});
    ASSERT_TRUE(writer.Close().ok());
  }
  std::string on_disk = MustRead(path);
  on_disk.insert(0, "extra\trow\n");  // prepend without refreshing the footer
  ASSERT_TRUE(util::WriteFileAtomic(path, on_disk).ok());
  auto rows = util::ReadTsvFile(path);
  EXPECT_EQ(rows.status().code(), util::StatusCode::kDataLoss);
}

taxonomy::Taxonomy TinyTaxonomy(const std::string& entity) {
  taxonomy::Taxonomy t;
  const taxonomy::NodeId e = t.AddNode(entity, taxonomy::NodeKind::kEntity);
  const taxonomy::NodeId c = t.AddNode("概念", taxonomy::NodeKind::kConcept);
  t.AddIsa(e, c, taxonomy::Source::kInfobox, 0.9f);
  return t;
}

TEST(DurableTaxonomyTest, FallbackRecoversFromCorruptPrimary) {
  const std::string path = TempPath("durable_taxonomy.tsv");
  std::remove((path + ".bak").c_str());
  ASSERT_TRUE(
      taxonomy::SaveTaxonomyDurable(TinyTaxonomy("实体甲"), path).ok());
  // Second durable save preserves generation 1 as .bak.
  ASSERT_TRUE(
      taxonomy::SaveTaxonomyDurable(TinyTaxonomy("实体乙"), path).ok());

  // Corrupt the primary in place (payload flip under the footer).
  std::string on_disk = MustRead(path);
  on_disk[0] = 'X';
  ASSERT_TRUE(util::WriteFileAtomic(path, on_disk).ok());

  auto strict = taxonomy::LoadTaxonomy(path);
  EXPECT_EQ(strict.status().code(), util::StatusCode::kDataLoss);

  auto recovered = taxonomy::LoadTaxonomyWithFallback(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_NE(recovered->Find("实体甲"), taxonomy::kInvalidNode);
}

TEST(DurableTaxonomyTest, MissingPrimaryIsNotCorruption) {
  const std::string path = TempPath("durable_missing.tsv");
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
  auto loaded = taxonomy::LoadTaxonomyWithFallback(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(DurableTaxonomyTest, InjectedSaveFaultPreservesPreviousFile) {
  const std::string path = TempPath("durable_faulted.tsv");
  ASSERT_TRUE(
      taxonomy::SaveTaxonomyDurable(TinyTaxonomy("实体甲"), path).ok());
  {
    util::ScopedFaultInjection scoped("taxonomy.save.rename=1", 23);
    EXPECT_FALSE(
        taxonomy::SaveTaxonomyDurable(TinyTaxonomy("实体乙"), path).ok());
  }
  auto loaded = taxonomy::LoadTaxonomy(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_NE(loaded->Find("实体甲"), taxonomy::kInvalidNode);
  EXPECT_EQ(loaded->Find("实体乙"), taxonomy::kInvalidNode);
}

TEST(CheckpointCrcTest, TruncatedCheckpointIsRejected) {
  const std::string path = TempPath("ckpt_truncated.bin");
  std::vector<nn::Var> params = {nn::MakeVar(nn::Tensor::Zeros(2, 3), true),
                                 nn::MakeVar(nn::Tensor::Zeros(1, 4), true)};
  ASSERT_TRUE(nn::SaveParameters(params, path).ok());

  // Clean round trip first.
  ASSERT_TRUE(nn::LoadParameters(params, path).ok());

  // Drop the last byte: the trailer magic no longer lines up, and the
  // payload itself is torn -> load must fail, not read garbage.
  std::string bytes = MustRead(path);
  bytes.pop_back();
  ASSERT_TRUE(util::WriteFileAtomic(path, bytes).ok());
  EXPECT_FALSE(nn::LoadParameters(params, path).ok());
}

TEST(CheckpointCrcTest, BitFlippedCheckpointIsDataLoss) {
  const std::string path = TempPath("ckpt_flipped.bin");
  std::vector<nn::Var> params = {nn::MakeVar(nn::Tensor::Zeros(4, 4), true)};
  ASSERT_TRUE(nn::SaveParameters(params, path).ok());
  std::string bytes = MustRead(path);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one weight bit
  ASSERT_TRUE(util::WriteFileAtomic(path, bytes).ok());
  const util::Status status = nn::LoadParameters(params, path);
  EXPECT_EQ(status.code(), util::StatusCode::kDataLoss);
}

}  // namespace
}  // namespace cnpb
