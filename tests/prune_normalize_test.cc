#include <gtest/gtest.h>

#include "taxonomy/prune.h"
#include "text/normalize.h"

namespace cnpb {
namespace {

// ---- text normalisation -------------------------------------------------------

TEST(NormalizeTest, FullwidthFoldsToHalfwidth) {
  EXPECT_EQ(text::NormalizeText("ＡＢＣ０１２"), "abc012");
  EXPECT_EQ(text::NormalizeText("ｉＰｈｏｎｅ　１２"), "iphone 12");
}

TEST(NormalizeTest, ChinesePreserved) {
  EXPECT_EQ(text::NormalizeText("刘德华（中国香港男演员、歌手）"),
            "刘德华（中国香港男演员、歌手）");
  EXPECT_EQ(text::NormalizeText("《忘情水》，1994年。"),
            "《忘情水》，1994年。");
}

TEST(NormalizeTest, AsciiLowercased) {
  EXPECT_EQ(text::NormalizeText("CPU和GPU"), "cpu和gpu");
  EXPECT_EQ(text::NormalizeText(""), "");
}

TEST(NormalizeTest, Idempotent) {
  const std::string once = text::NormalizeText("ＡＢＣ　ＤＥＦ刘德华XY");
  EXPECT_EQ(text::NormalizeText(once), once);
}

// ---- transitive reduction -------------------------------------------------------

TEST(TransitiveReduceTest, RemovesImpliedConceptEdges) {
  taxonomy::Taxonomy t;
  t.AddIsa("男演员", "演员", taxonomy::Source::kTag, 1.0f,
           taxonomy::NodeKind::kConcept);
  t.AddIsa("演员", "人物", taxonomy::Source::kTag, 1.0f,
           taxonomy::NodeKind::kConcept);
  t.AddIsa("男演员", "人物", taxonomy::Source::kTag, 1.0f,
           taxonomy::NodeKind::kConcept);  // implied
  EXPECT_EQ(taxonomy::TransitiveReduceConcepts(&t), 1u);
  EXPECT_TRUE(t.HasIsa(t.Find("男演员"), t.Find("演员")));
  EXPECT_TRUE(t.HasIsa(t.Find("演员"), t.Find("人物")));
  EXPECT_FALSE(t.HasIsa(t.Find("男演员"), t.Find("人物")));
  // Idempotent.
  EXPECT_EQ(taxonomy::TransitiveReduceConcepts(&t), 0u);
}

TEST(TransitiveReduceTest, EntityEdgesUntouched) {
  taxonomy::Taxonomy t;
  t.AddIsa("刘德华", "男演员", taxonomy::Source::kTag);
  t.AddIsa("刘德华", "人物", taxonomy::Source::kTag);  // redundant but entity
  t.AddIsa("男演员", "人物", taxonomy::Source::kTag, 1.0f,
           taxonomy::NodeKind::kConcept);
  EXPECT_EQ(taxonomy::TransitiveReduceConcepts(&t), 0u);
  EXPECT_EQ(t.num_edges(), 3u);
}

TEST(TransitiveReduceTest, DiamondKeepsBothDirectEdges) {
  taxonomy::Taxonomy t;
  // a->b->d, a->c->d: no edge is redundant.
  for (const char* n : {"a", "b", "c", "d"}) {
    t.AddNode(n, taxonomy::NodeKind::kConcept);
  }
  t.AddIsa(t.Find("a"), t.Find("b"), taxonomy::Source::kTag);
  t.AddIsa(t.Find("a"), t.Find("c"), taxonomy::Source::kTag);
  t.AddIsa(t.Find("b"), t.Find("d"), taxonomy::Source::kTag);
  t.AddIsa(t.Find("c"), t.Find("d"), taxonomy::Source::kTag);
  EXPECT_EQ(taxonomy::TransitiveReduceConcepts(&t), 0u);
  // But a direct a->d shortcut is removed.
  t.AddIsa(t.Find("a"), t.Find("d"), taxonomy::Source::kTag);
  EXPECT_EQ(taxonomy::TransitiveReduceConcepts(&t), 1u);
}

// ---- rare-concept pruning ---------------------------------------------------------

TEST(PruneRareTest, DropsLongTailConcepts) {
  taxonomy::Taxonomy t;
  for (int i = 0; i < 10; ++i) {
    t.AddIsa("e" + std::to_string(i), "大概念", taxonomy::Source::kTag);
  }
  t.AddIsa("e0", "孤概念", taxonomy::Source::kTag);
  t.AddIsa("孤概念", "大概念", taxonomy::Source::kTag, 1.0f,
           taxonomy::NodeKind::kConcept);
  const size_t removed = taxonomy::PruneRareConcepts(&t, 3);
  EXPECT_EQ(removed, 2u);  // e0->孤概念 and 孤概念->大概念
  EXPECT_TRUE(t.Hyponyms(t.Find("孤概念")).empty());
  EXPECT_EQ(t.Hyponyms(t.Find("大概念")).size(), 10u);
}

TEST(PruneRareTest, ZeroThresholdIsNoop) {
  taxonomy::Taxonomy t;
  t.AddIsa("e", "c", taxonomy::Source::kTag);
  EXPECT_EQ(taxonomy::PruneRareConcepts(&t, 0), 0u);
  EXPECT_EQ(t.num_edges(), 1u);
}

}  // namespace
}  // namespace cnpb
