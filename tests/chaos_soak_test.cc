// Seeded chaos soak (the capstone of DESIGN.md §8): with faults armed over
// the persistence and serving fault points, run build -> save -> load ->
// serve-while-update rounds and assert the system degrades, never breaks:
//   - no crash, no CHECK failure;
//   - no checksum-invalid (kDataLoss) or structurally torn load — atomic
//     writes mean every on-disk file is some complete generation;
//   - served versions are coherent: every query answers from exactly one
//     published generation, and generations observed by a reader never go
//     backwards.
// Each seed replays a distinct deterministic fault schedule.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kb/dump.h"
#include "taxonomy/api_service.h"
#include "taxonomy/serialize.h"
#include "taxonomy/snapshot.h"
#include "taxonomy/taxonomy.h"
#include "taxonomy/view.h"
#include "util/fault_injection.h"
#include "util/retry.h"
#include "util/status.h"

namespace cnpb {
namespace {

constexpr int kRounds = 6;

// Fault schedule over the whole surface: dump persistence, taxonomy
// persistence (TSV durable saves including the backup copy, and the binary
// snapshot writer), load reads on both formats, publish contention, and
// query-path errors + latency.
constexpr char kChaosSpec[] =
    "kb.dump.save.write=0.1;kb.dump.save.rename=0.15;kb.dump.read=0.15;"
    "taxonomy.save.write=0.1;taxonomy.save.rename=0.15;taxonomy.backup.rename="
    "0.2;taxonomy.load.read=0.15;snapshot.write=0.1;snapshot.fsync=0.1;"
    "snapshot.rename=0.15;snapshot.load.read=0.15;"
    "api.publish=0.3:limit=8;api.query=0.03";

// Generation `gen` of the evolving taxonomy: a marker entity whose single
// hypernym names the generation, plus a small entity population.
taxonomy::Taxonomy MakeGeneration(int gen) {
  taxonomy::Taxonomy t;
  t.AddIsa("marker", "gen" + std::to_string(gen), taxonomy::Source::kTag,
           0.9f);
  for (int i = 0; i < 4; ++i) {
    t.AddIsa("e" + std::to_string(i), "concept", taxonomy::Source::kInfobox,
             0.8f);
  }
  return t;
}

kb::EncyclopediaDump MakeDump(int gen) {
  kb::EncyclopediaDump dump;
  for (uint64_t i = 1; i <= 4; ++i) {
    kb::EncyclopediaPage page;
    page.page_id = i;
    page.name = "实体" + std::to_string(i) + "代" + std::to_string(gen);
    page.mention = page.name;
    page.abstract = page.name + "的摘要。";
    page.tags = {"概念"};
    dump.AddPage(std::move(page));
  }
  return dump;
}

// Parses "gen<k>" -> k; -1 when it is not a generation name.
int ParseGeneration(const std::string& name) {
  if (name.rfind("gen", 0) != 0) return -1;
  return std::atoi(name.c_str() + 3);
}

// A load outcome is acceptable iff it is a complete generation or a clean
// transient error. kDataLoss means a torn/corrupt file reached disk;
// kInvalidArgument means a structurally half-written one. Both break the
// atomic-write contract.
void ExpectCleanLoadStatus(const util::Status& status, const char* what) {
  EXPECT_NE(status.code(), util::StatusCode::kDataLoss)
      << what << " load saw a checksum-invalid file: " << status.ToString();
  EXPECT_NE(status.code(), util::StatusCode::kInvalidArgument)
      << what << " load saw a torn file: " << status.ToString();
}

class ChaosSoakTest : public ::testing::TestWithParam<int> {};

TEST_P(ChaosSoakTest, SurvivesFaultScheduleCoherently) {
  const int seed = GetParam();
  const std::string dir = ::testing::TempDir();
  const std::string taxonomy_path =
      dir + "/chaos_taxonomy_" + std::to_string(seed) + ".tsv";
  const std::string dump_path =
      dir + "/chaos_dump_" + std::to_string(seed) + ".tsv";
  const std::string snapshot_path =
      dir + "/chaos_snapshot_" + std::to_string(seed) + ".snap";
  std::remove(taxonomy_path.c_str());
  std::remove((taxonomy_path + ".bak").c_str());
  std::remove(dump_path.c_str());
  std::remove(snapshot_path.c_str());

  util::ScopedFaultInjection scoped(kChaosSpec,
                                    static_cast<uint64_t>(seed));

  // Serve generation 1 from the start; construction publishes it.
  // (ApiService::Publish retries through injected api.publish contention.)
  taxonomy::ApiService api(
      taxonomy::Taxonomy::Freeze(MakeGeneration(1)));
  taxonomy::ApiService::ServingLimits limits;
  limits.max_in_flight = 8;
  limits.deadline = std::chrono::microseconds(200000);
  api.SetServingLimits(limits);

  std::atomic<int> published_gen{1};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads_ok{0};

  // Reader threads: every successful answer must name exactly one published
  // generation, and generations never go backwards within a reader.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      int last_seen = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto concepts = api.TryGetConcept("marker");
        if (concepts.ok()) {
          ASSERT_EQ(concepts->size(), 1u)
              << "marker must resolve inside exactly one generation";
          const int gen = ParseGeneration((*concepts)[0]);
          ASSERT_GE(gen, 1);
          ASSERT_LE(gen, published_gen.load(std::memory_order_acquire));
          ASSERT_GE(gen, last_seen) << "served generation went backwards";
          last_seen = gen;
          reads_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          const util::StatusCode code = concepts.status().code();
          ASSERT_TRUE(code == util::StatusCode::kIoError ||
                      code == util::StatusCode::kResourceExhausted ||
                      code == util::StatusCode::kDeadlineExceeded)
              << "unexpected query failure: "
              << concepts.status().ToString();
        }
        (void)api.TryGetEntity("concept", 10);
      }
    });
  }

  int last_loadable_gen = 0;
  for (int gen = 1; gen <= kRounds; ++gen) {
    // Build + persist this generation. The durable save may exhaust its
    // retries under the fault schedule — that loses THIS generation's
    // write, never the previous file (checked by the load below).
    const taxonomy::Taxonomy generation = MakeGeneration(gen);
    const util::Status saved = util::Retry(util::RetryOptions{}, [&] {
      return taxonomy::SaveTaxonomyDurable(generation, taxonomy_path);
    });
    if (saved.ok()) last_loadable_gen = gen;

    auto loaded = util::RetryWithBackoff(util::RetryOptions{}, [&] {
      return taxonomy::LoadTaxonomyWithFallback(taxonomy_path).status();
    });
    if (last_loadable_gen > 0) {
      // Something complete is on disk (primary or .bak); the only excuse
      // for not loading it is injected read faults outlasting the retries.
      ExpectCleanLoadStatus(loaded.status, "taxonomy");
    }
    auto recovered = taxonomy::LoadTaxonomyWithFallback(taxonomy_path);
    if (recovered.ok()) {
      const taxonomy::NodeId marker = recovered->Find("marker");
      ASSERT_NE(marker, taxonomy::kInvalidNode);
      const auto& hypernyms = recovered->Hypernyms(marker);
      ASSERT_EQ(hypernyms.size(), 1u);
      const int on_disk_gen =
          ParseGeneration(recovered->Name(hypernyms[0].hyper));
      // Some complete generation 1..gen — current, a save-skipped round's
      // predecessor, or the .bak one behind it.
      ASSERT_GE(on_disk_gen, 1);
      ASSERT_LE(on_disk_gen, gen);
    }

    // Dump persistence under the same schedule.
    const kb::EncyclopediaDump dump = MakeDump(gen);
    const util::Status dump_saved = util::Retry(
        util::RetryOptions{}, [&] { return dump.Save(dump_path); });
    auto dump_loaded = kb::EncyclopediaDump::Load(dump_path);
    if (dump_loaded.ok()) {
      EXPECT_EQ(dump_loaded->size(), 4u);
    } else if (dump_saved.ok()) {
      ExpectCleanLoadStatus(dump_loaded.status(), "dump");
    }

    // Binary-snapshot persistence under the same schedule: the same
    // atomic-write contract holds for the mmap format. A round's write may
    // lose to injected faults, but whatever Load finds must be a complete
    // earlier snapshot (kIoError when none exists or reads are faulted) —
    // never a torn or checksum-invalid one.
    const taxonomy::Taxonomy snap_gen = MakeGeneration(gen);
    const util::Status snap_saved = util::Retry(util::RetryOptions{}, [&] {
      return taxonomy::WriteSnapshot(snap_gen, {}, snapshot_path);
    });
    int snap_loadable_gen = 0;
    std::shared_ptr<const taxonomy::Snapshot> snap_view;
    {
      auto snap_loaded = taxonomy::Snapshot::Load(snapshot_path);
      if (snap_loaded.ok()) {
        snap_view = *snap_loaded;
        const taxonomy::NodeId marker = snap_view->Find("marker");
        ASSERT_NE(marker, taxonomy::kInvalidNode);
        std::vector<std::string> hypers;
        snap_view->VisitHypernyms(
            marker, [&](const taxonomy::HalfEdge& edge) {
              hypers.emplace_back(snap_view->Name(edge.node));
              return true;
            });
        ASSERT_EQ(hypers.size(), 1u);
        snap_loadable_gen = ParseGeneration(hypers[0]);
        ASSERT_GE(snap_loadable_gen, 1);
        ASSERT_LE(snap_loadable_gen, gen);
      } else {
        ExpectCleanLoadStatus(snap_loaded.status(), "snapshot");
        if (snap_saved.ok()) {
          // A completed write is on disk; only faulted reads excuse a miss.
          EXPECT_EQ(snap_loaded.status().code(), util::StatusCode::kIoError)
              << snap_loaded.status().ToString();
        }
      }
    }

    // Publish the new generation while the readers run, alternating the
    // backend: odd rounds install a heap view, even rounds the mmap
    // snapshot just loaded (when its generation is current — a stale or
    // missing snapshot must not roll the served generation back). The
    // ceiling is advanced first: a reader must never observe a generation
    // above it, and raising it a moment early is safe while raising it
    // late is not.
    if (gen > 1) {
      published_gen.store(gen, std::memory_order_release);
      if (gen % 2 == 0 && snap_view && snap_loadable_gen == gen) {
        api.Publish(std::shared_ptr<const taxonomy::ServingView>(snap_view));
      } else {
        api.Publish(taxonomy::Taxonomy::Freeze(MakeGeneration(gen)), {});
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();

  // The soak must have actually served: shedding and faults degrade some
  // queries, never all of them.
  EXPECT_GT(reads_ok.load(), 0u);
  // And the schedule must have actually injected something, else the soak
  // proved nothing (probability of zero fires across all points over all
  // rounds is negligible for every seed).
  uint64_t total_fires = 0;
  for (const auto& [point, fires] : util::FaultInjector::Global().FireCounts()) {
    total_fires += fires;
  }
  EXPECT_GT(total_fires, 0u) << "fault schedule never fired for seed "
                             << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoakTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace cnpb
