// Deterministic fault injection (util/fault_injection.h) and the retry
// helper that consumes its transient errors (util/retry.h).
#include "util/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/retry.h"
#include "util/status.h"

namespace cnpb::util {
namespace {

TEST(FaultInjectorTest, DisarmedCheckIsOk) {
  ASSERT_FALSE(FaultsArmed());
  EXPECT_TRUE(CheckFault("kb.dump.read").ok());
  EXPECT_TRUE(CheckFault("anything.at.all").ok());
}

TEST(FaultInjectorTest, ParsesSpecGrammar) {
  ScopedFaultInjection scoped(
      "kb.dump.read=0.5;api.query=0.25:delay=1;api.publish=1:limit=2", 7);
  EXPECT_TRUE(FaultsArmed());
  EXPECT_EQ(FaultInjector::Global().spec(),
            "kb.dump.read=0.5;api.query=0.25:delay=1;api.publish=1:limit=2");
  EXPECT_EQ(FaultInjector::Global().seed(), 7u);
}

TEST(FaultInjectorTest, RejectsMalformedSpec) {
  EXPECT_FALSE(FaultInjector::Global().Configure("nonsense", 1).ok());
  EXPECT_FALSE(FaultInjector::Global().Configure("p=notanumber", 1).ok());
  EXPECT_FALSE(FaultInjector::Global().Configure("p=0.5:bogus=3", 1).ok());
  FaultInjector::Global().Clear();
  EXPECT_FALSE(FaultsArmed());
}

TEST(FaultInjectorTest, ProbabilityOneAlwaysFires) {
  ScopedFaultInjection scoped("always.fails=1", 1);
  for (int i = 0; i < 10; ++i) {
    const Status status = CheckFault("always.fails");
    EXPECT_EQ(status.code(), StatusCode::kIoError);
  }
  EXPECT_EQ(FaultInjector::Global().fires("always.fails"), 10u);
  // Unarmed points are unaffected.
  EXPECT_TRUE(CheckFault("other.point").ok());
  EXPECT_EQ(FaultInjector::Global().fires("other.point"), 0u);
}

TEST(FaultInjectorTest, SameSeedReplaysSameSchedule) {
  auto run = [](uint64_t seed) {
    ScopedFaultInjection scoped("flaky=0.5", seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!CheckFault("flaky").ok());
    return fired;
  };
  const std::vector<bool> a = run(42);
  const std::vector<bool> b = run(42);
  const std::vector<bool> c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-64 collision chance: a different seed differs
  // A 50% point over 64 trials fires a plausible number of times.
  const size_t fires = std::count(a.begin(), a.end(), true);
  EXPECT_GT(fires, 8u);
  EXPECT_LT(fires, 56u);
}

TEST(FaultInjectorTest, LimitDisarmsAfterMaxFires) {
  ScopedFaultInjection scoped("limited=1:limit=3", 9);
  int errors = 0;
  for (int i = 0; i < 10; ++i) {
    if (!CheckFault("limited").ok()) ++errors;
  }
  EXPECT_EQ(errors, 3);
  EXPECT_EQ(FaultInjector::Global().fires("limited"), 3u);
}

TEST(FaultInjectorTest, DelayFaultSleepsInsteadOfFailing) {
  ScopedFaultInjection scoped("slow=1:delay=1:limit=2", 5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(CheckFault("slow").ok());
  }
  EXPECT_EQ(FaultInjector::Global().fires("slow"), 2u);
}

TEST(FaultInjectorTest, ScopedInjectionRestoresPreviousConfig) {
  ASSERT_FALSE(FaultsArmed());
  {
    ScopedFaultInjection outer("outer.point=1", 3);
    EXPECT_FALSE(CheckFault("outer.point").ok());
    {
      ScopedFaultInjection inner("inner.point=1", 4);
      EXPECT_FALSE(CheckFault("inner.point").ok());
      EXPECT_TRUE(CheckFault("outer.point").ok());  // outer spec replaced
    }
    EXPECT_FALSE(CheckFault("outer.point").ok());  // outer spec restored
    EXPECT_TRUE(CheckFault("inner.point").ok());
  }
  EXPECT_FALSE(FaultsArmed());
}

TEST(FaultInjectorTest, FireCountsReportsAllPoints) {
  ScopedFaultInjection scoped("a=1;b=1", 2);
  (void)CheckFault("a");
  (void)CheckFault("a");
  (void)CheckFault("b");
  size_t a_fires = 0, b_fires = 0;
  for (const auto& [point, fires] : FaultInjector::Global().FireCounts()) {
    if (point == "a") a_fires = fires;
    if (point == "b") b_fires = fires;
  }
  EXPECT_EQ(a_fires, 2u);
  EXPECT_EQ(b_fires, 1u);
}

TEST(RetryTest, ReturnsImmediatelyOnSuccess) {
  int calls = 0;
  const RetryResult result = RetryWithBackoff(RetryOptions{}, [&] {
    ++calls;
    return Status::Ok();
  });
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, RetriesTransientErrorsUntilSuccess) {
  int calls = 0;
  RetryOptions options;
  options.initial_backoff = std::chrono::milliseconds(0);
  const RetryResult result = RetryWithBackoff(options, [&] {
    return ++calls < 3 ? IoError("transient") : Status::Ok();
  });
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.attempts, 3);
}

TEST(RetryTest, DoesNotRetryPermanentErrors) {
  int calls = 0;
  const RetryResult result = RetryWithBackoff(RetryOptions{}, [&] {
    ++calls;
    return DataLossError("checksum mismatch");
  });
  EXPECT_EQ(result.status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  int calls = 0;
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff = std::chrono::milliseconds(0);
  const Status status = Retry(options, [&] {
    ++calls;
    return ResourceExhaustedError("still overloaded");
  });
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(calls, 4);
}

TEST(RetryTest, RetryableCodesAreTheTransientTriple) {
  EXPECT_TRUE(IsRetryableError(IoError("x")));
  EXPECT_TRUE(IsRetryableError(ResourceExhaustedError("x")));
  EXPECT_TRUE(IsRetryableError(DeadlineExceededError("x")));
  EXPECT_FALSE(IsRetryableError(InvalidArgumentError("x")));
  EXPECT_FALSE(IsRetryableError(DataLossError("x")));
  EXPECT_FALSE(IsRetryableError(NotFoundError("x")));
}

TEST(RetryTest, RetryConsumesInjectedFaultsWithLimit) {
  // A fault point with limit=2 fails twice, then the retried operation
  // succeeds — the end-to-end contract the publish path relies on.
  ScopedFaultInjection scoped("op.under.test=1:limit=2", 11);
  RetryOptions options;
  options.initial_backoff = std::chrono::milliseconds(0);
  const RetryResult result = RetryWithBackoff(
      options, [] { return CheckFault("op.under.test"); });
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.attempts, 3);
}

TEST(RetryTest, BackoffGrowsFromZeroStart) {
  // Regression: initial_backoff == 0 used to stay 0 forever
  // (0 * multiplier == 0), so RetryWithBackoff hot-spun between attempts.
  // The schedule must clamp to >= 1ms and grow exponentially from there.
  RetryOptions options;
  options.initial_backoff = std::chrono::milliseconds(0);
  options.backoff_multiplier = 2.0;
  options.max_backoff = std::chrono::milliseconds(50);
  BackoffSequence backoff(options);
  EXPECT_EQ(backoff.Next(), std::chrono::milliseconds(1));
  EXPECT_EQ(backoff.Next(), std::chrono::milliseconds(2));
  EXPECT_EQ(backoff.Next(), std::chrono::milliseconds(4));
  EXPECT_EQ(backoff.Next(), std::chrono::milliseconds(8));
  EXPECT_EQ(backoff.Next(), std::chrono::milliseconds(16));
  EXPECT_EQ(backoff.Next(), std::chrono::milliseconds(32));
  EXPECT_EQ(backoff.Next(), std::chrono::milliseconds(50));  // capped
  EXPECT_EQ(backoff.Next(), std::chrono::milliseconds(50));  // stays capped
}

TEST(RetryTest, BackoffRespectsNonZeroStartAndCap) {
  RetryOptions options;
  options.initial_backoff = std::chrono::milliseconds(5);
  options.backoff_multiplier = 3.0;
  options.max_backoff = std::chrono::milliseconds(20);
  BackoffSequence backoff(options);
  EXPECT_EQ(backoff.Next(), std::chrono::milliseconds(5));
  EXPECT_EQ(backoff.Next(), std::chrono::milliseconds(15));
  EXPECT_EQ(backoff.Next(), std::chrono::milliseconds(20));  // 45 capped
  EXPECT_EQ(backoff.Next(), std::chrono::milliseconds(20));
}

TEST(RetryTest, ZeroInitialBackoffActuallySleeps) {
  // The wall-clock half of the regression: 4 attempts from a zero start
  // must sleep 1 + 2 + 4 = 7ms between attempts. The old hot-spin code
  // finished in microseconds; allow generous slop above the 7ms floor but
  // assert a hard lower bound.
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff = std::chrono::milliseconds(0);
  const auto start = std::chrono::steady_clock::now();
  const RetryResult result = RetryWithBackoff(
      options, [] { return IoError("transient"); });
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(result.attempts, 4);
  EXPECT_GE(elapsed, std::chrono::milliseconds(6));
}

}  // namespace
}  // namespace cnpb::util
