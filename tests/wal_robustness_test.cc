// Corruption corpus for WAL replay (DESIGN.md §13): every way a log can be
// damaged on disk — truncation at every byte boundary, flipped payload and
// CRC bytes, garbage tails, zero-byte files, oversized length prefixes,
// nonzero reserved fields, mismatched segment headers, corrupt cursors —
// must resolve to the documented contract and never to a crash, a silent
// skip, or an out-of-bounds read (the asan CI job holds the scanner to
// that). The contract under test:
//
//   last segment    invalid bytes are a torn tail: replay ends cleanly
//                   there with every record before the tear delivered;
//   sealed segment  invalid bytes are corruption: kDataLoss, because an
//                   fsync already covered them;
//   cursor          anything but a checksummed, well-formed file is
//                   kDataLoss — recovery must not guess a replay boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "ingest/wal.h"
#include "util/status.h"

namespace cnpb {
namespace {

constexpr size_t kSegmentHeaderBytes = 16;
constexpr size_t kRecordHeaderBytes = 20;

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A fresh WAL directory holding `records` delete-op records (fixed-size
// payloads so corpus offsets are predictable) in a single segment.
// Returns the directory; `*segment_path` names the one segment.
std::string BuildLog(const std::string& name, int records,
                     std::string* segment_path) {
  const std::string dir = ::testing::TempDir() + "/wal_corpus_" + name;
  auto old = ingest::ListWalSegments(dir);
  if (old.ok()) {
    for (const auto& segment : *old) std::remove(segment.path.c_str());
  }
  std::remove((dir + "/wal.cursor").c_str());
  auto writer = ingest::WalWriter::Open(dir);
  EXPECT_TRUE(writer.ok());
  for (int i = 0; i < records; ++i) {
    EXPECT_TRUE(
        (*writer)
            ->Append(ingest::WalOp::kDelete, 1, "entity_" + std::to_string(i))
            .ok());
  }
  EXPECT_TRUE((*writer)->Sync().ok());
  auto segments = ingest::ListWalSegments(dir);
  EXPECT_TRUE(segments.ok());
  EXPECT_EQ(segments->size(), 1u);
  *segment_path = (*segments)[0].path;
  return dir;
}

struct ReplayOutcome {
  util::Status status = util::Status::Ok();
  std::vector<uint64_t> lsns;
  ingest::WalReplayReport report;
};

ReplayOutcome Replay(const std::string& dir) {
  ReplayOutcome out;
  out.status = ingest::ReplayWal(dir, 0,
                                 [&](const ingest::WalRecord& r) {
                                   out.lsns.push_back(r.lsn);
                                   return util::Status::Ok();
                                 },
                                 &out.report);
  return out;
}

// Complete records representable in a prefix of `bytes` truncated at
// `cut`: record i (0-based) survives iff its full frame fits.
size_t CompleteRecords(size_t cut, const std::vector<size_t>& frame_ends) {
  size_t n = 0;
  for (size_t end : frame_ends) {
    if (end <= cut) ++n;
  }
  return n;
}

// Frame end offsets of each record in a segment image.
std::vector<size_t> FrameEnds(const std::string& bytes) {
  std::vector<size_t> ends;
  size_t offset = kSegmentHeaderBytes;
  while (offset + kRecordHeaderBytes <= bytes.size()) {
    uint32_t len = 0;
    std::memcpy(&len, bytes.data() + offset, sizeof(len));
    offset += kRecordHeaderBytes + len;
    if (offset > bytes.size()) break;
    ends.push_back(offset);
  }
  return ends;
}

TEST(WalTornTailTest, TruncationAtEveryByteIsACleanTear) {
  std::string segment_path;
  const std::string dir = BuildLog("truncate", 4, &segment_path);
  const std::string intact = ReadBytes(segment_path);
  const std::vector<size_t> ends = FrameEnds(intact);
  ASSERT_EQ(ends.size(), 4u);

  for (size_t cut = 0; cut < intact.size(); ++cut) {
    WriteBytes(segment_path, intact.substr(0, cut));
    const ReplayOutcome out = Replay(dir);
    ASSERT_TRUE(out.status.ok())
        << "cut at " << cut << ": " << out.status.ToString();
    const size_t expect = CompleteRecords(cut, ends);
    ASSERT_EQ(out.lsns.size(), expect) << "cut at " << cut;
    for (size_t i = 0; i < out.lsns.size(); ++i) {
      ASSERT_EQ(out.lsns[i], i + 1) << "cut at " << cut;
    }
    // A cut below the full segment either tears mid-record or lands on a
    // record boundary (clean EOF, incl. cut == last frame end with no
    // trailing bytes) — both end the scan with the surviving prefix.
    if (cut < kSegmentHeaderBytes ||
        (expect < ends.size() && cut != (expect ? ends[expect - 1] : 0) &&
         cut > kSegmentHeaderBytes)) {
      EXPECT_TRUE(out.report.torn_tail) << "cut at " << cut;
    }
  }
  WriteBytes(segment_path, intact);
  EXPECT_EQ(Replay(dir).lsns.size(), 4u);
}

TEST(WalTornTailTest, FlippedByteInLastSegmentTearsNeverSkips) {
  std::string segment_path;
  const std::string dir = BuildLog("flip_last", 3, &segment_path);
  const std::string intact = ReadBytes(segment_path);
  const std::vector<size_t> ends = FrameEnds(intact);

  // Flip every byte past the segment header, one at a time. Each flip must
  // produce either the full log (flip in a later record's frame cannot
  // resurrect earlier ones — impossible here) or a clean tear at the record
  // containing the flip: a contiguous LSN prefix, never a gap.
  for (size_t pos = kSegmentHeaderBytes; pos < intact.size(); ++pos) {
    std::string mutated = intact;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    WriteBytes(segment_path, mutated);
    const ReplayOutcome out = Replay(dir);
    ASSERT_TRUE(out.status.ok())
        << "flip at " << pos << ": " << out.status.ToString();
    for (size_t i = 0; i < out.lsns.size(); ++i) {
      ASSERT_EQ(out.lsns[i], i + 1) << "flip at " << pos << " skipped a record";
    }
    // The record containing the flipped byte can never be delivered.
    size_t record_of_pos = 0;
    while (record_of_pos < ends.size() && ends[record_of_pos] <= pos) {
      ++record_of_pos;
    }
    EXPECT_LE(out.lsns.size(), record_of_pos) << "flip at " << pos;
  }
  WriteBytes(segment_path, intact);
}

TEST(WalSealedTest, FlippedByteInSealedSegmentIsDataLoss) {
  const std::string dir = ::testing::TempDir() + "/wal_corpus_sealed";
  auto old = ingest::ListWalSegments(dir);
  if (old.ok()) {
    for (const auto& segment : *old) std::remove(segment.path.c_str());
  }
  ingest::WalOptions options;
  options.segment_bytes = 64;  // every Sync rotates
  auto writer = ingest::WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        (*writer)
            ->Append(ingest::WalOp::kDelete, 1, "entity_" + std::to_string(i))
            .ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto segments = ingest::ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_GE(segments->size(), 3u);
  const std::string sealed_path = (*segments)[0].path;
  const std::string intact = ReadBytes(sealed_path);

  // Corrupt record bytes in a sealed segment: an fsync covered these, so
  // damage is real data loss — every flavour must refuse, not tear.
  for (size_t pos = kSegmentHeaderBytes; pos < intact.size(); ++pos) {
    std::string mutated = intact;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    WriteBytes(sealed_path, mutated);
    const ReplayOutcome out = Replay(dir);
    ASSERT_FALSE(out.status.ok()) << "flip at " << pos << " replayed";
    EXPECT_EQ(out.status.code(), util::StatusCode::kDataLoss)
        << "flip at " << pos;
  }
  // Truncation of a sealed segment likewise.
  for (size_t cut : {size_t{0}, kSegmentHeaderBytes - 1,
                     kSegmentHeaderBytes + 3, intact.size() - 1}) {
    WriteBytes(sealed_path, intact.substr(0, cut));
    EXPECT_EQ(Replay(dir).status.code(), util::StatusCode::kDataLoss)
        << "cut at " << cut;
  }
  WriteBytes(sealed_path, intact);
  EXPECT_TRUE(Replay(dir).status.ok());
}

TEST(WalTornTailTest, GarbageTailIsDiscarded) {
  std::string segment_path;
  const std::string dir = BuildLog("garbage", 3, &segment_path);
  const std::string intact = ReadBytes(segment_path);

  for (const std::string& tail :
       {std::string(1, '\x7f'), std::string(7, '\0'), std::string(64, 'Z'),
        std::string("\xff\xff\xff\xff garbage")}) {
    WriteBytes(segment_path, intact + tail);
    const ReplayOutcome out = Replay(dir);
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
    EXPECT_EQ(out.lsns.size(), 3u);
    EXPECT_TRUE(out.report.torn_tail);
    EXPECT_EQ(out.report.torn_bytes, tail.size());
  }
}

TEST(WalTornTailTest, OversizedLengthPrefixIsBoundedNotAllocated) {
  std::string segment_path;
  const std::string dir = BuildLog("oversized", 2, &segment_path);
  std::string bytes = ReadBytes(segment_path);
  // Append a frame whose length prefix claims ~4 GiB: replay must treat it
  // as framing garbage (a torn length), not attempt the allocation.
  std::string frame(kRecordHeaderBytes, '\0');
  const uint32_t huge = 0xfffffff0u;
  std::memcpy(frame.data(), &huge, sizeof(huge));
  WriteBytes(segment_path, bytes + frame);

  const ReplayOutcome out = Replay(dir);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_EQ(out.lsns.size(), 2u);
  EXPECT_TRUE(out.report.torn_tail);
}

TEST(WalTornTailTest, NonzeroReservedFieldInvalidatesRecord) {
  std::string segment_path;
  const std::string dir = BuildLog("reserved", 2, &segment_path);
  std::string bytes = ReadBytes(segment_path);
  const std::vector<size_t> ends = FrameEnds(bytes);
  ASSERT_EQ(ends.size(), 2u);
  // Set the reserved u16 of the second record; the CRC covers it, so this
  // also exercises crc-validated-but-malformed handling if recomputed.
  const size_t second_start = ends[0];
  bytes[second_start + 18] = 1;
  WriteBytes(segment_path, bytes);

  const ReplayOutcome out = Replay(dir);
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.lsns.size(), 1u);
  EXPECT_TRUE(out.report.torn_tail);
}

TEST(WalTornTailTest, ZeroByteAndHeaderOnlySegments) {
  std::string segment_path;
  const std::string dir = BuildLog("empty", 2, &segment_path);
  const std::string intact = ReadBytes(segment_path);

  // Zero-byte last segment: a crash between open and the header write.
  WriteBytes(segment_path, "");
  ReplayOutcome out = Replay(dir);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_EQ(out.lsns.size(), 0u);
  EXPECT_TRUE(out.report.torn_tail);

  // Header-only segment: a crash right after rotation. Valid and empty.
  WriteBytes(segment_path, intact.substr(0, kSegmentHeaderBytes));
  out = Replay(dir);
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.lsns.size(), 0u);
  EXPECT_FALSE(out.report.torn_tail);
  WriteBytes(segment_path, intact);
}

TEST(WalTornTailTest, ReopenTruncatesTearBeforeSealingTheSegment) {
  std::string segment_path;
  const std::string dir = BuildLog("reseal", 3, &segment_path);
  const std::string intact = ReadBytes(segment_path);

  // A torn tail from a crash mid-append.
  WriteBytes(segment_path, intact + std::string(48, '\xbe'));

  // First recovery boot: Open must cut the tear off before creating the
  // fresh segment that demotes this one to sealed. Without the cut, a
  // second crash before compaction leaves the tear inside a sealed segment
  // and every later boot fails kDataLoss — a crash-loop bricks recovery.
  {
    auto writer = ingest::WalWriter::Open(dir);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_EQ((*writer)->next_lsn(), 4u);
    auto lsn = (*writer)->Append(ingest::WalOp::kDelete, 1, "after_tear");
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, 4u);
    ASSERT_TRUE((*writer)->Sync().ok());
    (*writer)->SimulateCrash();  // second crash, cursor never advanced
  }

  // Second recovery boot: the demoted segment now scans as sealed and must
  // be clean — all three pre-tear records plus the post-recovery one.
  const ReplayOutcome out = Replay(dir);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_EQ(out.lsns, (std::vector<uint64_t>{1, 2, 3, 4}));
  auto reopened = ingest::WalWriter::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->next_lsn(), 5u);
}

TEST(WalTornTailTest, CrashLoopOverTornHeaderNeverBricksRecovery) {
  std::string segment_path;
  const std::string dir = BuildLog("reseal_header", 2, &segment_path);
  const std::string intact = ReadBytes(segment_path);

  // Tear inside the segment header itself (crash between open and the
  // header fsync), then crash-loop through several boots: every boot must
  // recover, and no boot may strand an unscannable sealed segment.
  WriteBytes(segment_path, intact.substr(0, kSegmentHeaderBytes / 2));
  for (int boot = 0; boot < 3; ++boot) {
    const ReplayOutcome out = Replay(dir);
    ASSERT_TRUE(out.status.ok())
        << "boot " << boot << ": " << out.status.ToString();
    auto writer = ingest::WalWriter::Open(dir);
    ASSERT_TRUE(writer.ok()) << "boot " << boot << ": "
                             << writer.status().ToString();
    (*writer)->SimulateCrash();
  }
}

TEST(WalSealedTest, HeaderNameLsnMismatchIsAlwaysDataLoss) {
  std::string segment_path;
  const std::string dir = BuildLog("mismatch", 2, &segment_path);
  std::string bytes = ReadBytes(segment_path);
  // The header claims first_lsn 99 but the filename says 1: a renamed or
  // cross-wired file. Even in the last segment this is never a torn tail —
  // the bytes are internally consistent, just from the wrong place.
  const uint64_t wrong = 99;
  std::memcpy(bytes.data() + 8, &wrong, sizeof(wrong));
  WriteBytes(segment_path, bytes);

  const ReplayOutcome out = Replay(dir);
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), util::StatusCode::kDataLoss);
}

TEST(WalCursorRobustnessTest, CorruptCursorIsDataLossNeverAGuess) {
  const std::string dir = ::testing::TempDir() + "/wal_corpus_cursor";
  ASSERT_TRUE(ingest::EnsureDir(dir).ok());
  const std::string cursor_path = dir + "/wal.cursor";

  ingest::IngestCursor cursor;
  cursor.applied_lsn = 17;
  cursor.generation = 3;
  cursor.checkpoint_file = "checkpoint-17.pages.tsv";
  cursor.snapshot_file = "checkpoint-17.snap";
  ASSERT_TRUE(ingest::SaveCursor(dir, cursor).ok());
  const std::string intact = ReadBytes(cursor_path);
  ASSERT_FALSE(intact.empty());

  // Flip every byte.
  for (size_t pos = 0; pos < intact.size(); ++pos) {
    std::string mutated = intact;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    WriteBytes(cursor_path, mutated);
    auto loaded = ingest::LoadCursor(dir);
    ASSERT_FALSE(loaded.ok()) << "flip at " << pos << " loaded";
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss)
        << "flip at " << pos;
  }
  // Truncate at every byte.
  for (size_t cut = 0; cut < intact.size(); ++cut) {
    WriteBytes(cursor_path, intact.substr(0, cut));
    auto loaded = ingest::LoadCursor(dir);
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut << " loaded";
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss)
        << "cut at " << cut;
  }
  // Plausible-but-wrong shapes.
  for (const std::string& body :
       {std::string("17\t3\n"), std::string("not\ta\tcursor\tat all\n"),
        std::string("18446744073709551616\t0\tx\ty\n"),  // lsn overflow
        std::string(1024, 'A')}) {
    WriteBytes(cursor_path, body);
    auto loaded = ingest::LoadCursor(dir);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss);
  }

  WriteBytes(cursor_path, intact);
  auto restored = ingest::LoadCursor(dir);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->applied_lsn, 17u);
}

}  // namespace
}  // namespace cnpb
