// Graceful degradation of taxonomy::ApiService under overload and injected
// faults: in-flight shedding, per-query deadlines, degraded legacy
// wrappers, and publish retry (DESIGN.md §8).
#include "taxonomy/api_service.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "taxonomy/taxonomy.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace cnpb::taxonomy {
namespace {

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().counter(name)->value();
}

Taxonomy MakeTaxonomy() {
  Taxonomy t;
  for (int i = 0; i < 8; ++i) {
    t.AddIsa("e" + std::to_string(i), "concept" + std::to_string(i % 2),
             Source::kTag, 0.9f);
  }
  return t;
}

TEST(ApiOverloadTest, NoLimitsMeansNoShedding) {
  const Taxonomy taxonomy = MakeTaxonomy();
  ApiService api(&taxonomy);
  api.RegisterMention("m", taxonomy.Find("e0"));
  const ApiService::ServingLimits defaults = api.serving_limits();
  EXPECT_EQ(defaults.max_in_flight, 0u);
  EXPECT_EQ(defaults.deadline.count(), 0);

  auto entities = api.TryMen2Ent("m");
  ASSERT_TRUE(entities.ok());
  EXPECT_EQ(entities->size(), 1u);
  auto concepts = api.TryGetConcept("e0");
  ASSERT_TRUE(concepts.ok());
  EXPECT_EQ(concepts->size(), 1u);
  auto hyponyms = api.TryGetEntity("concept0");
  ASSERT_TRUE(hyponyms.ok());
  EXPECT_EQ(hyponyms->size(), 4u);
}

TEST(ApiOverloadTest, InFlightCapShedsConcurrentQueries) {
  const Taxonomy taxonomy = MakeTaxonomy();
  ApiService api(&taxonomy);
  ApiService::ServingLimits limits;
  limits.max_in_flight = 1;
  api.SetServingLimits(limits);
  EXPECT_EQ(api.serving_limits().max_in_flight, 1u);

  // Make every admitted query hold its in-flight slot for ~2ms so that two
  // threads querying in lockstep must collide on the single slot.
  util::ScopedFaultInjection scoped("api.query=1:delay=2", 3);
  const uint64_t shed_before = CounterValue("api.shed");
  std::atomic<int> resource_exhausted{0};
  std::atomic<int> ok{0};
  constexpr int kPerThread = 25;
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto result = api.TryGetEntity("concept0");
        if (result.ok()) {
          ++ok;
        } else if (result.status().code() ==
                   util::StatusCode::kResourceExhausted) {
          ++resource_exhausted;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  // Both outcomes occur: some queries won the slot, overlapping ones shed.
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(resource_exhausted.load(), 0);
  EXPECT_GE(CounterValue("api.shed") - shed_before,
            static_cast<uint64_t>(resource_exhausted.load()));

  // The gauge drains: with the limit still armed, a lone query is admitted.
  EXPECT_TRUE(api.TryGetEntity("concept0").ok());
}

TEST(ApiOverloadTest, DeadlineExceededWhenQueryRunsLong) {
  const Taxonomy taxonomy = MakeTaxonomy();
  ApiService api(&taxonomy);
  ApiService::ServingLimits limits;
  limits.deadline = std::chrono::microseconds(500);
  api.SetServingLimits(limits);

  // An injected 5ms stall makes every query overshoot the 0.5ms budget.
  util::ScopedFaultInjection scoped("api.query=1:delay=5", 3);
  const uint64_t exceeded_before = CounterValue("api.deadline_exceeded");
  auto result = api.TryGetConcept("e0");
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_GT(CounterValue("api.deadline_exceeded"), exceeded_before);

  // Without the stall the same budget is ample.
  util::FaultInjector::Global().Clear();
  EXPECT_TRUE(api.TryGetConcept("e0").ok());
}

TEST(ApiOverloadTest, LegacyApisDegradeToEmptyAndCount) {
  const Taxonomy taxonomy = MakeTaxonomy();
  ApiService api(&taxonomy);
  api.RegisterMention("m", taxonomy.Find("e0"));

  util::ScopedFaultInjection scoped("api.query=1", 3);
  const uint64_t degraded_before = CounterValue("api.degraded");
  EXPECT_TRUE(api.Men2Ent("m").empty());
  EXPECT_TRUE(api.GetConcept("e0").empty());
  EXPECT_TRUE(api.GetEntity("concept0").empty());
  EXPECT_EQ(CounterValue("api.degraded") - degraded_before, 3u);

  // The Try variants surface the injected error instead of masking it.
  EXPECT_EQ(api.TryMen2Ent("m").status().code(), util::StatusCode::kIoError);
}

TEST(ApiOverloadTest, PublishRetriesThroughInjectedContention) {
  auto frozen = Taxonomy::Freeze(MakeTaxonomy());
  ApiService api(frozen);

  // TryPublish is single-shot: it reports the contention.
  {
    util::ScopedFaultInjection scoped("api.publish=1:limit=1", 5);
    auto attempt = api.TryPublish(frozen, {});
    EXPECT_EQ(attempt.status().code(),
              util::StatusCode::kResourceExhausted);
  }

  // Publish retries through a bounded burst of failures and lands the
  // version; the retries are visible in the counter.
  const uint64_t retries_before = CounterValue("api.publish.retries");
  const uint64_t version_before = api.version();
  {
    util::ScopedFaultInjection scoped("api.publish=1:limit=3", 5);
    const uint64_t version = api.Publish(frozen, {});
    EXPECT_EQ(version, version_before + 1);
  }
  EXPECT_EQ(CounterValue("api.publish.retries") - retries_before, 3u);
  EXPECT_TRUE(api.TryGetEntity("concept0").ok());
}

TEST(ApiOverloadTest, LimitsCanBeClearedLive) {
  const Taxonomy taxonomy = MakeTaxonomy();
  ApiService api(&taxonomy);
  ApiService::ServingLimits limits;
  limits.max_in_flight = 4;
  limits.deadline = std::chrono::microseconds(100000);
  api.SetServingLimits(limits);
  EXPECT_TRUE(api.TryGetConcept("e0").ok());
  api.SetServingLimits(ApiService::ServingLimits{});
  EXPECT_EQ(api.serving_limits().max_in_flight, 0u);
  EXPECT_EQ(api.serving_limits().deadline.count(), 0);
  EXPECT_TRUE(api.TryGetConcept("e0").ok());
}

}  // namespace
}  // namespace cnpb::taxonomy
