// Chaos soak for the HTTP serving layer (run under the tsan preset in CI):
// across 20 deterministic fault seeds, concurrent keep-alive clients hammer
// the endpoints while faults fire on accept/read/write and inside the query
// path, and a publisher installs new taxonomy versions mid-run. The
// contract: every byte the server emits is valid HTTP with a status from
// the documented set, the version stamp each client observes never goes
// backwards (publishes are monotonic and queries answer from one coherent
// snapshot), resolved entity names always match the mention asked, and no
// seed crashes or wedges the process.
#include "server/server.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/http.h"
#include "server/service.h"
#include "taxonomy/api_service.h"
#include "taxonomy/taxonomy.h"
#include "util/fault_injection.h"

namespace cnpb::server {
namespace {

using taxonomy::ApiService;
using taxonomy::Taxonomy;

constexpr size_t kBaseEntities = 24;

// Version `round` of the taxonomy: the stable base entities plus `round`
// waves of extra pages — base names resolve identically in every version.
std::shared_ptr<const Taxonomy> MakeVersion(size_t round) {
  Taxonomy t;
  for (size_t i = 0; i < kBaseEntities; ++i) {
    t.AddIsa("e" + std::to_string(i), "anchor", taxonomy::Source::kTag,
             0.9f);
  }
  for (size_t k = 0; k < round; ++k) {
    for (size_t i = 0; i < 8; ++i) {
      t.AddIsa("wave" + std::to_string(k) + "_" + std::to_string(i),
               "anchor", taxonomy::Source::kTag, 0.5f);
    }
  }
  return Taxonomy::Freeze(std::move(t));
}

ApiService::MentionIndex MakeIndex(const Taxonomy& t) {
  ApiService::MentionIndex index;
  for (size_t i = 0; i < kBaseEntities; ++i) {
    const std::string name = "e" + std::to_string(i);
    index["m" + std::to_string(i)] = {t.Find(name)};
  }
  return index;
}

// Pulls the "version":N stamp out of a JSON response body; 0 if absent.
uint64_t ParseVersion(const std::string& body) {
  const size_t at = body.find("\"version\":");
  if (at == std::string::npos) return 0;
  return std::strtoull(body.c_str() + at + 10, nullptr, 10);
}

bool IsDocumentedStatus(int status) {
  switch (status) {
    case 200: case 400: case 404: case 405: case 413: case 429:
    case 431: case 503: case 504:
      return true;
    default:
      return false;
  }
}

TEST(ServerConcurrencyTest, ChaosSeedsServeCoherentVersions) {
  constexpr int kSeeds = 20;
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 60;

  for (int seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    util::ScopedFaultInjection scoped(
        "server.accept=0.03;server.read=0.05;server.write=0.05;"
        "api.query=0.03:delay=1",
        static_cast<uint64_t>(seed));

    auto base = MakeVersion(0);
    ApiService api(base, MakeIndex(*base));
    ApiEndpoints endpoints(&api);
    HttpServer::Config config;
    config.num_threads = 2;
    HttpServer httpd(config, endpoints.AsHandler());
    ASSERT_TRUE(httpd.Start().ok());

    // Publisher: three mid-run version bumps while clients are querying.
    std::thread publisher([&] {
      for (size_t round = 1; round <= 3; ++round) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        auto next = MakeVersion(round);
        ApiService::MentionIndex index = MakeIndex(*next);
        api.Publish(std::move(next), std::move(index));
      }
    });

    std::atomic<int> responses{0};
    std::atomic<int> reconnects{0};
    std::atomic<bool> failed{false};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        HttpClient client;
        uint64_t last_version = 0;
        for (int i = 0; i < kRequestsPerClient && !failed.load(); ++i) {
          if (!client.connected()) {
            if (!client.Connect("127.0.0.1", httpd.port()).ok()) {
              ++reconnects;
              continue;
            }
          }
          const int which = (c + i) % 4;
          const size_t id = static_cast<size_t>(c * 7 + i) % kBaseEntities;
          std::string target;
          if (which == 0) {
            target = "/v1/men2ent?mention=m" + std::to_string(id);
          } else if (which == 1) {
            target = "/v1/getConcept?entity=e" + std::to_string(id);
          } else if (which == 2) {
            target = "/v1/getEntity?concept=anchor&limit=5";
          } else {
            target = "/healthz";
          }
          auto response = client.Get(target);
          if (!response.ok()) {
            // Injected socket fault killed the connection; reconnect and
            // keep going — that's the client-visible face of chaos.
            ++reconnects;
            continue;
          }
          ++responses;
          if (!IsDocumentedStatus(response->status)) {
            ADD_FAILURE() << "undocumented status " << response->status
                          << " for " << target;
            failed.store(true);
            break;
          }
          if (response->status != 200) continue;
          const uint64_t version = ParseVersion(response->body);
          if (version > 0) {
            // Monotonic versions: a client can see a newer snapshot, never
            // an older one, even while publishes land mid-run.
            if (version < last_version) {
              ADD_FAILURE() << "version went backwards: " << last_version
                            << " -> " << version << " for " << target;
              failed.store(true);
              break;
            }
            last_version = version;
          }
          if (which == 0) {
            // Name resolution is coherent: the ids were resolved against
            // the same pinned snapshot that produced them.
            const std::string expected =
                "\"e" + std::to_string(id) + "\"";
            if (response->body.find(expected) == std::string::npos) {
              ADD_FAILURE() << "men2ent body lost its entity: "
                            << response->body;
              failed.store(true);
              break;
            }
          }
        }
      });
    }
    for (auto& client : clients) client.join();
    publisher.join();
    httpd.Stop();
    httpd.Wait();
    ASSERT_FALSE(failed.load());
    // Chaos must not starve the workload: most requests still get answers.
    EXPECT_GT(responses.load(), kClients * kRequestsPerClient / 4)
        << "only " << responses.load() << " responses, "
        << reconnects.load() << " reconnects";
    EXPECT_EQ(api.version(), 4u);
  }
}

// Drain under load: Stop() while clients are mid-flight must finish
// cleanly — every client either gets its response or a clean connection
// close, and Wait() returns within the drain deadline.
TEST(ServerConcurrencyTest, StopUnderLoadDrainsCleanly) {
  auto base = MakeVersion(0);
  ApiService api(base, MakeIndex(*base));
  ApiEndpoints endpoints(&api);
  HttpServer::Config config;
  config.num_threads = 2;
  config.drain_deadline = std::chrono::milliseconds(500);
  HttpServer httpd(config, endpoints.AsHandler());
  ASSERT_TRUE(httpd.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      HttpClient client;
      while (!stop.load()) {
        if (!client.connected() &&
            !client.Connect("127.0.0.1", httpd.port()).ok()) {
          break;  // listener closed — drain has begun
        }
        auto response = client.Get("/v1/getEntity?concept=anchor");
        if (!response.ok()) {
          client.Close();
          continue;
        }
        if (response->status == 200) ++answered;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto drain_start = std::chrono::steady_clock::now();
  httpd.Stop();
  httpd.Wait();
  const auto drain_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    drain_start)
          .count();
  stop.store(true);
  for (auto& client : clients) client.join();
  EXPECT_GT(answered.load(), 0);
  EXPECT_LT(drain_seconds, 2.0);
  EXPECT_FALSE(httpd.running());
}

}  // namespace
}  // namespace cnpb::server
