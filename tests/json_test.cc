#include "util/json.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace cnpb::util {
namespace {

TEST(JsonStringTest, PlainAsciiPassesThrough) {
  EXPECT_EQ(JsonString("hello"), "\"hello\"");
  EXPECT_EQ(JsonString(""), "\"\"");
  EXPECT_EQ(JsonString("a b c"), "\"a b c\"");
}

TEST(JsonStringTest, QuotesAndBackslashesEscaped) {
  EXPECT_EQ(JsonString("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(JsonString("C:\\path"), "\"C:\\\\path\"");
}

TEST(JsonStringTest, CommonControlCharsUseShortEscapes) {
  EXPECT_EQ(JsonString("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(JsonString("a\tb"), "\"a\\tb\"");
  EXPECT_EQ(JsonString("a\rb"), "\"a\\rb\"");
}

TEST(JsonStringTest, RemainingControlCharsUseUnicodeEscapes) {
  EXPECT_EQ(JsonString(std::string_view("\x00", 1)), "\"\\u0000\"");
  EXPECT_EQ(JsonString("\x01"), "\"\\u0001\"");
  EXPECT_EQ(JsonString("\x1f"), "\"\\u001f\"");
  // 0x20 (space) and above are literal.
  EXPECT_EQ(JsonString(" "), "\" \"");
  EXPECT_EQ(JsonString("\x7f"), "\"\x7f\"");  // DEL is not a C0 control
}

TEST(JsonStringTest, Utf8MultibytePassesThroughByteForByte) {
  // 诸葛亮 (3-byte sequences) and 😀 (4-byte sequence) must survive
  // unmodified — JSON strings carry raw UTF-8.
  EXPECT_EQ(JsonString("诸葛亮"), "\"诸葛亮\"");
  EXPECT_EQ(JsonString("😀"), "\"😀\"");
  EXPECT_EQ(JsonString("中文/english mix"), "\"中文/english mix\"");
}

TEST(JsonStringTest, MixedEscapesAndUtf8) {
  EXPECT_EQ(JsonString("刘备\n\"主公\""), "\"刘备\\n\\\"主公\\\"\"");
}

TEST(JsonNumberTest, FiniteValues) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(-2.25), "-2.25");
  EXPECT_EQ(JsonNumber(1e100), "1e+100");
}

TEST(JsonNumberTest, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonUIntTest, NoPrecisionLoss) {
  EXPECT_EQ(JsonUInt(0), "0");
  EXPECT_EQ(JsonUInt(1234567890123456789ULL), "1234567890123456789");
  EXPECT_EQ(JsonUInt(UINT64_MAX), "18446744073709551615");
}

}  // namespace
}  // namespace cnpb::util
