// Snapshot format round trips (DESIGN.md §10): write -> load -> write is
// byte-identical, serialization is invariant under CNPB_THREADS, and a
// snapshot-backed ApiService answers every query identically to the
// TSV-backed service it was written from — over every mention and every
// node, not a sample.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/builder.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "taxonomy/api_service.h"
#include "taxonomy/serialize.h"
#include "taxonomy/snapshot.h"
#include "taxonomy/taxonomy.h"
#include "taxonomy/view.h"
#include "text/segmenter.h"
#include "util/atomic_file.h"
#include "util/parallel.h"
#include "util/snapshot.h"

namespace cnpb {
namespace {

struct BuiltWorld {
  kb::EncyclopediaDump dump;
  taxonomy::Taxonomy taxonomy;
};

BuiltWorld BuildWorld(uint64_t seed = 7, size_t entities = 400) {
  synth::WorldModel::Config wc;
  wc.num_entities = entities;
  wc.seed = seed;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  synth::EncyclopediaGenerator::Config gc;
  gc.seed = seed + 1;
  auto output = synth::EncyclopediaGenerator::Generate(world, gc);
  text::Segmenter segmenter(&world.lexicon());
  synth::CorpusGenerator::Config cc;
  cc.seed = seed + 2;
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, cc);
  std::vector<std::vector<std::string>> corpus_words;
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    corpus_words.push_back(std::move(words));
  }
  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 1;
  config.neural.max_train_samples = 300;
  core::CnProbaseBuilder::Report report;
  taxonomy::Taxonomy taxonomy = core::CnProbaseBuilder::Build(
      output.dump, world.lexicon(), corpus_words, config, &report);
  return BuiltWorld{std::move(output.dump), std::move(taxonomy)};
}

// The built world is immutable and expensive; share one across tests.
const BuiltWorld& SharedWorld() {
  static const BuiltWorld* world = new BuiltWorld(BuildWorld());
  return *world;
}

// Borrows the world's taxonomy (it outlives every test) and pairs it with a
// freshly built mention index.
std::shared_ptr<const taxonomy::HeapServingView> HeapViewOf(
    const BuiltWorld& world) {
  return std::make_shared<taxonomy::HeapServingView>(
      util::UnownedSnapshot(&world.taxonomy),
      core::CnProbaseBuilder::BuildMentionIndex(world.dump, world.taxonomy));
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SnapshotTest, WriteLoadRewriteIsByteIdentical) {
  const BuiltWorld& world = SharedWorld();
  const auto view = HeapViewOf(world);
  const std::string bytes = taxonomy::SerializeSnapshot(*view);
  ASSERT_GT(bytes.size(), taxonomy::SnapshotPreludeSize());

  const std::string path = TempPath("snapshot_roundtrip.snap");
  ASSERT_TRUE(taxonomy::WriteSnapshot(*view, path).ok());

  // WriteSnapshot puts exactly the serialized image on disk — no footer, no
  // framing — which is what makes the mmap load zero-copy.
  auto on_disk = util::ReadFileToString(path);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(*on_disk, bytes);

  auto snap = taxonomy::Snapshot::Load(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ((*snap)->num_nodes(), view->num_nodes());
  EXPECT_EQ((*snap)->num_edges(), view->num_edges());
  EXPECT_EQ((*snap)->num_mentions(), view->num_mentions());
  EXPECT_EQ((*snap)->file_bytes(), bytes.size());

  // Re-serializing the loaded snapshot reproduces the file byte for byte:
  // the format is a fixed point of write -> load -> write.
  EXPECT_EQ(taxonomy::SerializeSnapshot(**snap), bytes);
  std::remove(path.c_str());
}

TEST(SnapshotTest, SerializationInvariantUnderThreadCount) {
  std::string reference;
  for (const int threads : {1, 3, 8}) {
    util::ScopedThreadsOverride override_threads(threads);
    const BuiltWorld world = BuildWorld(/*seed=*/21, /*entities=*/200);
    const auto view = HeapViewOf(world);
    const std::string bytes = taxonomy::SerializeSnapshot(*view);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference)
          << "snapshot bytes differ at CNPB_THREADS=" << threads;
    }
  }
}

TEST(SnapshotTest, LoadedSnapshotValidatesUnderEveryThreadCount) {
  // The loader's parallel validation must accept the same file and answer
  // identically at any thread count.
  const BuiltWorld& world = SharedWorld();
  const auto view = HeapViewOf(world);
  const std::string path = TempPath("snapshot_threads.snap");
  ASSERT_TRUE(taxonomy::WriteSnapshot(*view, path).ok());
  const std::string bytes = taxonomy::SerializeSnapshot(*view);
  for (const int threads : {1, 3, 8}) {
    util::ScopedThreadsOverride override_threads(threads);
    auto snap = taxonomy::Snapshot::Load(path);
    ASSERT_TRUE(snap.ok()) << "threads=" << threads << ": "
                           << snap.status().ToString();
    EXPECT_EQ(taxonomy::SerializeSnapshot(**snap), bytes);
  }
  std::remove(path.c_str());
}

// Compares the two backends over the full query surface. `tsv` serves a
// taxonomy that went through TSV save/load; `snap` serves the mmap file.
void ExpectServicesAnswerIdentically(const taxonomy::ApiService& tsv,
                                     const taxonomy::ApiService& snap,
                                     const taxonomy::ServingView& view) {
  // Every mention: men2ent ids and resolved names.
  view.VisitMentions([&](std::string_view mention, const taxonomy::NodeId*,
                         size_t) -> bool {
    const std::string m(mention);
    EXPECT_EQ(tsv.Men2Ent(m), snap.Men2Ent(m)) << "men2ent(" << m << ")";
    auto tsv_resolved = tsv.TryMen2EntResolved(m);
    auto snap_resolved = snap.TryMen2EntResolved(m);
    EXPECT_TRUE(tsv_resolved.ok());
    EXPECT_TRUE(snap_resolved.ok());
    if (!tsv_resolved.ok() || !snap_resolved.ok()) return true;
    EXPECT_EQ(tsv_resolved->entities.size(), snap_resolved->entities.size());
    const size_t n = std::min(tsv_resolved->entities.size(),
                              snap_resolved->entities.size());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(tsv_resolved->entities[i].id, snap_resolved->entities[i].id);
      EXPECT_EQ(tsv_resolved->entities[i].name,
                snap_resolved->entities[i].name);
      EXPECT_EQ(tsv_resolved->entities[i].num_hypernyms,
                snap_resolved->entities[i].num_hypernyms);
    }
    return true;
  });
  // Every node name: getConcept (direct and transitive) and getEntity.
  for (taxonomy::NodeId id = 0; id < view.num_nodes(); ++id) {
    const std::string name(view.Name(id));
    EXPECT_EQ(tsv.GetConcept(name), snap.GetConcept(name))
        << "getConcept(" << name << ")";
    EXPECT_EQ(tsv.GetConcept(name, /*transitive=*/true),
              snap.GetConcept(name, /*transitive=*/true))
        << "getConcept+transitive(" << name << ")";
    EXPECT_EQ(tsv.GetEntity(name, 50), snap.GetEntity(name, 50))
        << "getEntity(" << name << ")";
  }
}

TEST(SnapshotTest, SnapshotBackedServiceAnswersIdenticallyToTsvBacked) {
  const BuiltWorld& world = SharedWorld();

  // TSV-backed side: save + reload through the durable text format, exactly
  // the pre-snapshot serving path.
  const std::string tsv_path = TempPath("snapshot_equiv.tsv");
  ASSERT_TRUE(taxonomy::SaveTaxonomy(world.taxonomy, tsv_path).ok());
  auto reloaded = taxonomy::LoadTaxonomy(tsv_path);
  ASSERT_TRUE(reloaded.ok());
  auto frozen = taxonomy::Taxonomy::Freeze(std::move(*reloaded));
  auto tsv_view = std::make_shared<taxonomy::HeapServingView>(
      frozen, core::CnProbaseBuilder::BuildMentionIndex(world.dump, *frozen));
  taxonomy::ApiService tsv_service(tsv_view);

  // Snapshot-backed side: written from the same build, served via mmap.
  const std::string snap_path = TempPath("snapshot_equiv.snap");
  ASSERT_TRUE(taxonomy::WriteSnapshot(*tsv_view, snap_path).ok());
  auto snap = taxonomy::Snapshot::Load(snap_path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  taxonomy::ApiService snap_service{
      std::shared_ptr<const taxonomy::ServingView>(*snap)};

  ASSERT_EQ(tsv_view->num_mentions(), (*snap)->num_mentions());
  ExpectServicesAnswerIdentically(tsv_service, snap_service, *tsv_view);

  std::remove(tsv_path.c_str());
  std::remove(snap_path.c_str());
}

TEST(SnapshotTest, MaterializeTaxonomyMatchesTsvSave) {
  const BuiltWorld& world = SharedWorld();
  const auto view = HeapViewOf(world);
  const std::string snap_path = TempPath("snapshot_materialize.snap");
  ASSERT_TRUE(taxonomy::WriteSnapshot(*view, snap_path).ok());
  auto snap = taxonomy::Snapshot::Load(snap_path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  // Materializing the snapshot and saving as TSV must produce the same
  // bytes as saving the original taxonomy: the compatibility path back to
  // the durable format loses nothing.
  auto materialized = taxonomy::MaterializeTaxonomy(**snap);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  const std::string a = TempPath("snapshot_materialized.tsv");
  const std::string b = TempPath("snapshot_original.tsv");
  ASSERT_TRUE(taxonomy::SaveTaxonomy(*materialized, a).ok());
  ASSERT_TRUE(taxonomy::SaveTaxonomy(world.taxonomy, b).ok());
  auto bytes_a = util::ReadFileToString(a);
  auto bytes_b = util::ReadFileToString(b);
  ASSERT_TRUE(bytes_a.ok());
  ASSERT_TRUE(bytes_b.ok());
  EXPECT_EQ(*bytes_a, *bytes_b);
  std::remove(snap_path.c_str());
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(SnapshotTest, EmptyTaxonomyRoundTrips) {
  taxonomy::Taxonomy empty;
  const std::string path = TempPath("snapshot_empty.snap");
  ASSERT_TRUE(
      taxonomy::WriteSnapshot(empty, taxonomy::MentionIndex(), path).ok());
  auto snap = taxonomy::Snapshot::Load(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ((*snap)->num_nodes(), 0u);
  EXPECT_EQ((*snap)->num_edges(), 0u);
  EXPECT_EQ((*snap)->num_mentions(), 0u);
  EXPECT_EQ((*snap)->Find("anything"), taxonomy::kInvalidNode);
  EXPECT_TRUE((*snap)->MentionCandidates("anything").empty());

  auto on_disk = util::ReadFileToString(path);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(taxonomy::SerializeSnapshot(**snap), *on_disk);
  std::remove(path.c_str());
}

TEST(SnapshotTest, FindLocatesEveryNodeAndOnlyThem) {
  const BuiltWorld& world = SharedWorld();
  const auto view = HeapViewOf(world);
  const std::string path = TempPath("snapshot_find.snap");
  ASSERT_TRUE(taxonomy::WriteSnapshot(*view, path).ok());
  auto snap = taxonomy::Snapshot::Load(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  for (taxonomy::NodeId id = 0; id < view->num_nodes(); ++id) {
    EXPECT_EQ((*snap)->Find(view->Name(id)), id);
    EXPECT_EQ((*snap)->Kind(id), view->Kind(id));
  }
  EXPECT_EQ((*snap)->Find("__definitely_not_a_node__"),
            taxonomy::kInvalidNode);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cnpb
