// Router-tier tests: json_merge structural helpers, ShardMap placement
// stability and the quarantine/half-open/recovery state machine, and
// end-to-end routing over real loopback backends — forwarding, failover,
// hedging past a stalled replica, batch fan-out/merge order, and the
// mixed-generation publish barrier. Multi-seed kill-a-backend chaos lives
// in router_chaos_test.cc.
#include "router/router.h"

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "router/json_merge.h"
#include "router/shard_map.h"
#include "server/client.h"
#include "server/http.h"
#include "server/server.h"
#include "server/service.h"
#include "taxonomy/api_service.h"
#include "taxonomy/taxonomy.h"
#include "util/fault_injection.h"
#include "util/net.h"

namespace cnpb::router {
namespace {

using server::ApiEndpoints;
using server::HttpClient;
using server::HttpRequest;
using server::HttpResponse;
using server::HttpServer;
using server::PercentEncode;
using taxonomy::ApiService;
using taxonomy::Taxonomy;

// ---------------------------------------------------------------------------
// json_merge

TEST(JsonMerge, FindJsonUIntReadsTopLevelKey) {
  uint64_t value = 0;
  ASSERT_TRUE(FindJsonUInt("{\"version\":7,\"count\":2}", "version", &value));
  EXPECT_EQ(value, 7u);
  ASSERT_TRUE(FindJsonUInt("{\"version\":7,\"count\":2}", "count", &value));
  EXPECT_EQ(value, 2u);
}

TEST(JsonMerge, FindJsonUIntIgnoresKeyInsideStringsAndNesting) {
  uint64_t value = 0;
  // The literal text "version": appears inside a string value and inside a
  // nested object; only the top-level key may match.
  const std::string json =
      "{\"a\":\"\\\"version\\\":9\",\"b\":{\"version\":8},\"version\":4}";
  ASSERT_TRUE(FindJsonUInt(json, "version", &value));
  EXPECT_EQ(value, 4u);
}

TEST(JsonMerge, FindJsonUIntRejectsMissingOrNonNumeric) {
  uint64_t value = 0;
  EXPECT_FALSE(FindJsonUInt("{\"count\":2}", "version", &value));
  EXPECT_FALSE(FindJsonUInt("{\"version\":\"7\"}", "version", &value));
  EXPECT_FALSE(FindJsonUInt("{\"version\":-7}", "version", &value));
}

TEST(JsonMerge, FindJsonArrayReturnsBracketContents) {
  std::string_view array;
  const std::string json =
      "{\"version\":1,\"results\":[{\"a\":[1,2]},{\"b\":\"]\"}],\"n\":0}";
  ASSERT_TRUE(FindJsonArray(json, "results", &array));
  EXPECT_EQ(array, "{\"a\":[1,2]},{\"b\":\"]\"}");
  EXPECT_FALSE(FindJsonArray(json, "nope", &array));
}

TEST(JsonMerge, SplitTopLevelJsonIsBracketAndStringAware) {
  const std::vector<std::string_view> parts =
      SplitTopLevelJson("{\"a\":[1,2]},{\"b\":\"x,y\"},3");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "{\"a\":[1,2]}");
  EXPECT_EQ(parts[1], "{\"b\":\"x,y\"}");
  EXPECT_EQ(parts[2], "3");
  EXPECT_TRUE(SplitTopLevelJson("").empty());
}

// ---------------------------------------------------------------------------
// ShardMap

std::vector<std::vector<ShardMap::Endpoint>> Topology(size_t shards,
                                                      size_t replicas,
                                                      uint16_t base_port) {
  std::vector<std::vector<ShardMap::Endpoint>> out(shards);
  uint16_t port = base_port;
  for (size_t s = 0; s < shards; ++s) {
    for (size_t r = 0; r < replicas; ++r) {
      out[s].push_back({"127.0.0.1", port++});
    }
  }
  return out;
}

TEST(ShardMap, PlacementIsDeterministicAcrossInstancesAndAddresses) {
  // Two maps with the same shard count but entirely different endpoint
  // addresses must agree on every key: the ring hashes shard indices, not
  // host:port, so placement survives restarts and re-deployments.
  ShardMap a(Topology(4, 1, 9000), {});
  ShardMap b(Topology(4, 3, 12000), {});
  for (int i = 0; i < 500; ++i) {
    const std::string key = "键key" + std::to_string(i);
    const size_t shard = a.ShardForKey(key);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, b.ShardForKey(key));
  }
}

TEST(ShardMap, PlacementCoversAllShards) {
  ShardMap map(Topology(4, 1, 9000), {});
  std::vector<int> hits(4, 0);
  const int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    ++hits[map.ShardForKey("mention" + std::to_string(i))];
  }
  for (size_t s = 0; s < 4; ++s) {
    // 64 vnodes/shard keeps the imbalance mild; demand every shard gets at
    // least a third of its fair share.
    EXPECT_GT(hits[s], kKeys / 4 / 3) << "shard " << s << " starved";
  }
}

TEST(ShardMap, SingleShardOwnsEverything) {
  ShardMap map(Topology(1, 2, 9000), {});
  EXPECT_EQ(map.ShardForKey("任何东西"), 0u);
  EXPECT_EQ(map.ShardForKey(""), 0u);
}

TEST(ShardMap, ConsecutiveFailuresTripQuarantine) {
  ShardMap::Options options;
  options.quarantine_failures = 3;
  options.quarantine_period = std::chrono::milliseconds(60000);
  ShardMap map(Topology(1, 2, 9000), options);

  map.ReportFailure(0, 0);
  map.ReportFailure(0, 0);
  EXPECT_EQ(map.state(0, 0), ShardMap::State::kHealthy);
  map.ReportFailure(0, 0);
  EXPECT_EQ(map.state(0, 0), ShardMap::State::kQuarantined);
  EXPECT_EQ(map.consecutive_failures(0, 0), 3);

  // Every pick now lands on the remaining healthy replica.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(map.PickReplica(0, -1), 1);
  }
}

TEST(ShardMap, SuccessResetsTheFailureStreak) {
  ShardMap::Options options;
  options.quarantine_failures = 3;
  ShardMap map(Topology(1, 1, 9000), options);
  map.ReportFailure(0, 0);
  map.ReportFailure(0, 0);
  map.ReportSuccess(0, 0, 1);
  EXPECT_EQ(map.consecutive_failures(0, 0), 0);
  EXPECT_EQ(map.state(0, 0), ShardMap::State::kHealthy);
  // The streak must start over, not resume.
  map.ReportFailure(0, 0);
  map.ReportFailure(0, 0);
  EXPECT_EQ(map.state(0, 0), ShardMap::State::kHealthy);
}

TEST(ShardMap, HalfOpenAdmitsOneProbeThenRecovers) {
  ShardMap::Options options;
  options.quarantine_failures = 2;
  options.quarantine_period = std::chrono::milliseconds(50);
  ShardMap map(Topology(1, 1, 9000), options);

  map.ReportFailure(0, 0);
  map.ReportFailure(0, 0);
  EXPECT_EQ(map.state(0, 0), ShardMap::State::kQuarantined);
  EXPECT_EQ(map.PickReplica(0, -1), -1);  // shard dark during the period

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(map.state(0, 0), ShardMap::State::kHalfOpen);
  // Exactly one probe is admitted while it is in flight.
  EXPECT_EQ(map.PickReplica(0, -1), 0);
  EXPECT_EQ(map.PickReplica(0, -1), -1);

  map.ReportSuccess(0, 0, 1);
  EXPECT_EQ(map.state(0, 0), ShardMap::State::kHealthy);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(map.PickReplica(0, -1), 0);
  }
}

TEST(ShardMap, FailedProbeRequarantines) {
  ShardMap::Options options;
  options.quarantine_failures = 2;
  options.quarantine_period = std::chrono::milliseconds(50);
  ShardMap map(Topology(1, 1, 9000), options);
  map.ReportFailure(0, 0);
  map.ReportFailure(0, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  ASSERT_EQ(map.PickReplica(0, -1), 0);  // the probe
  map.ReportFailure(0, 0);
  EXPECT_EQ(map.state(0, 0), ShardMap::State::kQuarantined);
  EXPECT_EQ(map.PickReplica(0, -1), -1);  // a fresh period has begun
}

TEST(ShardMap, MaxVersionTracksTheNewestSuccess) {
  ShardMap map(Topology(2, 1, 9000), {});
  EXPECT_EQ(map.MaxVersion(), 0u);
  map.ReportSuccess(0, 0, 3);
  map.ReportSuccess(1, 0, 7);
  EXPECT_EQ(map.MaxVersion(), 7u);
  EXPECT_EQ(map.last_version(0, 0), 3u);
  EXPECT_EQ(map.last_version(1, 0), 7u);
  // A success without a version stamp must not regress the record.
  map.ReportSuccess(1, 0, 0);
  EXPECT_EQ(map.last_version(1, 0), 7u);
}

// ---------------------------------------------------------------------------
// End-to-end over real backends

Taxonomy MakeTaxonomy() {
  Taxonomy t;
  t.AddIsa("刘备", "君主", taxonomy::Source::kTag, 0.9f);
  t.AddIsa("刘备", "人物", taxonomy::Source::kTag, 0.8f);
  t.AddIsa("曹操", "君主", taxonomy::Source::kTag, 0.9f);
  t.AddIsa("君主", "人物", taxonomy::Source::kTag, 0.7f);
  for (int i = 0; i < 6; ++i) {
    t.AddIsa("entity" + std::to_string(i), "concept",
             taxonomy::Source::kTag, 0.5f);
  }
  return t;
}

std::shared_ptr<const Taxonomy> MakeGenTaxonomy(uint64_t version) {
  Taxonomy t;
  const std::string gen = std::to_string(version);
  t.AddIsa("e", "gen" + gen, taxonomy::Source::kTag, 0.99f);
  t.AddIsa("ent" + gen, "anchor", taxonomy::Source::kTag, 0.99f);
  return Taxonomy::Freeze(std::move(t));
}

// One live backend: taxonomy + ApiService + endpoints + HttpServer.
struct Backend {
  std::unique_ptr<Taxonomy> taxonomy;
  std::shared_ptr<const Taxonomy> frozen;
  std::unique_ptr<ApiService> api;
  std::unique_ptr<ApiEndpoints> endpoints;
  std::unique_ptr<HttpServer> http;

  uint16_t port() const { return http->port(); }
  void Stop() {
    http->Stop();
    http->Wait();
  }
};

std::unique_ptr<Backend> StartBackend() {
  auto b = std::make_unique<Backend>();
  b->taxonomy = std::make_unique<Taxonomy>(MakeTaxonomy());
  b->api = std::make_unique<ApiService>(b->taxonomy.get());
  b->api->RegisterMention("主公", b->taxonomy->Find("刘备"));
  b->api->RegisterMention("孟德", b->taxonomy->Find("曹操"));
  b->endpoints = std::make_unique<ApiEndpoints>(b->api.get());
  HttpServer::Config config;
  config.num_threads = 2;
  b->http = std::make_unique<HttpServer>(config, b->endpoints->AsHandler());
  EXPECT_TRUE(b->http->Start().ok());
  return b;
}

// A backend serving the generation marker taxonomy, published up to
// `version` (the owning ApiService constructor starts at 1).
std::unique_ptr<Backend> StartGenBackend(uint64_t version) {
  auto b = std::make_unique<Backend>();
  b->frozen = MakeGenTaxonomy(1);
  b->api = std::make_unique<ApiService>(b->frozen);
  for (uint64_t v = 2; v <= version; ++v) {
    b->api->Publish(MakeGenTaxonomy(v), {});
  }
  b->endpoints = std::make_unique<ApiEndpoints>(b->api.get());
  HttpServer::Config config;
  config.num_threads = 2;
  b->http = std::make_unique<HttpServer>(config, b->endpoints->AsHandler());
  EXPECT_TRUE(b->http->Start().ok());
  return b;
}

std::string_view HeaderOf(const HttpResponse& response,
                          std::string_view name) {
  for (const auto& [key, value] : response.headers) {
    if (key == name) return value;
  }
  return "";
}

class RouterTest : public ::testing::Test {
 protected:
  // `shards` x `replicas` backends, every one serving the full taxonomy
  // (the router partitions the keyspace; replicating the data keeps every
  // routing choice answerable in a test).
  void StartCluster(size_t shards, size_t replicas,
                    Router::Options options = {}) {
    std::vector<std::vector<ShardMap::Endpoint>> topology(shards);
    for (size_t s = 0; s < shards; ++s) {
      for (size_t r = 0; r < replicas; ++r) {
        backends_.push_back(StartBackend());
        topology[s].push_back({"127.0.0.1", backends_.back()->port()});
      }
    }
    StartRouter(std::move(topology), options);
  }

  void StartRouter(std::vector<std::vector<ShardMap::Endpoint>> topology,
                   Router::Options options = {}) {
    ShardMap::Options map_options;
    map_options.quarantine_failures = 3;
    map_options.quarantine_period = std::chrono::milliseconds(100);
    map_ = std::make_unique<ShardMap>(std::move(topology), map_options);
    options.server.num_threads = 2;
    options.connect_deadline = std::chrono::milliseconds(500);
    options.recv_deadline = std::chrono::milliseconds(2000);
    router_ = std::make_unique<Router>(map_.get(), options);
    ASSERT_TRUE(router_->Start().ok());
  }

  HttpClient Connect() {
    HttpClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", router_->port()).ok());
    return client;
  }

  Backend& backend(size_t i) { return *backends_[i]; }

  std::vector<std::unique_ptr<Backend>> backends_;
  std::unique_ptr<ShardMap> map_;
  std::unique_ptr<Router> router_;  // after map_: destroyed (stopped) first
};

TEST_F(RouterTest, ForwardsSingleShotWithVersionHeader) {
  StartCluster(2, 1);
  HttpClient client = Connect();
  auto response =
      client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("君主"), std::string::npos);
  EXPECT_EQ(response->Header("X-Taxonomy-Version"), "1");
  EXPECT_GE(router_->stats().forwarded, 1u);
}

TEST_F(RouterTest, RoutesMen2EntByMention) {
  StartCluster(2, 1);
  HttpClient client = Connect();
  auto response = client.Get("/v1/men2ent?mention=" + PercentEncode("主公"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("刘备"), std::string::npos);

  // Unknown mention: the backend's 404 passes through, version stamp intact.
  response = client.Get("/v1/men2ent?mention=" + PercentEncode("无名氏"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 404);
  EXPECT_EQ(response->Header("X-Taxonomy-Version"), "1");
}

TEST_F(RouterTest, MissingParamYieldsTheBackendsCanonical400) {
  StartCluster(2, 1);
  HttpClient client = Connect();
  auto response = client.Get("/v1/getConcept");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);
}

TEST_F(RouterTest, MethodContractPassesThrough) {
  StartCluster(1, 1);
  HttpClient client = Connect();
  auto response = client.Post("/v1/men2ent?mention=x", "", "text/plain");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 405);
  EXPECT_FALSE(response->Header("Allow").empty());
}

TEST_F(RouterTest, UnknownPathIsAnsweredLocally) {
  StartCluster(1, 1);
  HttpClient client = Connect();
  auto response = client.Get("/v1/nope");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 404);
  EXPECT_NE(response->body.find("no such endpoint"), std::string::npos);
}

TEST_F(RouterTest, HeadIsForwardedAsGet) {
  StartCluster(1, 1);
  // Drive Handle() directly: a HEAD response from the frontend has its body
  // stripped by the serializer, but the handler must produce the full
  // response (and must not forward HEAD to the backend — a bodyless
  // backend response would stall the pooled keep-alive connection).
  HttpRequest request;
  request.method = "HEAD";
  request.path = "/v1/getConcept";
  request.target = "/v1/getConcept?entity=" + PercentEncode("刘备");
  request.params = {{"entity", "刘备"}};
  const HttpResponse response = router_->Handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("君主"), std::string::npos);
  EXPECT_EQ(HeaderOf(response, "X-Taxonomy-Version"), "1");

  // The connection that served the HEAD-as-GET is pooled and must still be
  // usable for the next forward.
  const HttpResponse again = router_->Handle(request);
  EXPECT_EQ(again.status, 200);
}

TEST_F(RouterTest, HealthzReportsTopologyAndMetricsExposeCounters) {
  StartCluster(2, 2);
  HttpClient client = Connect();
  auto query =
      client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
  ASSERT_TRUE(query.ok());

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health->body.find("\"shards\":2"), std::string::npos);
  EXPECT_NE(health->body.find("\"backends\":["), std::string::npos);
  EXPECT_NE(health->body.find("\"state\":\"healthy\""), std::string::npos);

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("router_forwarded_total"), std::string::npos);
  EXPECT_NE(metrics->body.find("router_hedge_delay_ms"), std::string::npos);
}

TEST_F(RouterTest, BatchFansOutAndMergesInInputOrder) {
  StartCluster(2, 1);
  HttpClient client = Connect();
  // Keys spread across both shards; unknown items come back empty (the
  // partial-answer batch contract) but still occupy their slot.
  const std::vector<std::string> items = {"刘备", "曹操", "君主", "无此实体",
                                          "entity3"};
  std::string body;
  for (const auto& item : items) body += item + "\n";
  auto response = client.Post("/v1/getConcept_batch", body,
                              "text/plain; charset=utf-8");
  ASSERT_TRUE(response.ok()) << response.status().message();
  ASSERT_EQ(response->status, 200);
  EXPECT_EQ(response->Header("X-Taxonomy-Version"), "1");

  uint64_t count = 0;
  ASSERT_TRUE(FindJsonUInt(response->body, "count", &count));
  EXPECT_EQ(count, items.size());
  uint64_t version = 0;
  ASSERT_TRUE(FindJsonUInt(response->body, "version", &version));
  EXPECT_EQ(version, 1u);

  std::string_view array;
  ASSERT_TRUE(FindJsonArray(response->body, "results", &array));
  const std::vector<std::string_view> elements = SplitTopLevelJson(array);
  ASSERT_EQ(elements.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_NE(elements[i].find("\"entity\":"), std::string_view::npos);
    EXPECT_NE(elements[i].find(items[i]), std::string_view::npos)
        << "result " << i << " out of order: " << elements[i];
  }
  EXPECT_GE(router_->stats().batches, 1u);
}

TEST_F(RouterTest, BatchGetFormCarriesPassThroughParams) {
  StartCluster(2, 1);
  HttpClient client = Connect();
  auto response = client.Get(
      "/v1/getEntity_batch?concept=" + PercentEncode("君主") +
      "&concept=concept&limit=2");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  uint64_t count = 0;
  ASSERT_TRUE(FindJsonUInt(response->body, "count", &count));
  EXPECT_EQ(count, 2u);
  // limit=2 rode along to every sub-batch: "concept" has 6 hyponyms but at
  // most 2 may come back.
  std::string_view array;
  ASSERT_TRUE(FindJsonArray(response->body, "results", &array));
  const std::vector<std::string_view> elements = SplitTopLevelJson(array);
  ASSERT_EQ(elements.size(), 2u);
  size_t entities = 0;
  for (size_t pos = 0; (pos = elements[1].find("entity", pos)) !=
                       std::string_view::npos;
       pos += 6) {
    ++entities;
  }
  EXPECT_LE(entities, 2u);
}

TEST_F(RouterTest, EmptyBatchIs400WithoutTouchingBackends) {
  StartCluster(1, 1);
  HttpClient client = Connect();
  auto response = client.Post("/v1/men2ent_batch", "\n\n", "text/plain");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);
  EXPECT_NE(response->body.find("no mention given"), std::string::npos);
}

TEST_F(RouterTest, FailsOverWhenAReplicaDies) {
  StartCluster(1, 2);
  backend(0).Stop();
  HttpClient client = Connect();
  for (int i = 0; i < 6; ++i) {
    auto response =
        client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
    ASSERT_TRUE(response.ok()) << response.status().message();
    EXPECT_EQ(response->status, 200) << "request " << i;
  }
  // Round-robin must have offered the dead replica at least once, so at
  // least one forward took the failover path, and the streak of connection
  // refusals trips quarantine.
  EXPECT_GE(router_->stats().failovers, 1u);
  EXPECT_EQ(map_->state(0, 0), ShardMap::State::kQuarantined);

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->body.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(health->body.find("\"state\":\"quarantined\""),
            std::string::npos);
}

TEST_F(RouterTest, DarkShardAnswers503NotAHang) {
  StartCluster(1, 1);
  backend(0).Stop();
  HttpClient client = Connect();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) {
    auto response =
        client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 503);
    EXPECT_NE(response->body.find("unavailable"), std::string::npos);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);
  EXPECT_GE(router_->stats().no_backend, 1u);
}

TEST_F(RouterTest, HedgeBeatsAStalledReplica) {
  // Replica 0 is a black hole: a listener whose accept queue swallows the
  // connection and never answers. Replica 1 is a live backend. Requests
  // whose primary is the hole must be rescued by the hedge within the
  // hedge delay, not wait out the full recv deadline.
  uint16_t hole_port = 0;
  util::Result<int> hole = util::ListenTcp("127.0.0.1", 0, 16, &hole_port);
  ASSERT_TRUE(hole.ok());
  backends_.push_back(StartBackend());

  Router::Options options;
  options.hedge_initial = std::chrono::milliseconds(10);
  StartRouter({{{"127.0.0.1", hole_port},
                {"127.0.0.1", backends_.back()->port()}}},
              options);

  HttpClient client = Connect();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) {
    auto response =
        client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
    ASSERT_TRUE(response.ok()) << response.status().message();
    EXPECT_EQ(response->status, 200) << "request " << i;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Round-robin sent at least one primary into the hole.
  EXPECT_GE(router_->stats().hedges, 1u);
  EXPECT_GE(router_->stats().hedge_wins, 1u);
  // Rescue happened at hedge speed (4 x recv_deadline would be 8s).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
  util::CloseFd(*hole);
}

TEST_F(RouterTest, MixedGenerationBatchIsRefusedThenRecovers) {
  // Shard 0's backend has been published to generation 2; shard 1's is
  // still at 1. A batch spanning both must be refused, never merged.
  backends_.push_back(StartGenBackend(2));
  backends_.push_back(StartGenBackend(1));
  Router::Options options;
  options.coherence_retries = 1;
  StartRouter({{{"127.0.0.1", backends_[0]->port()}},
               {{"127.0.0.1", backends_[1]->port()}}},
              options);

  // Find one key owned by each shard (the items themselves need not exist
  // in the taxonomy — batch answers unknown items with an empty slot).
  std::string key_shard0, key_shard1;
  for (int i = 0; key_shard0.empty() || key_shard1.empty(); ++i) {
    ASSERT_LT(i, 1000);
    const std::string key = "k" + std::to_string(i);
    (map_->ShardForKey(key) == 0 ? key_shard0 : key_shard1) = key;
  }

  HttpClient client = Connect();
  auto response = client.Post("/v1/getConcept_batch",
                              key_shard0 + "\n" + key_shard1 + "\n",
                              "text/plain; charset=utf-8");
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response->status, 503);
  EXPECT_NE(response->body.find("mixed snapshot generations"),
            std::string::npos);
  EXPECT_GE(router_->stats().mixed_generation_refusals, 1u);
  EXPECT_GE(router_->stats().coherence_retries, 1u);

  // A batch confined to the up-to-date shard is coherent and serves fine.
  auto confined = client.Post("/v1/getConcept_batch", key_shard0 + "\n",
                              "text/plain; charset=utf-8");
  ASSERT_TRUE(confined.ok());
  EXPECT_EQ(confined->status, 200);
  EXPECT_EQ(confined->Header("X-Taxonomy-Version"), "2");

  // The laggard catches up; the same cross-shard batch now merges at the
  // new generation.
  backends_[1]->api->Publish(MakeGenTaxonomy(2), {});
  response = client.Post("/v1/getConcept_batch",
                         key_shard0 + "\n" + key_shard1 + "\n",
                         "text/plain; charset=utf-8");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->Header("X-Taxonomy-Version"), "2");
  uint64_t version = 0;
  ASSERT_TRUE(FindJsonUInt(response->body, "version", &version));
  EXPECT_EQ(version, 2u);
}

TEST_F(RouterTest, BatchesConvergeAfterClusterWidePublish) {
  // Coherent before, coherent after: a batch straddling a cluster-wide
  // publish between two requests serves generation 1 first, then 2 —
  // never a refusal, never a mix.
  backends_.push_back(StartGenBackend(1));
  backends_.push_back(StartGenBackend(1));
  StartRouter({{{"127.0.0.1", backends_[0]->port()}},
               {{"127.0.0.1", backends_[1]->port()}}});

  std::string key_shard0, key_shard1;
  for (int i = 0; key_shard0.empty() || key_shard1.empty(); ++i) {
    ASSERT_LT(i, 1000);
    const std::string key = "k" + std::to_string(i);
    (map_->ShardForKey(key) == 0 ? key_shard0 : key_shard1) = key;
  }
  const std::string body = key_shard0 + "\n" + key_shard1 + "\n";

  HttpClient client = Connect();
  auto before = client.Post("/v1/getConcept_batch", body,
                            "text/plain; charset=utf-8");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->status, 200);
  EXPECT_EQ(before->Header("X-Taxonomy-Version"), "1");

  backends_[0]->api->Publish(MakeGenTaxonomy(2), {});
  backends_[1]->api->Publish(MakeGenTaxonomy(2), {});
  auto after = client.Post("/v1/getConcept_batch", body,
                           "text/plain; charset=utf-8");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->status, 200);
  EXPECT_EQ(after->Header("X-Taxonomy-Version"), "2");
  EXPECT_EQ(router_->stats().mixed_generation_refusals, 0u);
}

TEST_F(RouterTest, RouterConnectFaultInjectsConnectionFailures) {
  StartCluster(1, 1);
  HttpClient client = Connect();
  {
    util::ScopedFaultInjection scoped("router.connect=1", 11);
    auto response =
        client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 503);
  }
  // One injected failure is below the quarantine threshold; the next
  // request connects for real.
  auto response =
      client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
}

TEST_F(RouterTest, RouterBackendFaultInjectsForwardFailures) {
  StartCluster(1, 1);
  HttpClient client = Connect();
  {
    util::ScopedFaultInjection scoped("router.backend=1", 13);
    auto response = client.Post("/v1/getConcept_batch", "刘备\n",
                                "text/plain; charset=utf-8");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 503);
  }
  auto response = client.Post("/v1/getConcept_batch", "刘备\n",
                              "text/plain; charset=utf-8");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
}

}  // namespace
}  // namespace cnpb::router
