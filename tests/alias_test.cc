#include <gtest/gtest.h>

#include "core/builder.h"
#include "kb/merge.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "taxonomy/api_service.h"
#include "text/segmenter.h"

namespace cnpb {
namespace {

class AliasTest : public ::testing::Test {
 protected:
  AliasTest() {
    synth::WorldModel::Config wc;
    wc.num_entities = 2000;
    world_ = std::make_unique<synth::WorldModel>(synth::WorldModel::Generate(wc));
    output_ = std::make_unique<synth::EncyclopediaGenerator::Output>(
        synth::EncyclopediaGenerator::Generate(*world_, {}));
  }
  std::unique_ptr<synth::WorldModel> world_;
  std::unique_ptr<synth::EncyclopediaGenerator::Output> output_;
};

TEST_F(AliasTest, GeneratorEmitsAliases) {
  size_t person_aliases = 0, org_aliases = 0;
  for (const auto& page : output_->dump.pages()) {
    for (const std::string& alias : page.aliases) {
      EXPECT_FALSE(alias.empty());
      EXPECT_NE(alias, page.mention);
      if (alias.rfind("阿", 0) == 0 || alias.rfind("小", 0) == 0) {
        ++person_aliases;
      } else {
        ++org_aliases;
      }
    }
  }
  EXPECT_GT(person_aliases, 30u);
  EXPECT_GT(org_aliases, 30u);
}

TEST_F(AliasTest, AliasesSurviveDumpRoundTrip) {
  const std::string path = ::testing::TempDir() + "/alias_dump.tsv";
  ASSERT_TRUE(output_->dump.Save(path).ok());
  auto loaded = kb::EncyclopediaDump::Load(path);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < loaded->size(); i += 37) {
    EXPECT_EQ(loaded->page(i).aliases, output_->dump.page(i).aliases);
  }
  std::remove(path.c_str());
}

TEST_F(AliasTest, Men2EntResolvesAliases) {
  text::Segmenter segmenter(&world_->lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(*world_, output_->dump, segmenter, {});
  std::vector<std::vector<std::string>> corpus_words;
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    corpus_words.push_back(std::move(words));
  }
  core::CnProbaseBuilder::Config config;
  config.enable_abstract = false;  // keep the test fast
  for (const char* word : synth::ThematicWords()) {
    config.verification.syntax.thematic_lexicon.emplace_back(word);
  }
  core::CnProbaseBuilder::Report report;
  const auto taxonomy = core::CnProbaseBuilder::Build(
      output_->dump, world_->lexicon(), corpus_words, config, &report);
  taxonomy::ApiService api(&taxonomy);
  core::CnProbaseBuilder::RegisterMentions(output_->dump, taxonomy, &api);

  size_t resolved = 0, with_alias = 0;
  for (const auto& page : output_->dump.pages()) {
    if (page.aliases.empty()) continue;
    if (taxonomy.Find(page.name) == taxonomy::kInvalidNode) continue;
    ++with_alias;
    const auto entities = api.Men2Ent(page.aliases[0]);
    for (const taxonomy::NodeId id : entities) {
      if (taxonomy.Name(id) == page.name) {
        ++resolved;
        break;
      }
    }
  }
  ASSERT_GT(with_alias, 20u);
  // Every alias of a taxonomy entity must resolve to it (possibly among
  // several candidates — nicknames collide by design).
  EXPECT_EQ(resolved, with_alias);
}

TEST_F(AliasTest, MergeUnionsAliases) {
  kb::EncyclopediaDump a, b;
  kb::EncyclopediaPage page;
  page.name = "x";
  page.mention = "x";
  page.aliases = {"alias1"};
  a.AddPage(page);
  page.aliases = {"alias1", "alias2"};
  b.AddPage(page);
  const auto merged = kb::MergeDumps({&a, &b});
  EXPECT_EQ(merged.FindByName("x")->aliases,
            (std::vector<std::string>{"alias1", "alias2"}));
}

}  // namespace
}  // namespace cnpb
