// Concurrency contract of the obs instruments, run under TSan in CI:
// N writer threads hammer a BucketHistogram (and counters) while reader
// threads take snapshots; once writers join, totals are exact.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace cnpb::obs {
namespace {

TEST(BucketHistogramConcurrencyTest, WritersAndSnapshotReaders) {
  constexpr int kWriters = 8;
  constexpr int kReaders = 2;
  constexpr int kObservationsPerWriter = 20000;

  BucketHistogram histogram;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots_taken{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&]() {
      uint64_t last_total = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const HistogramSnapshot snap = histogram.Snapshot();
        const uint64_t total = snap.TotalCount();
        // Bucket totals only grow; a snapshot mid-flight is a lower bound of
        // any later snapshot.
        ASSERT_GE(total, last_total);
        last_total = total;
        snapshots_taken.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&histogram, w]() {
      for (int i = 0; i < kObservationsPerWriter; ++i) {
        // Deterministic per-writer value pattern spanning many buckets.
        const double value = 1e-6 * (1 + ((w * 31 + i) % 1000));
        histogram.Observe(value);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(snapshots_taken.load(), 0u);

  // After the writers quiesce the snapshot is exact, and equals the same
  // observations replayed serially.
  BucketHistogram serial;
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kObservationsPerWriter; ++i) {
      serial.Observe(1e-6 * (1 + ((w * 31 + i) % 1000)));
    }
  }
  const HistogramSnapshot concurrent = histogram.Snapshot();
  const HistogramSnapshot expected = serial.Snapshot();
  EXPECT_EQ(concurrent.count,
            static_cast<uint64_t>(kWriters) * kObservationsPerWriter);
  EXPECT_EQ(concurrent.TotalCount(), concurrent.count);
  EXPECT_EQ(concurrent.buckets, expected.buckets);
  EXPECT_DOUBLE_EQ(concurrent.sum, expected.sum);
}

TEST(BucketHistogramConcurrencyTest, PerShardHistogramsMergeExactly) {
  // The per-shard pattern the build pipeline uses: each thread owns a
  // histogram, snapshots merge afterwards.
  constexpr int kShards = 6;
  constexpr int kPerShard = 5000;
  std::vector<BucketHistogram> shards(kShards);
  std::vector<std::thread> workers;
  workers.reserve(kShards);
  for (int s = 0; s < kShards; ++s) {
    workers.emplace_back([&shards, s]() {
      for (int i = 0; i < kPerShard; ++i) {
        shards[s].Observe(1e-5 * (1 + (i % 100)) * (s + 1));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  HistogramSnapshot merged;
  for (const BucketHistogram& shard : shards) merged.Merge(shard.Snapshot());
  EXPECT_EQ(merged.TotalCount(),
            static_cast<uint64_t>(kShards) * kPerShard);
  EXPECT_EQ(merged.count, merged.TotalCount());
}

TEST(MetricsConcurrencyTest, CountersAndRegistryLookupsAreThreadSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry]() {
      // Every thread resolves the instruments by name itself — registration
      // races on first use are part of the contract.
      Counter* counter = registry.counter("test.concurrent.counter");
      Gauge* gauge = registry.gauge("test.concurrent.gauge");
      for (int i = 0; i < kIncrements; ++i) {
        counter->Increment();
        if (i % 1024 == 0) gauge->Set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(registry.counter("test.concurrent.counter")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

}  // namespace
}  // namespace cnpb::obs
