// Property-based tests: invariants checked over parameterized sweeps of
// seeds and sizes rather than hand-picked cases.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "generation/separation.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "taxonomy/taxonomy.h"
#include "text/ngram.h"
#include "text/segmenter.h"
#include "text/trie_matcher.h"
#include "text/utf8.h"
#include "util/rng.h"
#include "util/tsv.h"

namespace cnpb {
namespace {

// ---- UTF-8 decoder: total, progressing, round-tripping ------------------------

class Utf8FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Utf8FuzzTest, RandomBytesNeverStall) {
  util::Rng rng(GetParam());
  std::string bytes;
  const size_t len = 1 + rng.Uniform(256);
  for (size_t i = 0; i < len; ++i) {
    bytes += static_cast<char>(rng.Uniform(256));
  }
  size_t pos = 0;
  size_t decoded = 0;
  while (pos < bytes.size()) {
    const size_t before = pos;
    text::DecodeCodepointAt(bytes, pos);
    ASSERT_GT(pos, before) << "decoder must always advance";
    ASSERT_LE(pos, bytes.size());
    ++decoded;
  }
  EXPECT_LE(decoded, bytes.size());
  // CodepointStrings partitions the byte string exactly.
  std::string rebuilt;
  for (const std::string& cp : text::CodepointStrings(bytes)) rebuilt += cp;
  EXPECT_EQ(rebuilt, bytes);
}

TEST_P(Utf8FuzzTest, ValidCodepointsRoundTrip) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 200; ++i) {
    char32_t cp;
    do {
      cp = static_cast<char32_t>(rng.Uniform(0x10FFFF + 1));
    } while (cp >= 0xD800 && cp <= 0xDFFF);
    const std::string encoded = text::EncodeCodepoint(cp);
    size_t pos = 0;
    EXPECT_EQ(text::DecodeCodepointAt(encoded, pos), cp);
    EXPECT_EQ(pos, encoded.size());
    EXPECT_EQ(text::NumCodepoints(encoded), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Utf8FuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- segmenter: partition property over generated worlds ----------------------

class SegmenterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SegmenterPropertyTest, SegmentationIsAPartition) {
  synth::WorldModel::Config wc;
  wc.num_entities = 400;
  wc.seed = GetParam();
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto output = synth::EncyclopediaGenerator::Generate(world, {});
  text::Segmenter segmenter(&world.lexicon());
  size_t checked = 0;
  for (const auto& page : output.dump.pages()) {
    if (page.abstract.empty()) continue;
    std::string rebuilt;
    for (const std::string& word : segmenter.Segment(page.abstract)) {
      EXPECT_FALSE(word.empty());
      rebuilt += word;
    }
    // Whitespace is dropped by design; abstracts contain none.
    EXPECT_EQ(rebuilt, page.abstract);
    if (++checked >= 100) break;
  }
  EXPECT_GT(checked, 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmenterPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---- separation algorithm: structural invariants -------------------------------

class SeparationPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(SeparationPropertyTest, TreeCoversInputAndHypernymsAreSuffixes) {
  const auto [seed, length] = GetParam();
  util::Rng rng(seed);
  text::NgramCounter ngrams;
  // Random corpus over a small vocabulary to create arbitrary PMI terrain.
  std::vector<std::string> vocab;
  for (int i = 0; i < 12; ++i) vocab.push_back("w" + std::to_string(i));
  for (int s = 0; s < 300; ++s) {
    std::vector<std::string> sentence;
    const size_t n = 2 + rng.Uniform(6);
    for (size_t i = 0; i < n; ++i) sentence.push_back(rng.Choice(vocab));
    ngrams.AddSentence(sentence);
  }
  generation::SeparationAlgorithm separation(&ngrams);

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::string> words;
    for (int i = 0; i < length; ++i) words.push_back(rng.Choice(vocab));
    const auto parse = separation.ParseWords(words);
    ASSERT_NE(parse.root, nullptr);
    // Root text is the concatenation of the input.
    std::string all;
    for (const auto& w : words) all += w;
    EXPECT_EQ(parse.root->text, all);
    // Every hypernym is a proper suffix of the compound (or the whole
    // single word).
    ASSERT_FALSE(parse.hypernyms.empty());
    for (const std::string& hyper : parse.hypernyms) {
      EXPECT_TRUE(all.size() == hyper.size() ||
                  all.compare(all.size() - hyper.size(), hyper.size(), hyper) ==
                      0)
          << hyper << " not a suffix of " << all;
    }
    // Hypernyms strictly shrink along the rightmost path.
    for (size_t i = 1; i < parse.hypernyms.size(); ++i) {
      EXPECT_LT(parse.hypernyms[i].size(), parse.hypernyms[i - 1].size());
    }
    // Binary-tree structure: every internal node's text is the
    // concatenation of its children.
    for (const auto& node : parse.arena) {
      if (node->left != nullptr) {
        EXPECT_EQ(node->text, node->left->text + node->right->text);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SeparationPropertyTest,
    ::testing::Combine(::testing::Values(7, 17, 27),
                       ::testing::Values(1, 2, 3, 4, 6, 9, 14)));

// ---- trie matcher vs. a naive reference implementation --------------------------

class TrieMatcherPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Reference: greedy longest match, scanning codepoint by codepoint.
std::vector<std::string> NaiveFindAll(const std::vector<std::string>& dict,
                                      const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t best = 0;
    for (const std::string& word : dict) {
      if (word.size() > best && s.compare(pos, word.size(), word) == 0) {
        best = word.size();
      }
    }
    if (best > 0) {
      out.push_back(s.substr(pos, best));
      pos += best;
    } else {
      text::DecodeCodepointAt(s, pos);
    }
  }
  return out;
}

TEST_P(TrieMatcherPropertyTest, MatchesNaiveLongestMatch) {
  util::Rng rng(GetParam());
  const std::vector<std::string> alphabet = {"刘", "德", "华", "演",
                                             "员", "歌", "手", "a"};
  std::vector<std::string> dict;
  text::TrieMatcher trie;
  for (int i = 0; i < 20; ++i) {
    std::string word;
    const size_t len = 1 + rng.Uniform(4);
    for (size_t k = 0; k < len; ++k) word += rng.Choice(alphabet);
    if (std::find(dict.begin(), dict.end(), word) == dict.end()) {
      dict.push_back(word);
      trie.Add(word, 1);
    }
  }
  for (int trial = 0; trial < 40; ++trial) {
    std::string s;
    const size_t len = rng.Uniform(30);
    for (size_t k = 0; k < len; ++k) s += rng.Choice(alphabet);
    const auto expected = NaiveFindAll(dict, s);
    const auto actual = trie.FindAll(s);
    ASSERT_EQ(actual.size(), expected.size()) << "text: " << s;
    for (size_t k = 0; k < actual.size(); ++k) {
      EXPECT_EQ(std::string(actual[k].text), expected[k]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieMatcherPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---- taxonomy: adjacency/counter consistency under random operations -----------

class TaxonomyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TaxonomyPropertyTest, CountersMatchAdjacencyUnderRandomOps) {
  util::Rng rng(GetParam());
  taxonomy::Taxonomy t;
  std::vector<std::pair<taxonomy::NodeId, taxonomy::NodeId>> live_edges;
  const int num_nodes = 30;
  for (int i = 0; i < num_nodes; ++i) {
    t.AddNode("n" + std::to_string(i),
              rng.Bernoulli(0.5) ? taxonomy::NodeKind::kEntity
                                 : taxonomy::NodeKind::kConcept);
  }
  for (int op = 0; op < 500; ++op) {
    const auto a = static_cast<taxonomy::NodeId>(rng.Uniform(num_nodes));
    const auto b = static_cast<taxonomy::NodeId>(rng.Uniform(num_nodes));
    if (rng.Bernoulli(0.7)) {
      const auto source = static_cast<taxonomy::Source>(rng.Uniform(4));
      if (t.AddIsa(a, b, source)) live_edges.emplace_back(a, b);
    } else if (!live_edges.empty()) {
      const size_t pick = rng.Uniform(live_edges.size());
      const auto [x, y] = live_edges[pick];
      EXPECT_TRUE(t.RemoveIsa(x, y));
      live_edges.erase(live_edges.begin() + static_cast<ptrdiff_t>(pick));
    }
  }
  EXPECT_EQ(t.num_edges(), live_edges.size());
  // Out-degree and in-degree sums both equal the edge count.
  size_t out_sum = 0, in_sum = 0, source_sum = 0;
  for (taxonomy::NodeId id = 0; id < t.num_nodes(); ++id) {
    out_sum += t.Hypernyms(id).size();
    in_sum += t.Hyponyms(id).size();
  }
  for (int s = 0; s < taxonomy::kNumSources; ++s) {
    source_sum += t.NumEdgesFromSource(static_cast<taxonomy::Source>(s));
  }
  EXPECT_EQ(out_sum, live_edges.size());
  EXPECT_EQ(in_sum, live_edges.size());
  EXPECT_EQ(source_sum, live_edges.size());
  // Every live edge is queryable both ways.
  for (const auto& [x, y] : live_edges) {
    EXPECT_TRUE(t.HasIsa(x, y));
  }
  // Entity/subconcept split partitions the edges.
  EXPECT_EQ(t.NumEntityConceptEdges() + t.NumSubconceptEdges(),
            live_edges.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaxonomyPropertyTest,
                         ::testing::Values(3, 14, 159, 2653, 58979));

// ---- TSV escaping round trip -----------------------------------------------------

class TsvPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TsvPropertyTest, ArbitraryFieldsRoundTripThroughFiles) {
  util::Rng rng(GetParam());
  const std::string path = ::testing::TempDir() + "/tsv_prop_" +
                           std::to_string(GetParam()) + ".tsv";
  std::vector<std::vector<std::string>> rows;
  for (int r = 0; r < 20; ++r) {
    std::vector<std::string> row;
    const size_t cols = 1 + rng.Uniform(5);
    for (size_t c = 0; c < cols; ++c) {
      std::string field;
      const size_t len = rng.Uniform(12);
      for (size_t k = 0; k < len; ++k) {
        // Mix of nasty characters and CJK.
        switch (rng.Uniform(6)) {
          case 0:
            field += '\t';
            break;
          case 1:
            field += '\n';
            break;
          case 2:
            field += '\\';
            break;
          case 3:
            field += "汉";
            break;
          default:
            field += static_cast<char>('a' + rng.Uniform(26));
        }
      }
      row.push_back(std::move(field));
    }
    rows.push_back(std::move(row));
  }
  {
    util::TsvWriter writer(path);
    ASSERT_TRUE(writer.status().ok());
    for (const auto& row : rows) writer.WriteRow(row);
    ASSERT_TRUE(writer.Close().ok());
  }
  auto loaded = util::ReadTsvFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ((*loaded)[r], rows[r]) << "row " << r;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsvPropertyTest,
                         ::testing::Values(71, 72, 73, 74));

// ---- PMI monotonicity -------------------------------------------------------------

TEST(PmiPropertyTest, PmiGrowsWithCooccurrence) {
  text::NgramCounter counter;
  for (int i = 0; i < 100; ++i) counter.AddSentence({"a", "b"});
  for (int i = 0; i < 100; ++i) counter.AddSentence({"c", "d"});
  for (int i = 0; i < 10; ++i) counter.AddSentence({"a", "d"});
  for (int i = 0; i < 100; ++i) counter.AddSentence({"a", "x"});
  // (a,b) co-occurs 100/210 of a's uses; (a,d) only 10/210.
  EXPECT_GT(counter.Pmi("a", "b"), counter.Pmi("a", "d"));
  // A never-seen pair scores below both.
  EXPECT_GT(counter.Pmi("a", "d"), counter.Pmi("b", "c"));
}

// ---- Zipf sampler shape -------------------------------------------------------------

class ZipfPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfPropertyTest, FrequenciesDecreaseWithRank) {
  const double s = GetParam();
  util::Rng rng(99);
  util::ZipfSampler zipf(50, s);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  // Head beats mid beats tail (allowing sampling noise via wide margins).
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[5], counts[40]);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfPropertyTest,
                         ::testing::Values(0.6, 0.8, 1.0, 1.3));

}  // namespace
}  // namespace cnpb
