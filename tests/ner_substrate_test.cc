// Evaluates the NER recogniser substrate itself against the corpus
// generator's gold labels — the recogniser feeds s1(H) in Eq. 2, so its
// quality bounds the NER filter's usefulness.
#include <gtest/gtest.h>

#include <memory>

#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "text/segmenter.h"
#include "verification/ner_filter.h"

namespace cnpb {
namespace {

TEST(NerSubstrateTest, RecogniserBeatsBaselineOnGoldLabels) {
  synth::WorldModel::Config wc;
  wc.num_entities = 2000;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto output = synth::EncyclopediaGenerator::Generate(world, {});
  text::Segmenter segmenter(&world.lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, {});

  verification::NerFilter filter(&world.lexicon(), {});
  size_t tp = 0, fp = 0, fn = 0, tn = 0;
  for (const auto& sentence : corpus.sentences) {
    std::string prev;
    for (const auto& token : sentence) {
      const bool predicted = filter.IsNamedEntity(token.word, prev);
      if (predicted && token.gold_ne) ++tp;
      if (predicted && !token.gold_ne) ++fp;
      if (!predicted && token.gold_ne) ++fn;
      if (!predicted && !token.gold_ne) ++tn;
      prev = token.word;
    }
  }
  ASSERT_GT(tp + fn, 1000u);  // corpus actually contains NEs
  const double precision = static_cast<double>(tp) / (tp + fp);
  const double recall = static_cast<double>(tp) / (tp + fn);
  // Lexicon + context recognition is strong on this corpus; what matters
  // for Eq. 2 is that s1 separates NEs from concepts decisively.
  EXPECT_GT(precision, 0.9);
  EXPECT_GT(recall, 0.9);
}

TEST(NerSubstrateTest, ConceptWordsGetLowSupport) {
  synth::WorldModel::Config wc;
  wc.num_entities = 1500;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto output = synth::EncyclopediaGenerator::Generate(world, {});
  text::Segmenter segmenter(&world.lexicon());
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, {});
  verification::NerFilter filter(&world.lexicon(), {});
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    filter.AddCorpusSentence(words);
  }
  // Concepts: low s1. Countries/cities that occur in the corpus: s1 = 1
  // (proper nouns).
  EXPECT_LT(filter.S1("演员"), 0.2);
  EXPECT_LT(filter.S1("歌手"), 0.2);
  size_t checked = 0;
  for (const char* place : synth::MajorCities()) {
    bool seen = false;
    for (const auto& sentence : corpus.sentences) {
      for (const auto& token : sentence) {
        if (token.word == place) seen = true;
      }
      if (seen) break;
    }
    if (!seen) continue;
    EXPECT_DOUBLE_EQ(filter.S1(place), 1.0) << place;
    if (++checked >= 3) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST(WorldDataSanityTest, PoolsAndGlosses) {
  EXPECT_GE(synth::Surnames().size(), 30u);
  EXPECT_GE(synth::GivenNameChars().size(), 50u);
  EXPECT_GE(synth::ThematicWords().size(), 40u);
  EXPECT_GE(synth::Countries().size(), 15u);
  for (const auto& row : synth::OntologyRows()) {
    EXPECT_NE(row.name[0], '\0');
    EXPECT_NE(row.english[0], '\0') << row.name;
  }
}

TEST(WorldDataSanityTest, OntologyIsAcyclic) {
  const synth::Ontology onto = synth::Ontology::Build();
  // Ancestors() would have looped forever during Build on a cycle; assert
  // no concept is its own ancestor as an explicit check.
  for (size_t c = 0; c < onto.size(); ++c) {
    EXPECT_FALSE(onto.IsAncestor(static_cast<int>(c), static_cast<int>(c)))
        << onto.ConceptAt(static_cast<int>(c)).name;
  }
}

TEST(WorldDataSanityTest, EveryDomainHasEntityBearingConcepts) {
  const synth::Ontology onto = synth::Ontology::Build();
  std::set<synth::Domain> covered;
  for (int c : onto.EntityBearingConcepts()) {
    covered.insert(onto.ConceptAt(c).domain);
  }
  EXPECT_GE(covered.size(), 8u);
}

}  // namespace
}  // namespace cnpb
