// The ingestion durability contract end to end (DESIGN.md §13), plus a
// 20-seed kill-and-restart chaos schedule. Per seed: a daemon with faults
// armed over every wal.*, ingest.*, and compact.* point takes a stream of
// upserts (callers retry failed acks, as the API contract instructs), is
// crash-stopped mid-stream (worker killed wherever it is, un-synced WAL
// bytes dropped), and recovered by a fresh daemon on the same directory.
// Invariants at every verification point:
//
//   - zero acked-op loss: every Submit that returned OK survives into the
//     recovered dump;
//   - zero double-apply: no name appears twice, including ops acked twice
//     through a retry;
//   - served versions are monotonic while readers run throughout;
//   - after a drained shutdown, recovery replays a bounded suffix (the
//     cursor covers the log) — the compaction acceptance criterion.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.h"
#include "ingest/daemon.h"
#include "ingest/wal.h"
#include "kb/dump.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "taxonomy/api_service.h"
#include "text/segmenter.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace cnpb {
namespace {

// Every durability and scheduling fault point the daemon owns. Limits keep
// each seed's schedule finite so retries eventually land.
constexpr char kChaosSpec[] =
    "wal.append=0.15:limit=4;wal.write=0.15:limit=3;wal.fsync=0.2:limit=4;"
    "wal.rotate=0.4:limit=2;"
    "ingest.apply=0.25:limit=4;ingest.publish=0.3:limit=3;"
    "compact.pages=0.4:limit=2;compact.snapshot=0.4:limit=2;"
    "compact.cursor=0.4:limit=2;compact.prune=0.5:limit=2;"
    "wal.cursor.write=0.3:limit=2;wal.cursor.rename=0.3:limit=2";

// One synthetic world shared by every test in this binary: base taxonomy
// from the first 70% of pages, the rest arriving through the daemon.
struct SharedWorld {
  synth::WorldModel world;
  std::vector<std::vector<std::string>> corpus_words;
  kb::EncyclopediaDump base;
  std::vector<kb::EncyclopediaPage> stream;

  SharedWorld() : world([] {
      synth::WorldModel::Config wc;
      wc.num_entities = 220;
      return synth::WorldModel::Generate(wc);
    }()) {
    const auto output = synth::EncyclopediaGenerator::Generate(world, {});
    text::Segmenter segmenter(&world.lexicon());
    const auto corpus =
        synth::CorpusGenerator::Generate(world, output.dump, segmenter, {});
    for (const auto& sentence : corpus.sentences) {
      std::vector<std::string> words;
      for (const auto& token : sentence) words.push_back(token.word);
      corpus_words.push_back(std::move(words));
    }
    const size_t n = output.dump.size();
    for (size_t i = 0; i < n; ++i) {
      kb::EncyclopediaPage page = output.dump.page(i);
      page.page_id = 0;
      if (i < n * 7 / 10) {
        base.AddPage(std::move(page));
      } else {
        stream.push_back(std::move(page));
      }
    }
  }
};

const SharedWorld& World() {
  static const SharedWorld* world = new SharedWorld();
  return *world;
}

// Streamed pages carry explicit relations; live traffic ships no corpus
// evidence, so the daemon applies without the statistical verifier — same
// trade the ingestd example makes.
core::CnProbaseBuilder::Config Config() {
  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 1;
  config.neural.max_train_samples = 300;
  config.enable_verification = false;
  return config;
}

std::unique_ptr<core::IncrementalUpdater> MakeUpdater() {
  const SharedWorld& w = World();
  return std::make_unique<core::IncrementalUpdater>(
      w.base, &w.world.lexicon(), w.corpus_words, Config());
}

ingest::IngestDaemon::Options Tight(const std::string& wal_dir) {
  ingest::IngestDaemon::Options options;
  options.wal_dir = wal_dir;
  options.publish_min_pages = 4;
  options.publish_max_delay = std::chrono::milliseconds(20);
  options.batch_max_pages = 8;
  options.compact_every_records = 6;
  options.retry_delay = std::chrono::milliseconds(2);
  options.wal.segment_bytes = 4096;  // force rotations under chaos
  return options;
}

std::string FreshWalDir(int tag) {
  const std::string dir =
      ::testing::TempDir() + "/ingest_chaos_" + std::to_string(tag);
  auto segments = ingest::ListWalSegments(dir);
  if (segments.ok()) {
    for (const auto& segment : *segments) std::remove(segment.path.c_str());
  }
  std::remove((dir + "/wal.cursor").c_str());
  ingest::PruneStaleCheckpoints(dir, 0);
  return dir;
}

// Each name's occurrence count in the updater's dump — the double-apply
// oracle (stream names are unique and disjoint from the base).
std::map<std::string, int> NameCounts(
    const core::IncrementalUpdater& updater) {
  std::map<std::string, int> counts;
  for (size_t i = 0; i < updater.dump().size(); ++i) {
    ++counts[updater.dump().page(i).name];
  }
  return counts;
}

// Submits with the retry loop the ack contract prescribes; returns true if
// an attempt was acked. Duplicate acks from retries are fine — apply
// dedups by name — which is exactly what the oracle verifies.
bool SubmitWithRetries(ingest::IngestDaemon* daemon,
                       const kb::EncyclopediaPage& page, uint8_t priority) {
  for (int attempt = 0; attempt < 12; ++attempt) {
    if (daemon->Submit(page, priority).ok()) return true;
  }
  return false;
}

// Reader that pins the service's published versions and requires them to
// never go backwards — crash-recovery must not un-publish.
class VersionMonotonyReader {
 public:
  explicit VersionMonotonyReader(taxonomy::ApiService* service)
      : service_(service), thread_([this] { Loop(); }) {}
  ~VersionMonotonyReader() { Stop(); }
  void Stop() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }
  bool ok() const { return ok_.load(); }

 private:
  void Loop() {
    uint64_t last = 0;
    while (!stop_.load()) {
      // TryGetConceptResolved stamps the version the answer was resolved
      // against — the coherent read, unlike version() after the fact.
      auto resolved = service_->TryGetConceptResolved("无此实体");
      const uint64_t version =
          resolved.ok() ? resolved->version : service_->version();
      if (version < last) ok_.store(false);
      last = version;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  taxonomy::ApiService* service_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> ok_{true};
  std::thread thread_;
};

class IngestChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(IngestChaosTest, KillAndRestartLosesNothingDoublesNothing) {
  const int seed = GetParam();
  const std::string wal_dir = FreshWalDir(seed);
  std::mt19937 rng(static_cast<uint32_t>(seed) * 2654435761u + 1);

  // A seed-specific slice and order of the stream.
  std::vector<kb::EncyclopediaPage> feed = World().stream;
  ASSERT_GE(feed.size(), 24u);
  std::shuffle(feed.begin(), feed.end(), rng);
  if (feed.size() > 28) feed.resize(28);
  const size_t before_crash = 8 + rng() % (feed.size() - 12);

  std::vector<std::string> acked;

  // --- Phase A: ingest under chaos, then crash mid-stream. ---
  {
    auto updater = MakeUpdater();
    taxonomy::ApiService service(updater->snapshot());
    ingest::IngestDaemon daemon(updater.get(), &service, Tight(wal_dir));
    ASSERT_TRUE(daemon.Start().ok());
    VersionMonotonyReader reader(&service);
    {
      util::ScopedFaultInjection faults(kChaosSpec,
                                        static_cast<uint64_t>(seed));
      for (size_t i = 0; i < before_crash; ++i) {
        const uint8_t priority = static_cast<uint8_t>(rng() % 3);
        if (SubmitWithRetries(&daemon, feed[i], priority)) {
          acked.push_back(feed[i].name);
        }
      }
      // Crash wherever the worker happens to be: un-synced bytes are gone,
      // no drain, no cursor write. Faults are still armed — the crash path
      // itself must not depend on healthy IO.
      ASSERT_TRUE(daemon.Stop(ingest::IngestDaemon::StopMode::kAbort).ok());
    }
    reader.Stop();
    EXPECT_TRUE(reader.ok()) << "served versions went backwards (seed "
                             << seed << ")";
  }
  ASSERT_GE(acked.size(), 1u) << "chaos schedule acked nothing (seed "
                              << seed << ")";

  // --- Phase B: recover on the same directory, finish the stream. ---
  {
    auto updater = MakeUpdater();
    taxonomy::ApiService service(updater->snapshot());
    ingest::IngestDaemon daemon(updater.get(), &service, Tight(wal_dir));
    const util::Status started = daemon.Start();
    ASSERT_TRUE(started.ok()) << "recovery failed (seed " << seed
                              << "): " << started.ToString();
    VersionMonotonyReader reader(&service);

    // Every ack from before the crash is already in the dump: recovery
    // replayed checkpoint + suffix before the daemon went live.
    {
      const auto counts = NameCounts(*updater);
      for (const std::string& name : acked) {
        const auto it = counts.find(name);
        ASSERT_NE(it, counts.end())
            << "acked page lost across crash (seed " << seed << "): " << name;
        EXPECT_EQ(it->second, 1)
            << "page double-applied (seed " << seed << "): " << name;
      }
    }

    // Re-submit an already-recovered page and finish the stream under a
    // fresh fault schedule. The scope ends before the drain: limits may be
    // exhausted mid-drain otherwise, and a drain is allowed to require
    // eventually-healthy IO (a real operator would retry it).
    {
      util::ScopedFaultInjection faults(kChaosSpec,
                                        static_cast<uint64_t>(seed) + 1000);
      if (SubmitWithRetries(&daemon, feed[0], 0)) {
        acked.push_back(feed[0].name);
      }
      for (size_t i = before_crash; i < feed.size(); ++i) {
        const uint8_t priority = static_cast<uint8_t>(rng() % 3);
        if (SubmitWithRetries(&daemon, feed[i], priority)) {
          acked.push_back(feed[i].name);
        }
      }
    }
    ASSERT_TRUE(daemon.Flush().ok());

    const auto counts = NameCounts(*updater);
    for (const std::string& name : acked) {
      const auto it = counts.find(name);
      ASSERT_NE(it, counts.end())
          << "acked page lost (seed " << seed << "): " << name;
      EXPECT_EQ(it->second, 1)
          << "page double-applied (seed " << seed << "): " << name;
    }
    const auto stats = daemon.stats();
    EXPECT_EQ(stats.pending, 0u);
    EXPECT_GE(stats.publishes, 1u);
    EXPECT_EQ(service.version(), stats.served_version);

    // Drain: final checkpoint + cursor, worker joined, exit clean.
    ASSERT_TRUE(daemon.Stop(ingest::IngestDaemon::StopMode::kDrain).ok());
    reader.Stop();
    EXPECT_TRUE(reader.ok()) << "served versions went backwards (seed "
                             << seed << ")";
  }

  // --- Phase C: a third boot must recover from the checkpoint with a
  // bounded replay — the drained cursor covers the whole log. ---
  {
    auto updater = MakeUpdater();
    ingest::IngestDaemon daemon(updater.get(), nullptr, Tight(wal_dir));
    ASSERT_TRUE(daemon.Start().ok());
    const ingest::WalReplayReport& recovery = daemon.recovery_report();
    EXPECT_EQ(recovery.records_delivered, 0u)
        << "drained shutdown left uncheckpointed records (seed " << seed
        << ")";
    const auto counts = NameCounts(*updater);
    for (const std::string& name : acked) {
      const auto it = counts.find(name);
      ASSERT_NE(it, counts.end())
          << "acked page lost from checkpoint (seed " << seed
          << "): " << name;
      EXPECT_EQ(it->second, 1);
    }
    ASSERT_TRUE(daemon.Stop(ingest::IngestDaemon::StopMode::kDrain).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, IngestChaosTest,
                         ::testing::Range(1, 21));

// ---------------------------------------------------------------------------
// Deterministic daemon behaviours (no fault schedule).

TEST(IngestDaemonTest, SubmitFlushServesAndDeleteTombstonesQueuedUpserts) {
  const std::string wal_dir = FreshWalDir(900);
  const auto& stream = World().stream;

  auto updater = MakeUpdater();
  taxonomy::ApiService service(updater->snapshot());
  auto options = Tight(wal_dir);
  options.compact_every_records = 0;  // manual compaction only
  ingest::IngestDaemon daemon(updater.get(), &service, options);
  ASSERT_TRUE(daemon.Start().ok());
  const uint64_t version_before = service.version();

  // Batch ack: one fsync covers every page.
  std::vector<kb::EncyclopediaPage> batch(stream.begin(), stream.begin() + 6);
  auto last = daemon.SubmitBatch(batch);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(*last, 6u);
  ASSERT_TRUE(daemon.Flush().ok());

  for (const auto& page : batch) {
    ASSERT_TRUE(NameCounts(*updater).count(page.name)) << page.name;
  }
  EXPECT_GT(service.version(), version_before);

  // Duplicate submission dedups at apply.
  ASSERT_TRUE(daemon.Submit(batch[0]).ok());
  ASSERT_TRUE(daemon.Flush().ok());
  EXPECT_EQ(NameCounts(*updater)[batch[0].name], 1);

  // A delete behind a queued same-name upsert tombstones it: the delete
  // has the higher LSN, so whenever the worker wakes it cancels the
  // not-yet-applied upsert — or, if the upsert already applied, the
  // tombstone is a documented no-op. Accept either; require no dup.
  const kb::EncyclopediaPage& victim = stream[7];
  ASSERT_TRUE(daemon.Submit(victim, 2).ok());
  ASSERT_TRUE(daemon.SubmitDelete(victim.name, 0).ok());
  ASSERT_TRUE(daemon.Flush().ok());
  EXPECT_LE(NameCounts(*updater)[victim.name], 1);

  // Manual compaction advances the cursor to the resolved boundary.
  const auto before = daemon.stats();
  ASSERT_TRUE(daemon.CompactNow().ok());
  const auto after = daemon.stats();
  EXPECT_GT(after.compactions, before.compactions);
  EXPECT_GE(after.cursor_lsn, before.resolved_lsn);

  ASSERT_TRUE(daemon.Stop(ingest::IngestDaemon::StopMode::kDrain).ok());
  EXPECT_FALSE(daemon.running());

  // Recovery from the compacted state delivers nothing new.
  auto updater2 = MakeUpdater();
  ingest::IngestDaemon daemon2(updater2.get(), nullptr, Tight(wal_dir));
  ASSERT_TRUE(daemon2.Start().ok());
  EXPECT_EQ(daemon2.recovery_report().records_delivered, 0u);
  for (const auto& page : batch) {
    EXPECT_TRUE(NameCounts(*updater2).count(page.name));
  }
  ASSERT_TRUE(daemon2.Stop(ingest::IngestDaemon::StopMode::kDrain).ok());
}

TEST(IngestDaemonTest, PriorityOrdersApplyWithinABacklog) {
  const std::string wal_dir = FreshWalDir(901);
  const auto& stream = World().stream;

  auto updater = MakeUpdater();
  auto options = Tight(wal_dir);
  options.batch_max_pages = 2;
  ingest::IngestDaemon daemon(updater.get(), nullptr, options);
  ASSERT_TRUE(daemon.Start().ok());

  // Build a backlog while the worker is pinned behind an injected apply
  // fault, then observe that the first successful batch drained the
  // most-urgent op first: the scheduler is (priority, lsn), and ApplyBatch
  // assigns fresh page ids in batch order, so the urgent page must end up
  // with a smaller id than the earlier-submitted lazy one.
  {
    util::ScopedFaultInjection faults("ingest.apply=1.0:limit=100000", 7);
    ASSERT_TRUE(daemon.Submit(stream[10], 2).ok());
    ASSERT_TRUE(daemon.Submit(stream[11], 2).ok());
    ASSERT_TRUE(daemon.Submit(stream[12], 0).ok());
    // Hold the fault until all three are back in the queue together — a
    // batch the worker popped before the urgent op arrived must not be the
    // one that lands once faults clear.
    for (int i = 0; i < 5000 && daemon.stats().pending < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(daemon.stats().pending, 3u);
  }
  ASSERT_TRUE(daemon.Flush().ok());
  const auto* urgent = updater->dump().FindByName(stream[12].name);
  const auto* lazy = updater->dump().FindByName(stream[10].name);
  ASSERT_NE(urgent, nullptr);
  ASSERT_NE(lazy, nullptr);
  EXPECT_LT(urgent->page_id, lazy->page_id);
  ASSERT_TRUE(daemon.Stop(ingest::IngestDaemon::StopMode::kDrain).ok());
}

}  // namespace
}  // namespace cnpb
