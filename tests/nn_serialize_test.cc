#include <gtest/gtest.h>

#include <cstdio>

#include "generation/neural_generation.h"
#include "generation/separation.h"
#include "nn/serialize.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "text/ngram.h"
#include "text/segmenter.h"
#include "util/rng.h"

namespace cnpb::nn {
namespace {

TEST(ParamSerializeTest, RoundTrip) {
  util::Rng rng(5);
  std::vector<Var> params = {
      MakeVar(Tensor::RandomUniform(3, 4, 1.0f, rng), true),
      MakeVar(Tensor::RandomUniform(7, 1, 1.0f, rng), true),
  };
  const std::string path = ::testing::TempDir() + "/params_test.bin";
  ASSERT_TRUE(SaveParameters(params, path).ok());

  std::vector<Var> fresh = {
      MakeVar(Tensor::Zeros(3, 4), true),
      MakeVar(Tensor::Zeros(7, 1), true),
  };
  ASSERT_TRUE(LoadParameters(fresh, path).ok());
  for (size_t k = 0; k < params.size(); ++k) {
    for (size_t i = 0; i < params[k]->value.size(); ++i) {
      EXPECT_EQ(fresh[k]->value[i], params[k]->value[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(ParamSerializeTest, ShapeMismatchRejected) {
  util::Rng rng(6);
  std::vector<Var> params = {MakeVar(Tensor::RandomUniform(3, 4, 1.0f, rng), true)};
  const std::string path = ::testing::TempDir() + "/params_mismatch.bin";
  ASSERT_TRUE(SaveParameters(params, path).ok());
  std::vector<Var> wrong_shape = {MakeVar(Tensor::Zeros(4, 3), true)};
  EXPECT_FALSE(LoadParameters(wrong_shape, path).ok());
  std::vector<Var> wrong_count = {MakeVar(Tensor::Zeros(3, 4), true),
                                  MakeVar(Tensor::Zeros(1, 1), true)};
  EXPECT_FALSE(LoadParameters(wrong_count, path).ok());
  std::remove(path.c_str());
}

TEST(ParamSerializeTest, GarbageFileRejected) {
  const std::string path = ::testing::TempDir() + "/params_garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a checkpoint", f);
  fclose(f);
  std::vector<Var> params = {MakeVar(Tensor::Zeros(1, 1), true)};
  EXPECT_FALSE(LoadParameters(params, path).ok());
  std::remove(path.c_str());
}

TEST(VocabSerializeTest, RoundTripPreservesIds) {
  Vocab vocab;
  vocab.Add("演员");
  vocab.Add("歌手");
  const std::string path = ::testing::TempDir() + "/vocab_test.tsv";
  ASSERT_TRUE(SaveVocab(vocab, path).ok());
  auto loaded = LoadVocab(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), vocab.size());
  EXPECT_EQ(loaded->Id("演员"), vocab.Id("演员"));
  EXPECT_EQ(loaded->Id("歌手"), vocab.Id("歌手"));
  std::remove(path.c_str());
}

TEST(NeuralCheckpointTest, LoadedModelGeneratesIdentically) {
  synth::WorldModel::Config wc;
  wc.num_entities = 800;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  const auto output = synth::EncyclopediaGenerator::Generate(world, {});
  text::Segmenter segmenter(&world.lexicon());
  text::NgramCounter ngrams;
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, {});
  corpus.FillNgrams(&ngrams);
  generation::BracketExtractor extractor(&segmenter, &ngrams);
  const auto prior = extractor.Extract(output.dump);

  generation::NeuralGeneration::Config config;
  config.epochs = 1;
  config.max_train_samples = 300;
  generation::NeuralGeneration trained(config);
  ASSERT_GT(trained.BuildDataset(output.dump, prior, segmenter), 50u);
  trained.Train();
  const auto before = trained.ExtractAll(output.dump, segmenter);

  const std::string prefix = ::testing::TempDir() + "/copynet_ckpt";
  ASSERT_TRUE(trained.Save(prefix).ok());

  generation::NeuralGeneration restored(config);
  ASSERT_TRUE(restored.Load(prefix).ok());
  const auto after = restored.ExtractAll(output.dump, segmenter);

  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].hypo, after[i].hypo);
    EXPECT_EQ(before[i].hyper, after[i].hyper);
  }
  for (const char* suffix : {".params", ".in.vocab", ".out.vocab"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(NeuralCheckpointTest, SaveWithoutTrainFails) {
  generation::NeuralGeneration neural(generation::NeuralGeneration::Config{});
  EXPECT_FALSE(neural.Save("/tmp/should_not_exist").ok());
}

}  // namespace
}  // namespace cnpb::nn
