#include <gtest/gtest.h>

#include "core/builder.h"
#include "kb/merge.h"
#include "synth/encyclopedia_gen.h"
#include "synth/site_split.h"
#include "synth/world.h"
#include "taxonomy/api_service.h"
#include "taxonomy/stats.h"
#include "verification/syntax_rules.h"

namespace cnpb {
namespace {

// ---- kb::MergeDumps -------------------------------------------------------------

TEST(MergeDumpsTest, UnionsRegionsAcrossSites) {
  kb::EncyclopediaDump a, b;
  {
    kb::EncyclopediaPage page;
    page.name = "刘德华（演员）";
    page.mention = "刘德华";
    page.bracket = "演员";
    page.infobox.push_back({page.name, "职业", "演员"});
    a.AddPage(page);
  }
  {
    kb::EncyclopediaPage page;
    page.name = "刘德华（演员）";
    page.mention = "刘德华";
    page.abstract = "刘德华是演员。";
    page.infobox.push_back({page.name, "职业", "演员"});  // duplicate
    page.infobox.push_back({page.name, "身高", "174"});
    page.tags = {"演员", "人物"};
    b.AddPage(page);
  }
  {
    kb::EncyclopediaPage page;
    page.name = "only_b";
    page.mention = "only_b";
    b.AddPage(page);
  }
  const kb::EncyclopediaDump merged = kb::MergeDumps({&a, &b});
  ASSERT_EQ(merged.size(), 2u);
  const kb::EncyclopediaPage* liu = merged.FindByName("刘德华（演员）");
  ASSERT_NE(liu, nullptr);
  EXPECT_EQ(liu->bracket, "演员");
  EXPECT_EQ(liu->abstract, "刘德华是演员。");
  EXPECT_EQ(liu->infobox.size(), 2u);  // 职业 deduplicated
  EXPECT_EQ(liu->tags.size(), 2u);
  EXPECT_NE(merged.FindByName("only_b"), nullptr);
}

TEST(MergeDumpsTest, FirstDumpWinsOnConflicts) {
  kb::EncyclopediaDump a, b;
  kb::EncyclopediaPage page;
  page.name = "x";
  page.mention = "x";
  page.abstract = "from_a";
  a.AddPage(page);
  page.abstract = "from_b";
  b.AddPage(page);
  const auto merged = kb::MergeDumps({&a, &b});
  EXPECT_EQ(merged.FindByName("x")->abstract, "from_a");
}

TEST(MergeDumpsTest, EmptyInput) {
  EXPECT_EQ(kb::MergeDumps({}).size(), 0u);
}

// ---- site split + merge round trip -------------------------------------------------

class SiteSplitTest : public ::testing::Test {
 protected:
  SiteSplitTest() {
    synth::WorldModel::Config wc;
    wc.num_entities = 1500;
    world_ = std::make_unique<synth::WorldModel>(synth::WorldModel::Generate(wc));
    output_ = std::make_unique<synth::EncyclopediaGenerator::Output>(
        synth::EncyclopediaGenerator::Generate(*world_, {}));
  }
  std::unique_ptr<synth::WorldModel> world_;
  std::unique_ptr<synth::EncyclopediaGenerator::Output> output_;
};

TEST_F(SiteSplitTest, EveryPageLandsSomewhereAndSitesArePartial) {
  const auto sites = synth::SplitIntoSites(output_->dump, {});
  ASSERT_EQ(sites.size(), 3u);
  size_t total = 0;
  for (const auto& site : sites) {
    EXPECT_GT(site.size(), output_->dump.size() / 4);
    EXPECT_LT(site.size(), output_->dump.size());
    total += site.size();
  }
  // Overlap exists: sites together hold more page copies than the master.
  EXPECT_GT(total, output_->dump.size());
  // Union covers everything.
  const auto merged =
      kb::MergeDumps({&sites[0], &sites[1], &sites[2]});
  EXPECT_EQ(merged.size(), output_->dump.size());
}

TEST_F(SiteSplitTest, MergeRecoversMostContent) {
  const auto sites = synth::SplitIntoSites(output_->dump, {});
  const auto merged = kb::MergeDumps({&sites[0], &sites[1], &sites[2]});
  const kb::DumpStats master = output_->dump.Stats();
  const kb::DumpStats recovered = merged.Stats();
  // With 3 sites at 60% coverage and 60-80% region retention, the union
  // recovers the large majority of each region.
  EXPECT_GT(recovered.num_abstracts, master.num_abstracts * 8 / 10);
  EXPECT_GT(recovered.num_brackets, master.num_brackets * 8 / 10);
  EXPECT_GT(recovered.num_tags, master.num_tags * 7 / 10);
  EXPECT_GT(recovered.num_triples, master.num_triples * 7 / 10);
  // And any single site alone holds noticeably less.
  EXPECT_LT(sites[0].Stats().num_abstracts, recovered.num_abstracts);
}

// ---- taxonomy stats ---------------------------------------------------------------

TEST(TaxonomyStatsTest, ComputesStructure) {
  taxonomy::Taxonomy t;
  t.AddIsa("刘德华", "男演员", taxonomy::Source::kBracket);
  t.AddIsa("张三", "男演员", taxonomy::Source::kTag);
  t.AddIsa("男演员", "演员", taxonomy::Source::kTag, 1.0f,
           taxonomy::NodeKind::kConcept);
  t.AddIsa("演员", "人物", taxonomy::Source::kTag, 1.0f,
           taxonomy::NodeKind::kConcept);
  const auto stats = taxonomy::ComputeStats(t);
  EXPECT_EQ(stats.num_entities, 2u);
  EXPECT_EQ(stats.num_concepts, 3u);
  EXPECT_EQ(stats.num_entity_concept_edges, 2u);
  EXPECT_EQ(stats.num_subconcept_edges, 2u);
  EXPECT_EQ(stats.num_root_concepts, 1u);  // 人物
  EXPECT_EQ(stats.num_leaf_concepts, 0u);  // all concepts have hyponyms
  EXPECT_DOUBLE_EQ(stats.avg_hypernyms_per_entity, 1.0);
  EXPECT_EQ(stats.max_fanout_concept, "男演员");
  EXPECT_EQ(stats.max_concept_fanout, 2u);
  // Depth: 人物=0, 演员=1, 男演员=2, entities=3.
  EXPECT_EQ(stats.max_depth, 3u);
  ASSERT_EQ(stats.depth_histogram.size(), 4u);
  EXPECT_EQ(stats.depth_histogram[3], 2u);
  EXPECT_EQ(stats.edges_by_source[static_cast<int>(taxonomy::Source::kTag)],
            3u);
  const std::string report = taxonomy::FormatStats(stats);
  EXPECT_NE(report.find("男演员"), std::string::npos);
}

TEST(TaxonomyStatsTest, EmptyTaxonomy) {
  taxonomy::Taxonomy t;
  const auto stats = taxonomy::ComputeStats(t);
  EXPECT_EQ(stats.num_entities, 0u);
  EXPECT_EQ(stats.max_depth, 0u);
}

// ---- confidence-ranked getConcept ---------------------------------------------------

TEST(ApiRankingTest, GetConceptOrdersByEdgeScore) {
  taxonomy::Taxonomy t;
  const auto e = t.AddNode("某人", taxonomy::NodeKind::kEntity);
  const auto weak = t.AddNode("弱概念", taxonomy::NodeKind::kConcept);
  const auto strong = t.AddNode("强概念", taxonomy::NodeKind::kConcept);
  t.AddIsa(e, weak, taxonomy::Source::kAbstract, 0.85f);
  t.AddIsa(e, strong, taxonomy::Source::kBracket, 0.96f);
  taxonomy::ApiService api(&t);
  const auto concepts = api.GetConcept("某人");
  ASSERT_EQ(concepts.size(), 2u);
  EXPECT_EQ(concepts[0], "强概念");
  EXPECT_EQ(concepts[1], "弱概念");
}

// ---- extended syntax rules -----------------------------------------------------------

TEST(ExtendedSyntaxRulesTest, RejectsDatesNumbersAndAttributives) {
  verification::SyntaxRules rules(verification::SyntaxRules::Config{});
  EXPECT_TRUE(rules.Rejects("某战役", "1994"));
  EXPECT_TRUE(rules.Rejects("某战役", "1994年"));
  EXPECT_TRUE(rules.Rejects("某战役", "9月"));
  EXPECT_TRUE(rules.Rejects("某人", "著名的"));
  EXPECT_FALSE(rules.Rejects("某人", "演员"));
  // 年 alone (no digits) is not a date fragment.
  EXPECT_FALSE(rules.Rejects("某人", "年"));
}

TEST(ExtendedSyntaxRulesTest, CanBeDisabled) {
  verification::SyntaxRules::Config config;
  config.extended_rules = false;
  verification::SyntaxRules rules(config);
  EXPECT_FALSE(rules.Rejects("某战役", "1994年"));
  EXPECT_FALSE(rules.Rejects("某人", "著名的"));
}

}  // namespace
}  // namespace cnpb
