// Reasoning engine + service (ISSUE 10 tentpole): bounded transitive isA
// closure with witness paths, depth-tagged ancestor sweeps, LCA with its
// documented tie-break ladder, Jaccard-ranked sibling / expansion queries —
// and the cycle regression (satellite 1): every traversal terminates on a
// deliberately cyclic taxonomy (A → B → C → A reaches serving via synth
// merges; Taxonomy::AddIsa only rejects self-loops). The ReasonService
// layer is held to the cacheable/transient split: unknown names are data
// (known flags + pinned version), only shed/deadline/fault are errors.
#include "reason/engine.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "reason/service.h"
#include "taxonomy/api_service.h"
#include "taxonomy/taxonomy.h"
#include "taxonomy/view.h"
#include "util/fault_injection.h"

namespace cnpb::reason {
namespace {

using taxonomy::NodeId;
using taxonomy::Source;
using taxonomy::Taxonomy;
using taxonomy::kInvalidNode;

std::shared_ptr<const taxonomy::HeapServingView> MakeView(Taxonomy t) {
  return std::make_shared<taxonomy::HeapServingView>(
      Taxonomy::Freeze(std::move(t)), taxonomy::MentionIndex{});
}

// ------------------------------------------------------------ isA closure

TEST(IsaClosureTest, SelfAndDirectEdge) {
  Taxonomy t;
  t.AddIsa("e", "c1", Source::kTag, 0.9f);
  auto view = MakeView(std::move(t));
  const NodeId e = view->Find("e");
  const NodeId c1 = view->Find("c1");

  const IsaResult self = IsaClosure(*view, e, e, 4);
  EXPECT_TRUE(self.reached);
  EXPECT_EQ(self.depth, 0);
  EXPECT_EQ(self.path, std::vector<NodeId>({e}));

  const IsaResult direct = IsaClosure(*view, e, c1, 4);
  EXPECT_TRUE(direct.reached);
  EXPECT_EQ(direct.depth, 1);
  EXPECT_EQ(direct.path, std::vector<NodeId>({e, c1}));

  // Downward direction is not isA.
  EXPECT_FALSE(IsaClosure(*view, c1, e, 4).reached);
}

TEST(IsaClosureTest, MinimalDepthWinsAndWitnessPathMatchesIt) {
  // e -> c1 -> c2 -> c3 plus the shortcut e -> c2: BFS must report the
  // 2-step route to c3 and its path, not the 3-step chain.
  Taxonomy t;
  t.AddIsa("e", "c1", Source::kTag, 0.9f);
  t.AddIsa("c1", "c2", Source::kTag, 0.8f);
  t.AddIsa("c2", "c3", Source::kTag, 0.7f);
  t.AddIsa("e", "c2", Source::kTag, 0.6f);
  auto view = MakeView(std::move(t));
  const NodeId e = view->Find("e");
  const NodeId c2 = view->Find("c2");
  const NodeId c3 = view->Find("c3");

  const IsaResult hop = IsaClosure(*view, e, c2, 8);
  EXPECT_EQ(hop.depth, 1);

  const IsaResult two = IsaClosure(*view, e, c3, 8);
  ASSERT_TRUE(two.reached);
  EXPECT_EQ(two.depth, 2);
  EXPECT_EQ(two.path, std::vector<NodeId>({e, c2, c3}));
}

TEST(IsaClosureTest, MaxDepthBoundsTheSearch) {
  Taxonomy t;
  t.AddIsa("a", "b1", Source::kTag, 0.9f);
  t.AddIsa("b1", "b2", Source::kTag, 0.9f);
  t.AddIsa("b2", "b3", Source::kTag, 0.9f);
  auto view = MakeView(std::move(t));
  const NodeId a = view->Find("a");
  const NodeId b3 = view->Find("b3");

  const IsaResult bounded = IsaClosure(*view, a, b3, 2);
  EXPECT_FALSE(bounded.reached);
  EXPECT_EQ(bounded.depth, -1);
  EXPECT_TRUE(bounded.path.empty());

  const IsaResult reached = IsaClosure(*view, a, b3, 3);
  EXPECT_TRUE(reached.reached);
  EXPECT_EQ(reached.depth, 3);
}

TEST(IsaClosureTest, OutOfRangeIdsAreUnreached) {
  Taxonomy t;
  t.AddIsa("e", "c", Source::kTag, 0.9f);
  auto view = MakeView(std::move(t));
  const NodeId bogus = static_cast<NodeId>(view->num_nodes() + 7);
  EXPECT_FALSE(IsaClosure(*view, bogus, view->Find("c"), 4).reached);
  EXPECT_FALSE(IsaClosure(*view, view->Find("e"), bogus, 4).reached);
}

// ------------------------------------------------- cyclic graph regression

// Satellite 1: A -> B -> C -> A plus the entity D -> A. Every traversal
// must terminate and keep its depth semantics (minimal distance, first
// touch wins) on the cycle.
TEST(CyclicTaxonomyTest, AllTraversalsTerminateWithMinimalDepths) {
  Taxonomy t;
  t.AddIsa("A", "B", Source::kTag, 0.9f);
  t.AddIsa("B", "C", Source::kTag, 0.8f);
  t.AddIsa("C", "A", Source::kTag, 0.7f);
  t.AddIsa("D", "A", Source::kTag, 0.6f);
  auto view = MakeView(std::move(t));
  const NodeId a = view->Find("A");
  const NodeId b = view->Find("B");
  const NodeId c = view->Find("C");
  const NodeId d = view->Find("D");

  // Closure through the cycle entrance.
  const IsaResult up = IsaClosure(*view, d, b, 16);
  ASSERT_TRUE(up.reached);
  EXPECT_EQ(up.depth, 2);
  EXPECT_EQ(up.path, std::vector<NodeId>({d, a, b}));

  // D is below the cycle: no amount of looping may "reach" it upward.
  EXPECT_FALSE(IsaClosure(*view, a, d, 16).reached);

  // Ancestors of D: exactly the three cycle members, each at its minimal
  // distance, despite the unbounded loop above them.
  const std::vector<Ancestor> from_d = Ancestors(*view, d, 16);
  ASSERT_EQ(from_d.size(), 3u);
  EXPECT_EQ(from_d[0].node, a);
  EXPECT_EQ(from_d[0].depth, 1u);
  EXPECT_EQ(from_d[1].node, b);
  EXPECT_EQ(from_d[1].depth, 2u);
  EXPECT_EQ(from_d[2].node, c);
  EXPECT_EQ(from_d[2].depth, 3u);

  // A cycle member is not its own ancestor: the visited set pinned A at
  // depth 0 before the loop could rediscover it.
  const std::vector<Ancestor> from_a = Ancestors(*view, a, 16);
  ASSERT_EQ(from_a.size(), 2u);
  EXPECT_EQ(from_a[0].node, b);
  EXPECT_EQ(from_a[1].node, c);

  // LCA on the cycle: B is an ancestor of both at (1, 0) — the minimal
  // depth sum among {A:(0,2), B:(1,0), C:(2,1)}.
  const LcaResult lca = LowestCommonAncestor(*view, a, b, 16);
  EXPECT_EQ(lca.node, b);
  EXPECT_EQ(lca.depth_a, 1u);
  EXPECT_EQ(lca.depth_b, 0u);

  // Ranking queries terminate too. D's only co-hyponym under A is C.
  const std::vector<Scored> similar = SimilarEntities(*view, d, 5);
  ASSERT_EQ(similar.size(), 1u);
  EXPECT_EQ(similar[0].node, c);

  (void)ExpandConcept(*view, a, 5);  // termination is the assertion

  // The serving-path transitive closure shares the same guard.
  const std::vector<NodeId> closure = view->TransitiveHypernyms(a);
  EXPECT_EQ(closure, std::vector<NodeId>({b, c}));
}

// ------------------------------------------------------------- ancestors

TEST(AncestorsTest, DepthTagsLevelOrderAndLimit) {
  // Diamond: x -> {l, r} -> t. Level order within a level follows the
  // canonical edge order (insertion order here).
  Taxonomy t;
  t.AddIsa("x", "l", Source::kTag, 0.9f);
  t.AddIsa("x", "r", Source::kTag, 0.8f);
  t.AddIsa("l", "t", Source::kTag, 0.7f);
  t.AddIsa("r", "t", Source::kTag, 0.6f);
  auto view = MakeView(std::move(t));
  const NodeId x = view->Find("x");

  const std::vector<Ancestor> all = Ancestors(*view, x, 8);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].node, view->Find("l"));
  EXPECT_EQ(all[0].depth, 1u);
  EXPECT_EQ(all[1].node, view->Find("r"));
  EXPECT_EQ(all[1].depth, 1u);
  EXPECT_EQ(all[2].node, view->Find("t"));
  EXPECT_EQ(all[2].depth, 2u);  // via the diamond: minimal, counted once

  const std::vector<Ancestor> capped = Ancestors(*view, x, 8, 2);
  ASSERT_EQ(capped.size(), 2u);
  EXPECT_EQ(capped[1].node, view->Find("r"));

  EXPECT_TRUE(Ancestors(*view, x, 0).empty());
}

// ------------------------------------------------------------------- LCA

TEST(LcaTest, SelfParentAndSiblings) {
  Taxonomy t;
  t.AddIsa("child", "parent", Source::kTag, 0.9f);
  t.AddIsa("s1", "p", Source::kTag, 0.9f);
  t.AddIsa("s2", "p", Source::kTag, 0.9f);
  t.AddIsa("p", "g", Source::kTag, 0.9f);
  auto view = MakeView(std::move(t));

  const LcaResult self =
      LowestCommonAncestor(*view, view->Find("child"), view->Find("child"), 8);
  EXPECT_EQ(self.node, view->Find("child"));
  EXPECT_EQ(self.depth_a, 0u);
  EXPECT_EQ(self.depth_b, 0u);

  const LcaResult parent = LowestCommonAncestor(*view, view->Find("child"),
                                                view->Find("parent"), 8);
  EXPECT_EQ(parent.node, view->Find("parent"));
  EXPECT_EQ(parent.depth_a, 1u);
  EXPECT_EQ(parent.depth_b, 0u);

  const LcaResult siblings =
      LowestCommonAncestor(*view, view->Find("s1"), view->Find("s2"), 8);
  EXPECT_EQ(siblings.node, view->Find("p"));  // p, not the deeper g
  EXPECT_EQ(siblings.depth_a, 1u);
  EXPECT_EQ(siblings.depth_b, 1u);
}

TEST(LcaTest, TieBreaksOnSmallestIdAndRespectsMaxDepth) {
  Taxonomy t;
  // Two equally-near common parents: p1 gets the smaller node id.
  t.AddIsa("s1", "p1", Source::kTag, 0.9f);
  t.AddIsa("s1", "p2", Source::kTag, 0.9f);
  t.AddIsa("s2", "p1", Source::kTag, 0.9f);
  t.AddIsa("s2", "p2", Source::kTag, 0.9f);
  // A 2-up meeting point for the depth-bound check.
  t.AddIsa("a", "ca", Source::kTag, 0.9f);
  t.AddIsa("b", "cb", Source::kTag, 0.9f);
  t.AddIsa("ca", "r", Source::kTag, 0.9f);
  t.AddIsa("cb", "r", Source::kTag, 0.9f);
  t.AddNode("loner", taxonomy::NodeKind::kEntity);
  auto view = MakeView(std::move(t));

  const LcaResult tie =
      LowestCommonAncestor(*view, view->Find("s1"), view->Find("s2"), 8);
  EXPECT_EQ(tie.node, view->Find("p1"));
  EXPECT_LT(view->Find("p1"), view->Find("p2"));

  const LcaResult bounded =
      LowestCommonAncestor(*view, view->Find("a"), view->Find("b"), 1);
  EXPECT_EQ(bounded.node, kInvalidNode);
  const LcaResult met =
      LowestCommonAncestor(*view, view->Find("a"), view->Find("b"), 2);
  EXPECT_EQ(met.node, view->Find("r"));
  EXPECT_EQ(met.depth_a, 2u);
  EXPECT_EQ(met.depth_b, 2u);

  const LcaResult none =
      LowestCommonAncestor(*view, view->Find("s1"), view->Find("loner"), 8);
  EXPECT_EQ(none.node, kInvalidNode);
}

// --------------------------------------------------------------- similar

TEST(SimilarEntitiesTest, JaccardRankingWithEdgeScoreTieBreak) {
  Taxonomy t;
  t.AddIsa("e", "c1", Source::kTag, 0.9f);
  t.AddIsa("e", "c2", Source::kTag, 0.8f);
  // twin shares both hypernyms: Jaccard 2/2 = 1.
  t.AddIsa("twin", "c1", Source::kTag, 0.5f);
  t.AddIsa("twin", "c2", Source::kTag, 0.5f);
  // half shares {c1} of union {c1, c2, c3}: 1/3.
  t.AddIsa("half", "c1", Source::kTag, 0.7f);
  t.AddIsa("half", "c3", Source::kTag, 0.4f);
  // ta and tb both score 1/2 ({c1} over {c1, c2}); the shared-edge
  // (CopyNet) score 0.9 vs 0.3 orders ta first.
  t.AddIsa("ta", "c1", Source::kTag, 0.9f);
  t.AddIsa("tb", "c1", Source::kTag, 0.3f);
  // stranger shares nothing with e and must not appear.
  t.AddIsa("stranger", "c3", Source::kTag, 0.9f);
  auto view = MakeView(std::move(t));
  const NodeId e = view->Find("e");

  const std::vector<Scored> ranked = SimilarEntities(*view, e, 10);
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].node, view->Find("twin"));
  EXPECT_DOUBLE_EQ(ranked[0].score, 1.0);
  EXPECT_EQ(ranked[1].node, view->Find("ta"));
  EXPECT_DOUBLE_EQ(ranked[1].score, 0.5);
  EXPECT_FLOAT_EQ(ranked[1].tie, 0.9f);
  EXPECT_EQ(ranked[2].node, view->Find("tb"));
  EXPECT_DOUBLE_EQ(ranked[2].score, 0.5);
  EXPECT_EQ(ranked[3].node, view->Find("half"));
  EXPECT_DOUBLE_EQ(ranked[3].score, 1.0 / 3.0);
  for (const Scored& s : ranked) EXPECT_NE(s.node, e);  // never itself

  // k truncates after ranking.
  const std::vector<Scored> top2 = SimilarEntities(*view, e, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[1].node, view->Find("ta"));

  // A node with no hypernyms has no siblings.
  EXPECT_TRUE(SimilarEntities(*view, view->Find("c3"), 5).empty());
}

// ---------------------------------------------------------------- expand

TEST(ExpandConceptTest, RanksCandidatesByChildHypernymProfile) {
  Taxonomy t;
  // Seed P has children x, y; both also live under Q, w only under P.
  t.AddIsa("x", "P", Source::kTag, 0.9f);
  t.AddIsa("y", "P", Source::kTag, 0.9f);
  t.AddIsa("w", "P", Source::kTag, 0.9f);
  t.AddIsa("x", "Q", Source::kTag, 0.8f);
  t.AddIsa("y", "Q", Source::kTag, 0.8f);
  // z is the expansion candidate: under Q but not yet under P.
  t.AddIsa("z", "Q", Source::kTag, 0.7f);
  auto view = MakeView(std::move(t));

  const std::vector<Scored> ranked = ExpandConcept(*view, view->Find("P"), 10);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].node, view->Find("z"));
  // Profile weight of Q is 2/3 of P's children; z's hypernym set is {Q},
  // so the normalised overlap is (2/3) / |{Q}| = 2/3.
  EXPECT_DOUBLE_EQ(ranked[0].score, 2.0 / 3.0);
  EXPECT_FLOAT_EQ(ranked[0].tie, 0.7f);
}

TEST(ExpandConceptTest, ChildlessSeedFallsBackToItsOwnHypernyms) {
  Taxonomy t;
  t.AddIsa("C", "G", Source::kTag, 0.9f);
  t.AddIsa("S", "G", Source::kTag, 0.8f);
  auto view = MakeView(std::move(t));
  // C has no children: the profile degrades to C's own hypernyms {G} and
  // ranks C's sibling S instead of returning nothing.
  const std::vector<Scored> ranked = ExpandConcept(*view, view->Find("C"), 10);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].node, view->Find("S"));
  EXPECT_DOUBLE_EQ(ranked[0].score, 1.0);
}

// --------------------------------------------------------- ReasonService

Taxonomy MakeServiceTaxonomy() {
  Taxonomy t;
  t.AddIsa("刘备", "君主", Source::kTag, 0.9f);
  t.AddIsa("曹操", "君主", Source::kTag, 0.8f);
  t.AddIsa("君主", "人物", Source::kTag, 0.7f);
  return t;
}

TEST(ReasonServiceTest, StampsPinnedVersionAndKnownFlags) {
  const Taxonomy taxonomy = MakeServiceTaxonomy();
  taxonomy::ApiService api(&taxonomy);
  ReasonService service(&api);

  const auto isa = service.TryIsa("刘备", "人物", 4);
  ASSERT_TRUE(isa.ok());
  EXPECT_EQ(isa->version, api.version());
  EXPECT_TRUE(isa->entity_known);
  EXPECT_TRUE(isa->concept_known);
  EXPECT_TRUE(isa->isa);
  EXPECT_EQ(isa->depth, 2);
  EXPECT_EQ(isa->path,
            std::vector<std::string>({"刘备", "君主", "人物"}));

  // Unknown names are data, not errors: the known flags plus the pinned
  // version make the HTTP layer's 404 cacheable.
  const auto unknown = service.TryIsa("nobody", "人物", 4);
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(unknown->entity_known);
  EXPECT_TRUE(unknown->concept_known);
  EXPECT_FALSE(unknown->isa);
  EXPECT_EQ(unknown->version, api.version());

  const auto lca = service.TryLca("刘备", "曹操", 8);
  ASSERT_TRUE(lca.ok());
  EXPECT_TRUE(lca->found);
  EXPECT_EQ(lca->lca, "君主");
  EXPECT_EQ(lca->depth_a, 1u);
  EXPECT_EQ(lca->depth_b, 1u);

  const auto similar = service.TrySimilar("刘备", 5);
  ASSERT_TRUE(similar.ok());
  EXPECT_TRUE(similar->known);
  ASSERT_EQ(similar->results.size(), 1u);
  EXPECT_EQ(similar->results[0].name, "曹操");

  const auto expand = service.TryExpand("君主", 5);
  ASSERT_TRUE(expand.ok());
  EXPECT_TRUE(expand->known);

  const ReasonService::UsageStats usage = service.usage();
  EXPECT_EQ(usage.isa_calls, 2u);
  EXPECT_EQ(usage.lca_calls, 1u);
  EXPECT_EQ(usage.similar_calls, 1u);
  EXPECT_EQ(usage.expand_calls, 1u);
  EXPECT_EQ(usage.total(), 5u);
}

TEST(ReasonServiceTest, LimitsCapDepthAndK) {
  const Taxonomy taxonomy = MakeServiceTaxonomy();
  taxonomy::ApiService api(&taxonomy);
  ReasonService::Limits limits;
  limits.max_depth_cap = 1;
  limits.max_k = 1;
  ReasonService service(&api, limits);

  // 刘备 -> 人物 needs two hops; the cap clamps the caller's max_depth.
  const auto isa = service.TryIsa("刘备", "人物", 8);
  ASSERT_TRUE(isa.ok());
  EXPECT_TRUE(isa->entity_known);
  EXPECT_FALSE(isa->isa);

  const auto similar = service.TrySimilar("刘备", 50);
  ASSERT_TRUE(similar.ok());
  EXPECT_LE(similar->results.size(), 1u);
}

TEST(ReasonServiceTest, TransientFaultsSurfaceAsErrors) {
  const Taxonomy taxonomy = MakeServiceTaxonomy();
  taxonomy::ApiService api(&taxonomy);
  ReasonService service(&api);
  util::ScopedFaultInjection scoped("api.query=1", 11);
  const auto isa = service.TryIsa("刘备", "人物", 4);
  EXPECT_FALSE(isa.ok());
}

}  // namespace
}  // namespace cnpb::reason
