#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace cnpb {
namespace {

// ---- util::Histogram (exact, bench-side) ------------------------------------

TEST(HistogramTest, BasicStats) {
  util::Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 3.0);
  EXPECT_NEAR(h.Stddev(), 1.5811, 1e-3);
}

TEST(HistogramTest, PercentileInterpolates) {
  util::Histogram h;
  h.Add(0.0);
  h.Add(10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 10.0);
}

TEST(HistogramTest, EmptyIsExplicitlyUndefined) {
  util::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.Mean()));
  EXPECT_TRUE(std::isnan(h.Min()));
  EXPECT_TRUE(std::isnan(h.Max()));
  EXPECT_TRUE(std::isnan(h.Percentile(50)));
  EXPECT_TRUE(std::isnan(h.Percentile(99)));
  EXPECT_TRUE(std::isnan(h.Stddev()));
  EXPECT_EQ(h.Summary(), "count=0 (empty)");
}

TEST(HistogramTest, SingleSampleIsDegenerate) {
  util::Histogram h;
  h.Add(7.5);
  // Every percentile of a single sample is that sample — no interpolation
  // artifact.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 7.5);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 7.5);
  // Stddev is undefined below two samples and omitted from the summary.
  EXPECT_TRUE(std::isnan(h.Stddev()));
  EXPECT_EQ(h.Summary().find("stddev"), std::string::npos);
  h.Add(9.5);
  EXPECT_FALSE(std::isnan(h.Stddev()));
  EXPECT_NE(h.Summary().find("stddev"), std::string::npos);
}

// ---- obs::BucketHistogram (bounded, serving-side) ---------------------------

TEST(BucketHistogramTest, BucketBoundsAreMonotoneAndConsistent) {
  using Snap = obs::HistogramSnapshot;
  for (size_t i = 0; i + 1 < Snap::kNumBuckets; ++i) {
    EXPECT_LT(Snap::BucketLowerBound(i), Snap::BucketUpperBound(i));
    EXPECT_DOUBLE_EQ(Snap::BucketUpperBound(i), Snap::BucketLowerBound(i + 1));
  }
  EXPECT_TRUE(std::isinf(Snap::BucketUpperBound(Snap::kNumBuckets - 1)));
}

TEST(BucketHistogramTest, BucketIndexMatchesBounds) {
  using Snap = obs::HistogramSnapshot;
  for (size_t i = 0; i < Snap::kNumBuckets; ++i) {
    const double lo = Snap::BucketLowerBound(i);
    EXPECT_EQ(obs::BucketHistogram::BucketIndex(lo), i) << "lower bound " << lo;
    // A value just below the upper bound still lands in bucket i.
    const double inside = lo * 1.01;
    if (inside < Snap::BucketUpperBound(i)) {
      EXPECT_EQ(obs::BucketHistogram::BucketIndex(inside), i);
    }
  }
  // Clamping at both ends plus the pathological inputs.
  EXPECT_EQ(obs::BucketHistogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(obs::BucketHistogram::BucketIndex(-1.0), 0u);
  EXPECT_EQ(obs::BucketHistogram::BucketIndex(1e-300), 0u);
  EXPECT_EQ(obs::BucketHistogram::BucketIndex(
                std::numeric_limits<double>::quiet_NaN()),
            0u);
  EXPECT_EQ(obs::BucketHistogram::BucketIndex(1e300),
            obs::BucketHistogram::kNumBuckets - 1);
  EXPECT_EQ(obs::BucketHistogram::BucketIndex(
                std::numeric_limits<double>::infinity()),
            obs::BucketHistogram::kNumBuckets - 1);
}

TEST(BucketHistogramTest, PercentileWithinBucketResolution) {
  obs::BucketHistogram h;
  util::Rng rng(7);
  // Log-uniform latencies between 1us and 100ms.
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double exponent = -6.0 + 5.0 * rng.Uniform(1000) / 1000.0;
    values.push_back(std::pow(10.0, exponent));
  }
  util::Histogram exact;
  for (const double v : values) {
    h.Observe(v);
    exact.Add(v);
  }
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.TotalCount(), values.size());
  EXPECT_NEAR(snap.Mean(), exact.Mean(), exact.Mean() * 1e-9);
  // The log-linear layout has <=25% relative bucket width (4 sub-buckets per
  // octave), so bucket percentiles track exact percentiles within a bucket.
  for (const double p : {50.0, 90.0, 99.0}) {
    const double approx = snap.Percentile(p);
    const double truth = exact.Percentile(p);
    EXPECT_NEAR(approx, truth, truth * 0.30)
        << "p" << p << " approx=" << approx << " exact=" << truth;
  }
}

TEST(BucketHistogramTest, SnapshotsMergeLosslessly) {
  obs::BucketHistogram a, b;
  for (int i = 1; i <= 1000; ++i) a.Observe(i * 1e-5);
  for (int i = 1; i <= 500; ++i) b.Observe(i * 1e-3);
  obs::HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  obs::BucketHistogram whole;
  for (int i = 1; i <= 1000; ++i) whole.Observe(i * 1e-5);
  for (int i = 1; i <= 500; ++i) whole.Observe(i * 1e-3);
  const obs::HistogramSnapshot expected = whole.Snapshot();
  EXPECT_EQ(merged.buckets, expected.buckets);
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_DOUBLE_EQ(merged.sum, expected.sum);
}

TEST(BucketHistogramTest, EmptySnapshotIsExplicitlyUndefined) {
  const obs::HistogramSnapshot snap = obs::BucketHistogram().Snapshot();
  EXPECT_EQ(snap.TotalCount(), 0u);
  EXPECT_TRUE(std::isnan(snap.Mean()));
  EXPECT_TRUE(std::isnan(snap.Percentile(50)));
}

TEST(BucketHistogramTest, DisabledMetricsSkipObservation) {
  obs::BucketHistogram h;
  obs::SetMetricsEnabled(false);
  h.Observe(1.0);
  obs::SetMetricsEnabled(true);
  h.Observe(1.0);
  EXPECT_EQ(h.Snapshot().count, 1u);
}

TEST(MetricsRegistryTest, InstrumentsAreNamedAndStable) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter("test.counter");
  EXPECT_EQ(c, registry.counter("test.counter"));
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5u);
  registry.gauge("test.gauge")->Set(2.5);
  EXPECT_DOUBLE_EQ(registry.gauge("test.gauge")->value(), 2.5);
  registry.histogram("test.hist")->Observe(0.01);
  const auto snaps = registry.HistogramSnapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].first, "test.hist");
  EXPECT_EQ(snaps[0].second.count, 1u);
}

}  // namespace
}  // namespace cnpb
