#include <gtest/gtest.h>

#include <memory>

#include "core/builder.h"
#include "kb/dump.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "text/segmenter.h"

namespace cnpb {
namespace {

// ---- kb::EncyclopediaDump edge cases ---------------------------------------------

TEST(DumpTest, AddPageAssignsIdsAndIndexes) {
  kb::EncyclopediaDump dump;
  kb::EncyclopediaPage page;
  page.name = "a";
  page.mention = "a";
  const uint64_t id1 = dump.AddPage(page);
  page.name = "b";
  const uint64_t id2 = dump.AddPage(page);
  EXPECT_NE(id1, 0u);
  EXPECT_NE(id1, id2);
  EXPECT_NE(dump.FindByName("a"), nullptr);
  EXPECT_NE(dump.FindByName("b"), nullptr);
  EXPECT_EQ(dump.FindByName("c"), nullptr);
}

TEST(DumpTest, ExplicitIdPreserved) {
  kb::EncyclopediaDump dump;
  kb::EncyclopediaPage page;
  page.page_id = 99;
  page.name = "x";
  page.mention = "x";
  EXPECT_EQ(dump.AddPage(page), 99u);
  EXPECT_EQ(dump.page(0).page_id, 99u);
}

TEST(DumpTest, StatsCountsRegions) {
  kb::EncyclopediaDump dump;
  kb::EncyclopediaPage page;
  page.name = "x";
  page.mention = "x";
  page.bracket = "演员";
  page.abstract = "abc";
  page.infobox = {{"x", "p", "o"}, {"x", "q", "o"}};
  page.tags = {"t1", "t2", "t3"};
  dump.AddPage(page);
  kb::EncyclopediaPage empty;
  empty.name = "y";
  empty.mention = "y";
  dump.AddPage(empty);
  const kb::DumpStats stats = dump.Stats();
  EXPECT_EQ(stats.num_pages, 2u);
  EXPECT_EQ(stats.num_brackets, 1u);
  EXPECT_EQ(stats.num_abstracts, 1u);
  EXPECT_EQ(stats.num_triples, 2u);
  EXPECT_EQ(stats.num_tags, 3u);
}

TEST(DumpTest, LoadRejectsWrongFieldCount) {
  const std::string path = ::testing::TempDir() + "/bad_dump.tsv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("1\tname\tmention\n", f);  // 3 fields, want 8
  fclose(f);
  EXPECT_FALSE(kb::EncyclopediaDump::Load(path).ok());
  std::remove(path.c_str());
}

// ---- builder source toggles --------------------------------------------------------

class BuilderToggleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::WorldModel::Config wc;
    wc.num_entities = 1200;
    world_ = new synth::WorldModel(synth::WorldModel::Generate(wc));
    output_ = new synth::EncyclopediaGenerator::Output(
        synth::EncyclopediaGenerator::Generate(*world_, {}));
    text::Segmenter segmenter(&world_->lexicon());
    const auto corpus = synth::CorpusGenerator::Generate(
        *world_, output_->dump, segmenter, {});
    corpus_words_ = new std::vector<std::vector<std::string>>();
    for (const auto& sentence : corpus.sentences) {
      std::vector<std::string> words;
      for (const auto& token : sentence) words.push_back(token.word);
      corpus_words_->push_back(std::move(words));
    }
  }
  static void TearDownTestSuite() {
    delete corpus_words_;
    delete output_;
    delete world_;
  }

  static core::CnProbaseBuilder::Report BuildWith(
      bool bracket, bool abstract_on, bool infobox, bool tag) {
    core::CnProbaseBuilder::Config config;
    config.enable_bracket = bracket;
    config.enable_abstract = abstract_on;
    config.enable_infobox = infobox;
    config.enable_tag = tag;
    config.neural.epochs = 1;
    config.neural.max_train_samples = 200;
    core::CnProbaseBuilder::Report report;
    core::CnProbaseBuilder::BuildCandidates(output_->dump, world_->lexicon(),
                                            *corpus_words_, config, &report);
    return report;
  }

  static synth::WorldModel* world_;
  static synth::EncyclopediaGenerator::Output* output_;
  static std::vector<std::vector<std::string>>* corpus_words_;
};

synth::WorldModel* BuilderToggleTest::world_ = nullptr;
synth::EncyclopediaGenerator::Output* BuilderToggleTest::output_ = nullptr;
std::vector<std::vector<std::string>>* BuilderToggleTest::corpus_words_ =
    nullptr;

TEST_F(BuilderToggleTest, TagOnly) {
  const auto report = BuildWith(false, false, false, true);
  EXPECT_EQ(report.bracket_candidates, 0u);
  EXPECT_EQ(report.abstract_candidates, 0u);
  EXPECT_EQ(report.infobox_candidates, 0u);
  EXPECT_GT(report.tag_candidates, 100u);
  EXPECT_EQ(report.merged_candidates, report.tag_candidates);
}

TEST_F(BuilderToggleTest, BracketOnly) {
  const auto report = BuildWith(true, false, false, false);
  EXPECT_GT(report.bracket_candidates, 100u);
  EXPECT_EQ(report.tag_candidates, 0u);
  EXPECT_EQ(report.merged_candidates, report.bracket_candidates);
}

TEST_F(BuilderToggleTest, InfoboxStillWorksWithoutBracketOutput) {
  // Infobox discovery needs the bracket prior internally even when bracket
  // candidates are not emitted.
  const auto report = BuildWith(false, false, true, false);
  EXPECT_EQ(report.bracket_candidates, 0u);
  EXPECT_GT(report.infobox_candidates, 100u);
  EXPECT_FALSE(report.discovery.selected.empty());
}

TEST_F(BuilderToggleTest, MergedIsAtMostSumOfSources) {
  const auto report = BuildWith(true, true, true, true);
  EXPECT_LE(report.merged_candidates,
            report.bracket_candidates + report.abstract_candidates +
                report.infobox_candidates + report.tag_candidates);
  EXPECT_GT(report.merged_candidates, report.bracket_candidates);
}

// ---- provenance of merged candidates -------------------------------------------------

TEST_F(BuilderToggleTest, ScoresFollowSourcePriors) {
  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 1;
  config.neural.max_train_samples = 200;
  config.bracket_prior = 0.9f;
  config.tag_prior = 0.5f;
  core::CnProbaseBuilder::Report report;
  const auto candidates = core::CnProbaseBuilder::BuildCandidates(
      output_->dump, world_->lexicon(), *corpus_words_, config, &report);
  for (const auto& candidate : candidates) {
    if (candidate.source == taxonomy::Source::kBracket) {
      EXPECT_FLOAT_EQ(candidate.score, 0.9f);
    } else if (candidate.source == taxonomy::Source::kTag) {
      EXPECT_FLOAT_EQ(candidate.score, 0.5f);
    }
  }
}

}  // namespace
}  // namespace cnpb
