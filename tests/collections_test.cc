// Multi-collection tenancy (ISSUE 10 tentpole): the CollectionManager's
// routing table (/v1/collections, /v1/c/<name>/..., bare fallback), its
// byte-compatibility promise (a one-collection manager answers exactly
// like a standalone ApiEndpoints stack), per-collection quota plumbing,
// registry persistence across reopen (mmap-backed restore), and the
// serve-while-update isolation contract: a publish into collection A never
// perturbs collection B's version stamps — including while an ingest
// daemon is feeding A.
#include "collections/manager.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "taxonomy/api_service.h"
#include "taxonomy/taxonomy.h"
#include "taxonomy/view.h"
#include "util/atomic_file.h"

namespace cnpb::collections {
namespace {

using taxonomy::Source;
using taxonomy::Taxonomy;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/collections_test_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // reruns share the temp dir
  return dir;
}

Taxonomy MakeTaxonomyA() {
  Taxonomy t;
  t.AddIsa("刘备", "君主", Source::kTag, 0.9f);
  t.AddIsa("曹操", "君主", Source::kTag, 0.8f);
  t.AddIsa("君主", "人物", Source::kTag, 0.7f);
  return t;
}

Taxonomy MakeTaxonomyB() {
  Taxonomy t;
  t.AddIsa("b_ent", "b_cat", Source::kTag, 0.9f);
  t.AddIsa("b_cat", "b_root", Source::kTag, 0.8f);
  return t;
}

std::shared_ptr<const taxonomy::HeapServingView> ViewA() {
  Taxonomy t = MakeTaxonomyA();
  taxonomy::MentionIndex mentions;
  mentions["主公"].push_back(t.Find("刘备"));
  return std::make_shared<taxonomy::HeapServingView>(
      Taxonomy::Freeze(std::move(t)), std::move(mentions));
}

std::shared_ptr<const taxonomy::HeapServingView> ViewB() {
  return std::make_shared<taxonomy::HeapServingView>(
      Taxonomy::Freeze(MakeTaxonomyB()), taxonomy::MentionIndex{});
}

// Handlers are plain functions of HttpRequest, so routing tests hand-build
// requests instead of standing up a live server.
HttpRequest MakeGet(
    const std::string& path,
    std::vector<std::pair<std::string, std::string>> params = {}) {
  HttpRequest request;
  request.method = "GET";
  request.path = path;
  request.target = path;
  request.params = std::move(params);
  return request;
}

std::string Header(const HttpResponse& response, std::string_view name) {
  for (const auto& [key, value] : response.headers) {
    if (key == name) return value;
  }
  return "";
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ------------------------------------------------------- routing contract

TEST(CollectionManagerTest, BareAndPrefixedDefaultMatchStandaloneEndpoints) {
  auto view = ViewA();
  taxonomy::ApiService standalone_api(view);
  server::ApiEndpoints standalone(&standalone_api);

  CollectionManager manager({});
  ASSERT_TRUE(manager.AddCollection("default", view).ok());

  const std::vector<HttpRequest> requests = {
      MakeGet("/v1/men2ent", {{"mention", "主公"}}),
      MakeGet("/v1/men2ent", {{"mention", "nobody"}}),
      MakeGet("/v1/getConcept", {{"entity", "刘备"}, {"transitive", "1"}}),
      MakeGet("/v1/getEntity", {{"concept", "君主"}, {"limit", "10"}}),
      MakeGet("/v1/isa", {{"entity", "刘备"}, {"concept", "人物"}}),
      MakeGet("/v1/lca", {{"a", "刘备"}, {"b", "曹操"}}),
      MakeGet("/v1/similar", {{"entity", "刘备"}}),
      MakeGet("/v1/expand", {{"concept", "君主"}}),
  };
  for (const HttpRequest& request : requests) {
    const HttpResponse want = standalone.Handle(request);
    const HttpResponse bare = manager.Handle(request);
    EXPECT_EQ(bare.status, want.status) << request.path;
    EXPECT_EQ(bare.body, want.body) << request.path;
    EXPECT_EQ(Header(bare, server::ApiEndpoints::kVersionHeader),
              Header(want, server::ApiEndpoints::kVersionHeader))
        << request.path;

    HttpRequest prefixed = request;
    prefixed.path = "/v1/c/default" + request.path.substr(3);
    prefixed.target = prefixed.path;
    const HttpResponse routed = manager.Handle(prefixed);
    EXPECT_EQ(routed.status, want.status) << prefixed.path;
    EXPECT_EQ(routed.body, want.body) << prefixed.path;
  }

  // Operational endpoints route under the prefix too.
  EXPECT_EQ(manager.Handle(MakeGet("/v1/c/default/healthz")).status, 200);
  EXPECT_EQ(manager.Handle(MakeGet("/v1/c/default/metrics")).status, 200);
  EXPECT_EQ(manager.Handle(MakeGet("/healthz")).status, 200);
}

TEST(CollectionManagerTest, UnknownCollectionAndMissingDefault) {
  CollectionManager manager({});
  ASSERT_TRUE(manager.AddCollection("only", ViewA()).ok());

  const HttpResponse missing =
      manager.Handle(MakeGet("/v1/c/nope/men2ent", {{"mention", "x"}}));
  EXPECT_EQ(missing.status, 404);
  EXPECT_TRUE(Contains(missing.body, "no such collection: nope"));

  // Bare paths need the default collection, which was never registered.
  const HttpResponse bare =
      manager.Handle(MakeGet("/v1/men2ent", {{"mention", "x"}}));
  EXPECT_EQ(bare.status, 503);
  EXPECT_TRUE(Contains(bare.body, "default collection not registered"));
}

TEST(CollectionManagerTest, ListAndInfoEndpoints) {
  CollectionManager manager({});
  CollectionManager::Quotas quotas;
  quotas.max_in_flight = 3;
  quotas.deadline = std::chrono::microseconds(1500);
  ASSERT_TRUE(manager.AddCollection("default", ViewA()).ok());
  ASSERT_TRUE(manager.AddCollection("b", ViewB(), quotas).ok());

  const HttpResponse list = manager.Handle(MakeGet("/v1/collections"));
  EXPECT_EQ(list.status, 200);
  EXPECT_TRUE(Contains(list.body, "\"count\":2"));
  EXPECT_TRUE(Contains(list.body, "\"name\":\"default\""));
  EXPECT_TRUE(Contains(list.body, "\"name\":\"b\""));

  HttpRequest post = MakeGet("/v1/collections");
  post.method = "POST";
  const HttpResponse rejected = manager.Handle(post);
  EXPECT_EQ(rejected.status, 405);
  EXPECT_EQ(Header(rejected, "Allow"), "GET, HEAD");

  const HttpResponse info = manager.Handle(MakeGet("/v1/c/b"));
  EXPECT_EQ(info.status, 200);
  EXPECT_TRUE(Contains(info.body, "\"collection\":\"b\""));
  EXPECT_TRUE(Contains(info.body, "\"max_in_flight\":3"));
  EXPECT_TRUE(Contains(info.body, "\"deadline_us\":1500"));
  EXPECT_FALSE(Header(info, server::ApiEndpoints::kVersionHeader).empty());

  // Quotas land on the collection's own ApiService as serving limits.
  ASSERT_NE(manager.service("b"), nullptr);
  const taxonomy::ApiService::ServingLimits limits =
      manager.service("b")->serving_limits();
  EXPECT_EQ(limits.max_in_flight, 3u);
  EXPECT_EQ(limits.deadline, std::chrono::microseconds(1500));
}

TEST(CollectionManagerTest, RegistrationValidation) {
  CollectionManager manager({});
  ASSERT_TRUE(manager.AddCollection("default", ViewA()).ok());
  EXPECT_FALSE(manager.AddCollection("default", ViewB()).ok());  // duplicate
  EXPECT_FALSE(manager.AddCollection("bad/name", ViewB()).ok());
  EXPECT_FALSE(manager.AddCollection("", ViewB()).ok());
  EXPECT_FALSE(manager.AddCollection("noview", nullptr).ok());
  EXPECT_EQ(manager.size(), 1u);

  // The default collection cannot be dropped; others can.
  ASSERT_TRUE(manager.AddCollection("extra", ViewB()).ok());
  EXPECT_FALSE(manager.DropCollection("default").ok());
  EXPECT_FALSE(manager.DropCollection("ghost").ok());
  EXPECT_TRUE(manager.DropCollection("extra").ok());
  EXPECT_EQ(manager.size(), 1u);
  EXPECT_EQ(manager.Handle(MakeGet("/v1/c/extra")).status, 404);
}

// ------------------------------------------------------------ persistence

TEST(CollectionManagerTest, RegistryAndSnapshotsSurviveReopen) {
  CollectionManager::Options options;
  options.root_dir = FreshDir("reopen");

  CollectionManager::Quotas quotas;
  quotas.max_in_flight = 5;
  quotas.deadline = std::chrono::microseconds(2000);

  const HttpRequest men2ent = MakeGet("/v1/men2ent", {{"mention", "主公"}});
  const HttpRequest concept_b =
      MakeGet("/v1/c/b/getConcept", {{"entity", "b_ent"}, {"transitive", "1"}});
  std::string want_men2ent;
  std::string want_concept_b;
  {
    CollectionManager manager(options);
    ASSERT_TRUE(manager.AddCollection("default", ViewA(), quotas).ok());
    ASSERT_TRUE(manager.AddCollection("b", ViewB()).ok());
    const HttpResponse a = manager.Handle(men2ent);
    ASSERT_EQ(a.status, 200);
    want_men2ent = a.body;
    const HttpResponse b = manager.Handle(concept_b);
    ASSERT_EQ(b.status, 200);
    want_concept_b = b.body;
  }

  CollectionManager reopened(options);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.names(),
            std::vector<std::string>({"default", "b"}));

  // Restored collections serve byte-identical answers, now mmap-backed.
  const HttpResponse a = reopened.Handle(men2ent);
  EXPECT_EQ(a.status, 200);
  EXPECT_EQ(a.body, want_men2ent);
  const HttpResponse b = reopened.Handle(concept_b);
  EXPECT_EQ(b.status, 200);
  EXPECT_EQ(b.body, want_concept_b);

  // Quotas came back from the registry, not from defaults.
  ASSERT_NE(reopened.service("default"), nullptr);
  EXPECT_EQ(reopened.service("default")->serving_limits().max_in_flight, 5u);
  EXPECT_EQ(reopened.service("default")->serving_limits().deadline,
            std::chrono::microseconds(2000));
}

// ---------------------------------------------------- isolation contracts

// Satellite 3: publishes into collection A while readers hammer B — B's
// version stamp must never move, and every B answer stays identical.
TEST(CollectionManagerTest, PublishIntoANeverPerturbsB) {
  CollectionManager manager({});
  ASSERT_TRUE(manager.AddCollection("default", ViewA()).ok());
  ASSERT_TRUE(manager.AddCollection("b", ViewB()).ok());

  const HttpRequest probe =
      MakeGet("/v1/c/b/getConcept", {{"entity", "b_ent"}});
  const HttpResponse baseline = manager.Handle(probe);
  ASSERT_EQ(baseline.status, 200);
  const std::string b_version =
      Header(baseline, server::ApiEndpoints::kVersionHeader);
  ASSERT_FALSE(b_version.empty());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> perturbed{0};
  std::atomic<uint64_t> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const HttpResponse response = manager.Handle(probe);
      if (response.status != 200 || response.body != baseline.body ||
          Header(response, server::ApiEndpoints::kVersionHeader) !=
              b_version) {
        perturbed.fetch_add(1, std::memory_order_relaxed);
      }
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const uint64_t a_before = manager.service("default")->version();
  constexpr int kPublishes = 5;
  for (int i = 0; i < kPublishes; ++i) {
    manager.service("default")
        ->Publish(Taxonomy::Freeze(MakeTaxonomyA()),
                  taxonomy::MentionIndex{});
    // Let the reader observe B between publishes.
    const uint64_t before = reads.load(std::memory_order_relaxed);
    while (reads.load(std::memory_order_relaxed) < before + 20) {
      std::this_thread::yield();
    }
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(perturbed.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(manager.service("default")->version(), a_before + kPublishes);
  EXPECT_EQ(manager.service("b")->version(), 1u);
}

// An ingest daemon feeding one collection over HTTP: the submit is
// durable, applied and published into that collection only.
TEST(CollectionManagerTest, IngestCollectionAppliesWithoutTouchingOthers) {
  CollectionManager::Options options;
  options.root_dir = FreshDir("ingest");
  CollectionManager manager(options);
  ASSERT_TRUE(manager.AddCollection("default", ViewA()).ok());

  kb::EncyclopediaDump base;
  for (int i = 0; i < 5; ++i) {
    kb::EncyclopediaPage page;
    page.name = "base" + std::to_string(i);
    page.mention = page.name;
    page.tags = {"anchor"};
    base.AddPage(std::move(page));
  }
  text::Lexicon lexicon;
  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 1;
  config.verification.use_syntax = false;
  config.verification.use_incompatible = false;
  core::IncrementalUpdater updater(base, &lexicon, {}, config);

  ingest::IngestDaemon::Options daemon_options;
  daemon_options.publish_min_pages = 1;
  daemon_options.publish_max_delay = std::chrono::milliseconds(20);
  ASSERT_TRUE(
      manager.AddIngestCollection("ing", &updater, daemon_options).ok());
  ASSERT_NE(manager.daemon("ing"), nullptr);

  const HttpResponse before = manager.Handle(
      MakeGet("/v1/c/ing/getEntity", {{"concept", "anchor"}, {"limit", "100"}}));
  ASSERT_EQ(before.status, 200);
  EXPECT_TRUE(Contains(before.body, "base0"));
  EXPECT_FALSE(Contains(before.body, "zz_new"));
  const uint64_t ing_before = manager.service("ing")->version();
  const uint64_t default_before = manager.service("default")->version();

  HttpRequest submit = MakeGet("/v1/c/ing/ingest");
  submit.method = "POST";
  submit.body = "u\tzz_new\tzz_new\t\t\t\tanchor\n";
  const HttpResponse accepted = manager.Handle(submit);
  ASSERT_EQ(accepted.status, 200) << accepted.body;
  EXPECT_TRUE(Contains(accepted.body, "\"accepted\":1"));

  ASSERT_TRUE(manager.daemon("ing")->Flush().ok());
  const HttpResponse after = manager.Handle(
      MakeGet("/v1/c/ing/getEntity", {{"concept", "anchor"}, {"limit", "100"}}));
  ASSERT_EQ(after.status, 200);
  EXPECT_TRUE(Contains(after.body, "zz_new"));
  EXPECT_GT(manager.service("ing")->version(), ing_before);

  // The other collection never moved.
  EXPECT_EQ(manager.service("default")->version(), default_before);
  const HttpResponse untouched =
      manager.Handle(MakeGet("/v1/men2ent", {{"mention", "主公"}}));
  EXPECT_EQ(untouched.status, 200);

  // Ingest status routes under the prefix as well.
  const HttpResponse status =
      manager.Handle(MakeGet("/v1/c/ing/ingest_status"));
  EXPECT_EQ(status.status, 200);

  EXPECT_TRUE(manager.StopAll().ok());

  // Reopen: the snapshot-backed collection is restored; the ingest row is
  // preserved in the registry (for a future re-attach) without being
  // served, since its updater cannot be reconstructed from disk alone.
  CollectionManager reopened(options);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.names(), std::vector<std::string>({"default"}));
  ASSERT_TRUE(reopened.AddCollection("later", ViewB()).ok());
  auto raw = util::ReadFileToString(options.root_dir + "/collections.reg");
  ASSERT_TRUE(raw.ok());
  auto payload = util::StripVerifyChecksumFooter(
      std::move(*raw), options.root_dir + "/collections.reg");
  ASSERT_TRUE(payload.ok());
  EXPECT_TRUE(Contains(*payload, "ing\t"));
  EXPECT_TRUE(Contains(*payload, "later\t"));
}

}  // namespace
}  // namespace cnpb::collections
