#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "core/incremental.h"
#include "eval/precision.h"
#include "taxonomy/serialize.h"
#include "util/fault_injection.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"

namespace cnpb {
namespace {

class IncrementalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::WorldModel::Config wc;
    wc.num_entities = 3000;
    world_ = new synth::WorldModel(synth::WorldModel::Generate(wc));
    output_ = new synth::EncyclopediaGenerator::Output(
        synth::EncyclopediaGenerator::Generate(*world_, {}));
    text::Segmenter segmenter(&world_->lexicon());
    const auto corpus = synth::CorpusGenerator::Generate(
        *world_, output_->dump, segmenter, {});
    corpus_words_ = new std::vector<std::vector<std::string>>();
    for (const auto& sentence : corpus.sentences) {
      std::vector<std::string> words;
      for (const auto& token : sentence) words.push_back(token.word);
      corpus_words_->push_back(std::move(words));
    }
    // Base = first 70% of pages; the rest arrives in two batches.
    base_ = new kb::EncyclopediaDump();
    batch1_ = new std::vector<kb::EncyclopediaPage>();
    batch2_ = new std::vector<kb::EncyclopediaPage>();
    const size_t n = output_->dump.size();
    for (size_t i = 0; i < n; ++i) {
      kb::EncyclopediaPage page = output_->dump.page(i);
      page.page_id = 0;
      if (i < n * 7 / 10) {
        base_->AddPage(std::move(page));
      } else if (i < n * 85 / 100) {
        batch1_->push_back(std::move(page));
      } else {
        batch2_->push_back(std::move(page));
      }
    }
  }
  static void TearDownTestSuite() {
    delete batch2_;
    delete batch1_;
    delete base_;
    delete corpus_words_;
    delete output_;
    delete world_;
  }

  static core::CnProbaseBuilder::Config Config() {
    core::CnProbaseBuilder::Config config;
    config.neural.epochs = 1;
    config.neural.max_train_samples = 500;
    for (const char* word : synth::ThematicWords()) {
      config.verification.syntax.thematic_lexicon.emplace_back(word);
    }
    return config;
  }

  static eval::Oracle Oracle() {
    return [](const std::string& hypo, const std::string& hyper) {
      return output_->gold.IsCorrect(hypo, hyper);
    };
  }

  static synth::WorldModel* world_;
  static synth::EncyclopediaGenerator::Output* output_;
  static std::vector<std::vector<std::string>>* corpus_words_;
  static kb::EncyclopediaDump* base_;
  static std::vector<kb::EncyclopediaPage>* batch1_;
  static std::vector<kb::EncyclopediaPage>* batch2_;
};

synth::WorldModel* IncrementalTest::world_ = nullptr;
synth::EncyclopediaGenerator::Output* IncrementalTest::output_ = nullptr;
std::vector<std::vector<std::string>>* IncrementalTest::corpus_words_ = nullptr;
kb::EncyclopediaDump* IncrementalTest::base_ = nullptr;
std::vector<kb::EncyclopediaPage>* IncrementalTest::batch1_ = nullptr;
std::vector<kb::EncyclopediaPage>* IncrementalTest::batch2_ = nullptr;

TEST_F(IncrementalTest, BatchesGrowTheTaxonomyAtStablePrecision) {
  core::IncrementalUpdater updater(*base_, &world_->lexicon(), *corpus_words_,
                                   Config());
  const size_t base_edges = updater.taxonomy().num_edges();
  const double base_precision =
      eval::ExactPrecision(updater.taxonomy(), Oracle()).precision();
  EXPECT_GT(base_edges, 1000u);
  EXPECT_GT(base_precision, 0.92);

  const auto report1 = updater.ApplyBatch(*batch1_);
  EXPECT_EQ(report1.pages_added, batch1_->size());
  EXPECT_GT(report1.candidates, 100u);
  EXPECT_GT(updater.taxonomy().num_edges(), base_edges);

  const auto report2 = updater.ApplyBatch(*batch2_);
  EXPECT_EQ(report2.pages_added, batch2_->size());
  const double final_precision =
      eval::ExactPrecision(updater.taxonomy(), Oracle()).precision();
  EXPECT_GT(final_precision, 0.92);

  // New entities from the batches are now queryable.
  size_t found = 0;
  for (const auto& page : *batch2_) {
    if (updater.taxonomy().Find(page.name) != taxonomy::kInvalidNode) ++found;
  }
  EXPECT_GT(found, batch2_->size() / 2);
}

TEST_F(IncrementalTest, DuplicatePagesAreSkipped) {
  core::IncrementalUpdater updater(*base_, &world_->lexicon(), *corpus_words_,
                                   Config());
  // Re-applying base pages is a no-op.
  std::vector<kb::EncyclopediaPage> dupes(base_->pages().begin(),
                                          base_->pages().begin() + 50);
  const auto report = updater.ApplyBatch(dupes);
  EXPECT_EQ(report.pages_added, 0u);
  EXPECT_EQ(report.candidates, 0u);
}

TEST_F(IncrementalTest, EmptyBatchIsCheap) {
  core::IncrementalUpdater updater(*base_, &world_->lexicon(), *corpus_words_,
                                   Config());
  const auto report = updater.ApplyBatch({});
  EXPECT_EQ(report.pages_added, 0u);
  EXPECT_EQ(report.accepted, 0u);
}

TEST_F(IncrementalTest, SaveSnapshotIsDurableAndRetriesFaults) {
  core::IncrementalUpdater updater(*base_, &world_->lexicon(), *corpus_words_,
                                   Config());
  const std::string path = ::testing::TempDir() + "/incremental_snapshot.tsv";
  ASSERT_TRUE(updater.SaveSnapshot(path).ok());
  auto loaded = taxonomy::LoadTaxonomyWithFallback(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_edges(), updater.taxonomy().num_edges());

  // A bounded burst of injected rename faults is absorbed by the retry; the
  // snapshot still lands.
  {
    util::ScopedFaultInjection scoped("taxonomy.save.rename=1:limit=2", 13);
    EXPECT_TRUE(updater.SaveSnapshot(path).ok());
  }
  // Faults outlasting the retries lose only this write: the previous
  // snapshot (primary or .bak) still loads.
  {
    util::ScopedFaultInjection scoped("taxonomy.save.write=1", 13);
    EXPECT_FALSE(updater.SaveSnapshot(path).ok());
  }
  auto recovered = taxonomy::LoadTaxonomyWithFallback(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->num_edges(), updater.taxonomy().num_edges());
}

TEST_F(IncrementalTest, SaversReportThePersistedGeneration) {
  core::IncrementalUpdater updater(*base_, &world_->lexicon(), *corpus_words_,
                                   Config());
  const std::string path = ::testing::TempDir() + "/incremental_gen.tsv";
  uint64_t generation = 0;
  ASSERT_TRUE(updater.SaveSnapshot(path, &generation).ok());
  EXPECT_EQ(generation, updater.generation());

  std::vector<kb::EncyclopediaPage> two(batch1_->begin(), batch1_->begin() + 2);
  updater.ApplyBatch(two);
  uint64_t generation2 = 0;
  ASSERT_TRUE(updater.SaveSnapshot(path, &generation2).ok());
  EXPECT_EQ(generation2, updater.generation());
  EXPECT_GT(generation2, generation);

  const std::string snap = ::testing::TempDir() + "/incremental_gen.snap";
  uint64_t bin_generation = 0;
  ASSERT_TRUE(updater.SaveBinarySnapshot(snap, &bin_generation).ok());
  EXPECT_EQ(bin_generation, generation2);

  // A failed save must not report: the out-param names the generation of
  // bytes that actually landed, so a durable-cursor caller attributing a
  // checkpoint to it can never stamp a generation that is not on disk.
  uint64_t untouched = 999;
  util::ScopedFaultInjection scoped("taxonomy.save.write=1", 13);
  EXPECT_FALSE(updater.SaveSnapshot(path, &untouched).ok());
  EXPECT_EQ(untouched, 999u);
}

TEST_F(IncrementalTest, BatchPagesGetDistinctFreshIds) {
  core::IncrementalUpdater updater(*base_, &world_->lexicon(), *corpus_words_,
                                   Config());
  // The seed zeroed every batch page's id before insertion, so batch pages
  // collided instead of continuing the base dump's id sequence.
  uint64_t max_base_id = 0;
  for (const auto& page : updater.dump().pages()) {
    max_base_id = std::max(max_base_id, page.page_id);
  }
  std::vector<kb::EncyclopediaPage> two(batch1_->begin(), batch1_->begin() + 2);
  const auto report = updater.ApplyBatch(two);
  ASSERT_EQ(report.pages_added, 2u);

  const kb::EncyclopediaPage* first = updater.dump().FindByName(two[0].name);
  const kb::EncyclopediaPage* second = updater.dump().FindByName(two[1].name);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first->page_id, second->page_id);
  EXPECT_GT(first->page_id, max_base_id);
  EXPECT_GT(second->page_id, max_base_id);

  // Ids are unique across the whole union, not just the batch.
  std::unordered_set<uint64_t> ids;
  for (const auto& page : updater.dump().pages()) {
    EXPECT_NE(page.page_id, 0u);
    EXPECT_TRUE(ids.insert(page.page_id).second)
        << "duplicate page id " << page.page_id;
  }
}

TEST(IncrementalRevocationTest, RevocationsAreCountedSeparatelyFromRejections) {
  // A controlled world where new corpus evidence flips a hypernym into a
  // named entity: every pre-existing edge under it must be revoked, while
  // the batch's own candidate is rejected — two different outcomes the seed
  // conflated (accepted = max(0, after - before) hid both).
  text::Lexicon lexicon;
  kb::EncyclopediaDump base;
  constexpr size_t kBasePages = 6;
  for (size_t i = 0; i < kBasePages; ++i) {
    kb::EncyclopediaPage page;
    page.name = "e" + std::to_string(i);
    page.mention = page.name;
    page.tags = {"goodconcept"};
    base.AddPage(std::move(page));
  }
  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 1;
  config.verification.use_syntax = false;
  config.verification.use_incompatible = false;  // isolate the NER strategy
  core::IncrementalUpdater updater(base, &lexicon, {}, config);
  ASSERT_EQ(updater.taxonomy().num_edges(), kBasePages);

  // The batch adds one more hyponym of "goodconcept", and corpus sentences
  // placing "goodconcept" after a locative preposition — NER support s1
  // jumps to 1.0, so verification now vetoes every edge under it.
  kb::EncyclopediaPage straggler;
  straggler.name = "e_new";
  straggler.mention = straggler.name;
  straggler.tags = {"goodconcept"};
  const auto report =
      updater.ApplyBatch({straggler}, {{"位于", "goodconcept"}});

  EXPECT_EQ(report.pages_added, 1u);
  EXPECT_EQ(report.candidates, 1u);
  EXPECT_EQ(report.accepted, 0u);
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_EQ(report.revoked, kBasePages);
  EXPECT_EQ(updater.taxonomy().num_edges(), 0u);
}

TEST_F(IncrementalTest, ComparableToFullRebuild) {
  core::IncrementalUpdater updater(*base_, &world_->lexicon(), *corpus_words_,
                                   Config());
  updater.ApplyBatch(*batch1_);
  updater.ApplyBatch(*batch2_);

  core::CnProbaseBuilder::Report full_report;
  const auto full = core::CnProbaseBuilder::Build(
      output_->dump, world_->lexicon(), *corpus_words_, Config(),
      &full_report);

  // The incremental result covers a comparable number of relations (within
  // 15%) at comparable precision (within 2 points).
  const double ratio = static_cast<double>(updater.taxonomy().num_edges()) /
                       static_cast<double>(full.num_edges());
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
  const double incremental_precision =
      eval::ExactPrecision(updater.taxonomy(), Oracle()).precision();
  const double full_precision =
      eval::ExactPrecision(full, Oracle()).precision();
  EXPECT_NEAR(incremental_precision, full_precision, 0.02);
}

}  // namespace
}  // namespace cnpb
