#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "util/hash.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/tsv.h"

namespace cnpb::util {
namespace {

// ---- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing page");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing page");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(InvalidArgumentError("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---- strings ----------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, SplitByMultiByteSeparator) {
  EXPECT_EQ(SplitBy("男演员、歌手", "、"),
            (std::vector<std::string>{"男演员", "歌手"}));
  EXPECT_EQ(SplitBy("无分隔", "、"), (std::vector<std::string>{"无分隔"}));
}

TEST(StringsTest, JoinRoundTripsSplit) {
  const std::vector<std::string> pieces = {"a", "b", "c"};
  EXPECT_EQ(Split(Join(pieces, ","), ','), pieces);
}

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x \t\n"), "x");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace(" \t "), "");
}

TEST(StringsTest, StartsEndsContains) {
  EXPECT_TRUE(StartsWith("首席战略官", "首席"));
  EXPECT_FALSE(StartsWith("首席", "首席战略官"));
  EXPECT_TRUE(EndsWith("男演员", "演员"));
  EXPECT_FALSE(EndsWith("演员表", "演员"));
  EXPECT_TRUE(Contains("教育机构", "教育"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 0.5), "0.50");
}

TEST(StringsTest, CommaSeparated) {
  EXPECT_EQ(CommaSeparated(0), "0");
  EXPECT_EQ(CommaSeparated(999), "999");
  EXPECT_EQ(CommaSeparated(1000), "1,000");
  EXPECT_EQ(CommaSeparated(15066667), "15,066,667");
}

// ---- rng ------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end()), b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(42);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  EXPECT_NE(child1.Next(), child2.Next());
}

TEST(ZipfSamplerTest, SkewTowardsHead) {
  Rng rng(3);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], 0);
}

TEST(ZipfSamplerTest, AllIndicesInRange) {
  Rng rng(4);
  ZipfSampler zipf(10, 0.8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 10u);
}

// ---- hash -------------------------------------------------------------------

TEST(HashTest, Fnv1aStableKnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(HashTest, CombineOrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ---- tsv --------------------------------------------------------------------

TEST(TsvTest, EscapeRoundTrip) {
  const std::string nasty = "a\tb\nc\\d";
  EXPECT_EQ(TsvUnescape(TsvEscape(nasty)), nasty);
  EXPECT_EQ(TsvEscape("a\tb"), "a\\tb");
}

TEST(TsvTest, AdversarialFieldsRoundTrip) {
  // Regression: a field ending in a lone backslash (and every other
  // backslash shape) must survive escape -> unescape exactly.
  const std::vector<std::string> fields = {
      "\\",        // lone backslash
      "\t",        // raw tab
      "\\n",       // backslash then 'n' (NOT a newline)
      "trailing\\",
      "\\\\",      // two backslashes
      "\\t",       // backslash then 't'
      "a\nb",      // raw newline
      "\\\t\\",    // backslash, tab, backslash
      "",          // empty field
  };
  for (const std::string& field : fields) {
    EXPECT_EQ(TsvUnescape(TsvEscape(field)), field)
        << "field bytes: " << testing::PrintToString(field);
  }
  // Unescape never swallows backslashes it does not understand, so escaping
  // what it produced gets back to the same escaped form.
  EXPECT_EQ(TsvUnescape("a\\xb"), "a\\xb");
  EXPECT_EQ(TsvUnescape("end\\"), "end\\");
}

TEST(TsvTest, RandomByteStringsRoundTrip) {
  // Property: escape/unescape is an exact round-trip for arbitrary byte
  // strings, including ones dense in '\\', '\t', and '\n'.
  Rng rng(20240806);
  const char alphabet[] = {'\\', '\t', '\n', 'a', 'b', '\\', 0x7f, ' '};
  for (int trial = 0; trial < 500; ++trial) {
    std::string field;
    const size_t len = rng.Uniform(24);
    for (size_t i = 0; i < len; ++i) {
      field += trial % 2 == 0
                   ? alphabet[rng.Uniform(sizeof(alphabet))]
                   : static_cast<char>(1 + rng.Uniform(255));
    }
    const std::string escaped = TsvEscape(field);
    EXPECT_EQ(escaped.find('\t'), std::string::npos);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    ASSERT_EQ(TsvUnescape(escaped), field)
        << "field bytes: " << testing::PrintToString(field);
  }
}

TEST(TsvTest, FileLevelRoundTripWithAdversarialFields) {
  const std::string path = ::testing::TempDir() + "/tsv_roundtrip_test.tsv";
  const std::vector<std::vector<std::string>> rows = {
      {"\\", "trailing\\", "\\n"},
      {"a\tb", "c\nd", "\\\\"},
      {"", "\\t", "中\\文"},
  };
  {
    TsvWriter writer(path);
    ASSERT_TRUE(writer.status().ok());
    for (const auto& row : rows) writer.WriteRow(row);
    ASSERT_TRUE(writer.Close().ok());
  }
  auto read = ReadTsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
  std::remove(path.c_str());
}

TEST(TsvTest, WriteAndReadFile) {
  const std::string path = ::testing::TempDir() + "/tsv_test.tsv";
  {
    TsvWriter writer(path);
    ASSERT_TRUE(writer.status().ok());
    writer.WriteRow({"刘德华", "演员\t歌手", "1"});
    writer.WriteRow({"", "x"});
    ASSERT_TRUE(writer.Close().ok());
  }
  auto rows = ReadTsvFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0], "刘德华");
  EXPECT_EQ((*rows)[0][1], "演员\t歌手");
  EXPECT_EQ((*rows)[1].size(), 2u);
  std::remove(path.c_str());
}

TEST(TsvTest, MissingFileIsIoError) {
  auto rows = ReadTsvFile("/nonexistent/definitely/missing.tsv");
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
}

// ---- histogram --------------------------------------------------------------
// util::Histogram and obs::BucketHistogram are covered in histogram_test.cc.

}  // namespace
}  // namespace cnpb::util
