// Determinism guarantees: the whole pipeline — world synthesis, extraction,
// neural training, verification — is a pure function of its seeds, and of
// its seeds ONLY: the sharded build must serialize byte-identically for
// every CNPB_THREADS value.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/builder.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "taxonomy/serialize.h"
#include "text/segmenter.h"
#include "util/parallel.h"

namespace cnpb {
namespace {

// Serialises a taxonomy's full edge set into a canonical string.
std::string Fingerprint(const taxonomy::Taxonomy& taxonomy) {
  std::ostringstream out;
  taxonomy.ForEachEdge([&](const taxonomy::IsaEdge& edge) {
    out << taxonomy.Name(edge.hypo) << '\t' << taxonomy.Name(edge.hyper)
        << '\t' << static_cast<int>(edge.source) << '\n';
  });
  return out.str();
}

taxonomy::Taxonomy BuildTaxonomy(uint64_t seed) {
  synth::WorldModel::Config wc;
  wc.num_entities = 1000;
  wc.seed = seed;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  synth::EncyclopediaGenerator::Config gc;
  gc.seed = seed + 1;
  const auto output = synth::EncyclopediaGenerator::Generate(world, gc);
  text::Segmenter segmenter(&world.lexicon());
  synth::CorpusGenerator::Config cc;
  cc.seed = seed + 2;
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, cc);
  std::vector<std::vector<std::string>> corpus_words;
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    corpus_words.push_back(std::move(words));
  }
  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 1;
  config.neural.max_train_samples = 300;
  for (const char* word : synth::ThematicWords()) {
    config.verification.syntax.thematic_lexicon.emplace_back(word);
  }
  core::CnProbaseBuilder::Report report;
  return core::CnProbaseBuilder::Build(output.dump, world.lexicon(),
                                       corpus_words, config, &report);
}

std::string BuildFingerprint(uint64_t seed) {
  return Fingerprint(BuildTaxonomy(seed));
}

// The on-disk bytes SaveTaxonomy writes for a build at `threads` threads.
std::string SerializedBytesAt(int threads, uint64_t seed) {
  util::ScopedThreadsOverride override_threads(threads);
  const taxonomy::Taxonomy taxonomy = BuildTaxonomy(seed);
  const std::string path = ::testing::TempDir() + "/cnpb_det_" +
                           std::to_string(threads) + ".tsv";
  EXPECT_TRUE(taxonomy::SaveTaxonomy(taxonomy, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  std::remove(path.c_str());
  return bytes.str();
}

TEST(DeterminismTest, SameSeedSameTaxonomy) {
  EXPECT_EQ(BuildFingerprint(7), BuildFingerprint(7));
}

TEST(DeterminismTest, DifferentSeedDifferentTaxonomy) {
  EXPECT_NE(BuildFingerprint(7), BuildFingerprint(8));
}

TEST(DeterminismTest, ByteIdenticalAcrossThreadCounts) {
  // The sharded pipeline's contract: shard partitioning is a pure function
  // of the page count and every merge is order-stable, so the serialized
  // taxonomy must not depend on CNPB_THREADS at all.
  const std::string at_one = SerializedBytesAt(1, 7);
  ASSERT_FALSE(at_one.empty());
  EXPECT_EQ(at_one, SerializedBytesAt(3, 7));
  EXPECT_EQ(at_one, SerializedBytesAt(8, 7));
}

TEST(DeterminismTest, WorldGenerationIsPure) {
  synth::WorldModel::Config wc;
  wc.num_entities = 500;
  wc.seed = 99;
  const auto a = synth::WorldModel::Generate(wc);
  const auto b = synth::WorldModel::Generate(wc);
  ASSERT_EQ(a.entities().size(), b.entities().size());
  for (size_t i = 0; i < a.entities().size(); ++i) {
    EXPECT_EQ(a.entities()[i].mention, b.entities()[i].mention);
    EXPECT_EQ(a.entities()[i].attributes, b.entities()[i].attributes);
  }
  EXPECT_EQ(a.lexicon().size(), b.lexicon().size());
}

}  // namespace
}  // namespace cnpb
