// Determinism guarantees: the whole pipeline — world synthesis, extraction,
// neural training, verification — is a pure function of its seeds.
#include <gtest/gtest.h>

#include <sstream>

#include "core/builder.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "text/segmenter.h"

namespace cnpb {
namespace {

// Serialises a taxonomy's full edge set into a canonical string.
std::string Fingerprint(const taxonomy::Taxonomy& taxonomy) {
  std::ostringstream out;
  taxonomy.ForEachEdge([&](const taxonomy::IsaEdge& edge) {
    out << taxonomy.Name(edge.hypo) << '\t' << taxonomy.Name(edge.hyper)
        << '\t' << static_cast<int>(edge.source) << '\n';
  });
  return out.str();
}

std::string BuildFingerprint(uint64_t seed) {
  synth::WorldModel::Config wc;
  wc.num_entities = 1000;
  wc.seed = seed;
  const synth::WorldModel world = synth::WorldModel::Generate(wc);
  synth::EncyclopediaGenerator::Config gc;
  gc.seed = seed + 1;
  const auto output = synth::EncyclopediaGenerator::Generate(world, gc);
  text::Segmenter segmenter(&world.lexicon());
  synth::CorpusGenerator::Config cc;
  cc.seed = seed + 2;
  const auto corpus =
      synth::CorpusGenerator::Generate(world, output.dump, segmenter, cc);
  std::vector<std::vector<std::string>> corpus_words;
  for (const auto& sentence : corpus.sentences) {
    std::vector<std::string> words;
    for (const auto& token : sentence) words.push_back(token.word);
    corpus_words.push_back(std::move(words));
  }
  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 1;
  config.neural.max_train_samples = 300;
  for (const char* word : synth::ThematicWords()) {
    config.verification.syntax.thematic_lexicon.emplace_back(word);
  }
  core::CnProbaseBuilder::Report report;
  const auto taxonomy = core::CnProbaseBuilder::Build(
      output.dump, world.lexicon(), corpus_words, config, &report);
  return Fingerprint(taxonomy);
}

TEST(DeterminismTest, SameSeedSameTaxonomy) {
  EXPECT_EQ(BuildFingerprint(7), BuildFingerprint(7));
}

TEST(DeterminismTest, DifferentSeedDifferentTaxonomy) {
  EXPECT_NE(BuildFingerprint(7), BuildFingerprint(8));
}

TEST(DeterminismTest, WorldGenerationIsPure) {
  synth::WorldModel::Config wc;
  wc.num_entities = 500;
  wc.seed = 99;
  const auto a = synth::WorldModel::Generate(wc);
  const auto b = synth::WorldModel::Generate(wc);
  ASSERT_EQ(a.entities().size(), b.entities().size());
  for (size_t i = 0; i < a.entities().size(); ++i) {
    EXPECT_EQ(a.entities()[i].mention, b.entities()[i].mention);
    EXPECT_EQ(a.entities()[i].attributes, b.entities()[i].attributes);
  }
  EXPECT_EQ(a.lexicon().size(), b.lexicon().size());
}

}  // namespace
}  // namespace cnpb
