// The malformed-request corpus for the HTTP parser: every entry must end in
// a definite verdict — kComplete with the right fields, or kError with the
// right 4xx — never a crash, a hang, or unbounded buffering. The server
// answers kError with that status and closes; tests/server_test.cc checks
// the wire side of the same contract.
#include "server/http.h"

#include <string>

#include <gtest/gtest.h>

namespace cnpb::server {
namespace {

using State = RequestParser::State;

State FeedAll(RequestParser* parser, std::string_view bytes) {
  return parser->Feed(bytes);
}

TEST(RequestParserTest, SimpleGet) {
  RequestParser parser;
  const auto state = FeedAll(
      &parser, "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n");
  ASSERT_EQ(state, State::kComplete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().path, "/healthz");
  EXPECT_TRUE(parser.request().keep_alive);
  EXPECT_EQ(parser.request().Header("Host"), "localhost");
}

TEST(RequestParserTest, QueryParamsDecoded) {
  RequestParser parser;
  const auto state = FeedAll(&parser,
                             "GET /v1/men2ent?mention=%E8%AF%B8%E8%91%9B%E4%"
                             "BA%AE&x=a+b HTTP/1.1\r\nHost: h\r\n\r\n");
  ASSERT_EQ(state, State::kComplete);
  EXPECT_EQ(parser.request().path, "/v1/men2ent");
  EXPECT_EQ(parser.request().Param("mention"), "诸葛亮");
  EXPECT_EQ(parser.request().Param("x"), "a b");
  EXPECT_EQ(parser.request().Param("absent", "dflt"), "dflt");
}

TEST(RequestParserTest, SplitAcrossReadsByteAtATime) {
  // Any byte split must land in the same place as one big read.
  const std::string raw =
      "GET /v1/getConcept?entity=%E5%88%98%E5%A4%87&transitive=1 HTTP/1.1\r\n"
      "Host: example.com\r\nUser-Agent: split-test\r\n\r\n";
  RequestParser parser;
  State state = State::kNeedMore;
  for (const char c : raw) {
    state = parser.Feed(std::string_view(&c, 1));
    if (state == State::kError) break;
  }
  ASSERT_EQ(state, State::kComplete);
  EXPECT_EQ(parser.request().Param("entity"), "刘备");
  EXPECT_EQ(parser.request().Param("transitive"), "1");
  EXPECT_EQ(parser.request().Header("User-Agent"), "split-test");
}

TEST(RequestParserTest, SplitMidHeaderName) {
  RequestParser parser;
  EXPECT_EQ(parser.Feed("GET / HTTP/1.1\r\nHo"), State::kNeedMore);
  EXPECT_EQ(parser.Feed("st: exa"), State::kNeedMore);
  EXPECT_EQ(parser.Feed("mple\r\n\r\n"), State::kComplete);
  EXPECT_EQ(parser.request().Header("Host"), "example");
}

TEST(RequestParserTest, PipelinedRequestsParseBackToBack) {
  RequestParser parser;
  const auto state = FeedAll(&parser,
                             "GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n"
                             "GET /metrics HTTP/1.1\r\nHost: h\r\n\r\n");
  ASSERT_EQ(state, State::kComplete);
  EXPECT_EQ(parser.request().path, "/healthz");
  parser.Reset();
  ASSERT_EQ(parser.Poll(), State::kComplete);
  EXPECT_EQ(parser.request().path, "/metrics");
  parser.Reset();
  EXPECT_EQ(parser.Poll(), State::kNeedMore);
  EXPECT_FALSE(parser.HasPartialRequest());
}

TEST(RequestParserTest, RequestWithBody) {
  RequestParser parser;
  const auto state = FeedAll(&parser,
                             "POST /v1/echo HTTP/1.1\r\nHost: h\r\n"
                             "Content-Length: 5\r\n\r\nhello");
  ASSERT_EQ(state, State::kComplete);
  EXPECT_EQ(parser.request().body, "hello");
}

TEST(RequestParserTest, Http10WithoutHostAllowed) {
  RequestParser parser;
  const auto state = FeedAll(&parser, "GET / HTTP/1.0\r\n\r\n");
  ASSERT_EQ(state, State::kComplete);
  EXPECT_FALSE(parser.request().keep_alive);
}

// Connection is a comma-separated token list (RFC 9110 §7.6.1), not a
// single literal. The old exact-match parse dropped keep-alive for
// "Keep-Alive, TE" and — worse — kept a connection alive that asked
// "TE, close". Tokens match case-insensitively with optional whitespace.
TEST(RequestParserTest, ConnectionTokenListKeepAlive) {
  RequestParser parser;
  const auto state = FeedAll(&parser,
                             "GET / HTTP/1.0\r\nHost: h\r\n"
                             "Connection: Keep-Alive, TE\r\n\r\n");
  ASSERT_EQ(state, State::kComplete);
  EXPECT_TRUE(parser.request().keep_alive);
}

TEST(RequestParserTest, ConnectionTokenListClose) {
  RequestParser parser;
  const auto state = FeedAll(&parser,
                             "GET / HTTP/1.1\r\nHost: h\r\n"
                             "Connection: TE, Close\r\n\r\n");
  ASSERT_EQ(state, State::kComplete);
  EXPECT_FALSE(parser.request().keep_alive);
}

TEST(RequestParserTest, ConnectionCloseWinsOverKeepAlive) {
  // Contradictory tokens: closing is always the safe reading.
  RequestParser parser;
  const auto state = FeedAll(&parser,
                             "GET / HTTP/1.1\r\nHost: h\r\n"
                             "Connection: keep-alive , close\r\n\r\n");
  ASSERT_EQ(state, State::kComplete);
  EXPECT_FALSE(parser.request().keep_alive);
}

TEST(RequestParserTest, ConnectionTokensCaseAndWhitespaceInsensitive) {
  RequestParser parser;
  const auto state = FeedAll(&parser,
                             "GET / HTTP/1.1\r\nHost: h\r\n"
                             "Connection:   cLoSe  \r\n\r\n");
  ASSERT_EQ(state, State::kComplete);
  EXPECT_FALSE(parser.request().keep_alive);
}

TEST(RequestParserTest, ConnectionNonTokenSubstringIgnored) {
  // "closed" is not the token "close"; the HTTP/1.1 default stands.
  RequestParser parser;
  const auto state = FeedAll(&parser,
                             "GET / HTTP/1.1\r\nHost: h\r\n"
                             "Connection: closed\r\n\r\n");
  ASSERT_EQ(state, State::kComplete);
  EXPECT_TRUE(parser.request().keep_alive);
}

TEST(RequestParserTest, ConnectionUnknownTokensKeepHttp10Default) {
  // HTTP/1.0 with only unrecognized tokens: default (close) stands.
  RequestParser parser;
  const auto state = FeedAll(&parser,
                             "GET / HTTP/1.0\r\nHost: h\r\n"
                             "Connection: upgrade\r\n\r\n");
  ASSERT_EQ(state, State::kComplete);
  EXPECT_FALSE(parser.request().keep_alive);
}

// ---------------------------------------------------------------- errors

TEST(RequestParserTest, MissingHostIs400) {
  RequestParser parser;
  EXPECT_EQ(FeedAll(&parser, "GET / HTTP/1.1\r\n\r\n"), State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParserTest, OversizedRequestLineIs431) {
  RequestParser::Limits limits;
  limits.max_request_line = 128;
  RequestParser parser(limits);
  const std::string long_target(512, 'a');
  EXPECT_EQ(FeedAll(&parser, "GET /" + long_target + " HTTP/1.1\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParserTest, OversizedRequestLineWithoutNewlineIs431) {
  // The line never terminates — the parser must reject rather than buffer
  // forever.
  RequestParser::Limits limits;
  limits.max_request_line = 128;
  RequestParser parser(limits);
  State state = State::kNeedMore;
  for (int i = 0; i < 64 && state == State::kNeedMore; ++i) {
    state = parser.Feed(std::string(16, 'x'));
  }
  ASSERT_EQ(state, State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParserTest, OversizedHeadersAre431) {
  RequestParser::Limits limits;
  limits.max_header_bytes = 256;
  RequestParser parser(limits);
  State state = parser.Feed("GET / HTTP/1.1\r\n");
  for (int i = 0; i < 32 && state == State::kNeedMore; ++i) {
    state = parser.Feed("X-Filler-" + std::to_string(i) + ": " +
                        std::string(32, 'y') + "\r\n");
  }
  ASSERT_EQ(state, State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParserTest, TooManyHeadersAre431) {
  RequestParser::Limits limits;
  limits.max_headers = 4;
  RequestParser parser(limits);
  State state = parser.Feed("GET / HTTP/1.1\r\n");
  for (int i = 0; i < 8 && state == State::kNeedMore; ++i) {
    state = parser.Feed("X-" + std::to_string(i) + ": v\r\n");
  }
  ASSERT_EQ(state, State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParserTest, BadPercentEncodingInQueryIs400) {
  for (const char* target :
       {"/v1/men2ent?mention=%", "/v1/men2ent?mention=%G0",
        "/v1/men2ent?mention=%2", "/v1/men2ent?mention=%zz",
        "/v1/%xx/path"}) {
    RequestParser parser;
    const std::string raw =
        std::string("GET ") + target + " HTTP/1.1\r\nHost: h\r\n\r\n";
    EXPECT_EQ(FeedAll(&parser, raw), State::kError) << target;
    EXPECT_EQ(parser.error_status(), 400) << target;
  }
}

TEST(RequestParserTest, MalformedRequestLinesAre400) {
  for (const char* line :
       {"GET\r\n", "GET /\r\n", "GET / HTTP/2.0\r\n", "GET / JUNK\r\n",
        " / HTTP/1.1\r\n", "GET noslash HTTP/1.1\r\n",
        "G@T / HTTP/1.1\r\n"}) {
    RequestParser parser;
    EXPECT_EQ(FeedAll(&parser, line), State::kError) << line;
    EXPECT_EQ(parser.error_status(), 400) << line;
  }
}

TEST(RequestParserTest, MalformedHeaderLinesAre400) {
  for (const char* header :
       {"NoColonHere\r\n", ": empty-name\r\n", "Bad Header: v\r\n",
        " folded: continuation\r\n"}) {
    RequestParser parser;
    const std::string raw =
        std::string("GET / HTTP/1.1\r\n") + header + "\r\n";
    EXPECT_EQ(FeedAll(&parser, raw), State::kError) << header;
    EXPECT_EQ(parser.error_status(), 400) << header;
  }
}

TEST(RequestParserTest, MalformedContentLengthIs400) {
  for (const char* value : {"abc", "-1", "12x", "1 2"}) {
    RequestParser parser;
    const std::string raw = std::string("GET / HTTP/1.1\r\nHost: h\r\n") +
                            "Content-Length: " + value + "\r\n\r\n";
    EXPECT_EQ(FeedAll(&parser, raw), State::kError) << value;
    EXPECT_EQ(parser.error_status(), 400) << value;
  }
}

TEST(RequestParserTest, OversizedBodyIs413) {
  RequestParser::Limits limits;
  limits.max_body_bytes = 100;
  RequestParser parser(limits);
  EXPECT_EQ(parser.Feed("POST / HTTP/1.1\r\nHost: h\r\n"
                        "Content-Length: 101\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParserTest, TransferEncodingRejected) {
  RequestParser parser;
  EXPECT_EQ(parser.Feed("POST / HTTP/1.1\r\nHost: h\r\n"
                        "Transfer-Encoding: chunked\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParserTest, ErrorStateIsSticky) {
  RequestParser parser;
  ASSERT_EQ(parser.Feed("BAD\r\n"), State::kError);
  EXPECT_EQ(parser.Feed("GET / HTTP/1.1\r\nHost: h\r\n\r\n"), State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParserTest, BareLfLineEndingsAccepted) {
  RequestParser parser;
  const auto state =
      FeedAll(&parser, "GET /healthz HTTP/1.1\nHost: h\n\n");
  ASSERT_EQ(state, State::kComplete);
  EXPECT_EQ(parser.request().path, "/healthz");
}

TEST(PercentCodecTest, RoundTripsArbitraryBytes) {
  const std::string inputs[] = {"", "plain", "a b&c=d", "诸葛亮",
                                std::string("\x00\x01\xff", 3)};
  for (const std::string& input : inputs) {
    std::string decoded;
    ASSERT_TRUE(PercentDecode(PercentEncode(input), &decoded));
    EXPECT_EQ(decoded, input);
  }
}

}  // namespace
}  // namespace cnpb::server
