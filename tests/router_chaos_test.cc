// Kill-a-backend chaos for the router tier: 20 seeds, each a fresh
// 2-shard x 2-replica cluster with concurrent clients hammering the
// router while a seeded-random backend is stopped mid-traffic. The
// invariants are the router's serving contract under partial failure:
// every response has a definite documented status (no hangs, no garbage),
// every 200 carries the cluster's single generation stamp (a replica
// death must never surface as a mixed or unversioned answer), and the
// surviving replicas keep the success rate up.
#include "router/router.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "router/shard_map.h"
#include "server/client.h"
#include "server/http.h"
#include "server/server.h"
#include "server/service.h"
#include "taxonomy/api_service.h"
#include "taxonomy/taxonomy.h"

namespace cnpb::router {
namespace {

using server::ApiEndpoints;
using server::HttpClient;
using server::HttpServer;
using server::PercentEncode;
using taxonomy::ApiService;
using taxonomy::Taxonomy;

Taxonomy MakeTaxonomy() {
  Taxonomy t;
  t.AddIsa("刘备", "君主", taxonomy::Source::kTag, 0.9f);
  t.AddIsa("曹操", "君主", taxonomy::Source::kTag, 0.9f);
  t.AddIsa("君主", "人物", taxonomy::Source::kTag, 0.7f);
  for (int i = 0; i < 8; ++i) {
    t.AddIsa("entity" + std::to_string(i), "concept",
             taxonomy::Source::kTag, 0.5f);
  }
  return t;
}

struct Backend {
  std::unique_ptr<Taxonomy> taxonomy;
  std::unique_ptr<ApiService> api;
  std::unique_ptr<ApiEndpoints> endpoints;
  std::unique_ptr<HttpServer> http;
};

std::unique_ptr<Backend> StartBackend() {
  auto b = std::make_unique<Backend>();
  b->taxonomy = std::make_unique<Taxonomy>(MakeTaxonomy());
  b->api = std::make_unique<ApiService>(b->taxonomy.get());
  b->api->RegisterMention("主公", b->taxonomy->Find("刘备"));
  b->endpoints = std::make_unique<ApiEndpoints>(b->api.get());
  HttpServer::Config config;
  config.num_threads = 2;
  config.drain_deadline = std::chrono::milliseconds(500);
  b->http = std::make_unique<HttpServer>(config, b->endpoints->AsHandler());
  EXPECT_TRUE(b->http->Start().ok());
  return b;
}

struct Tally {
  uint64_t ok = 0;            // 200/404 with the right version stamp
  uint64_t degraded = 0;      // 503 (shard dark / refused merge)
  uint64_t client_errors = 0; // our own connection to the router broke
  uint64_t bad = 0;           // anything outside the contract
};

void ClientLoop(uint16_t router_port, uint32_t seed, int requests,
                Tally* tally) {
  std::mt19937 rng(seed);
  HttpClient client;
  if (!client.Connect("127.0.0.1", router_port).ok()) {
    tally->bad += requests;
    return;
  }
  const std::string mention = PercentEncode("主公");
  const std::string entity = PercentEncode("刘备");
  for (int i = 0; i < requests; ++i) {
    // Pace the load so the request stream outlasts the kill: an unpaced
    // loop finishes before the killer thread fires on most seeds.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    util::Result<HttpClient::Response> response = util::IoError("unsent");
    switch (rng() % 4) {
      case 0:
        response = client.Get("/v1/men2ent?mention=" + mention);
        break;
      case 1:
        response = client.Get("/v1/getConcept?entity=" + entity);
        break;
      case 2:
        response = client.Get("/v1/men2ent?mention=miss" +
                              std::to_string(rng() % 100));
        break;
      default:
        response = client.Post(
            "/v1/getConcept_batch",
            "刘备\n曹操\nentity" + std::to_string(rng() % 8) + "\nmiss\n",
            "text/plain; charset=utf-8");
        break;
    }
    if (!response.ok()) {
      // Our keep-alive connection to the router died; that is a client
      // problem, not a routing one — reconnect and continue.
      ++tally->client_errors;
      client.Close();
      if (!client.Connect("127.0.0.1", router_port).ok()) {
        tally->bad += static_cast<uint64_t>(requests - i);
        return;
      }
      continue;
    }
    switch (response->status) {
      case 200:
        // The cluster only ever serves generation 1; any other stamp means
        // a merge mixed generations or dropped the header.
        if (response->Header("X-Taxonomy-Version") == "1") {
          ++tally->ok;
        } else {
          ++tally->bad;
        }
        break;
      case 404:
        ++tally->ok;  // unknown mention through a live shard
        break;
      case 503:
        ++tally->degraded;
        break;
      default:
        ++tally->bad;
        break;
    }
  }
}

TEST(RouterChaos, SurvivesBackendKillAcrossSeeds) {
  constexpr int kSeeds = 20;
  constexpr int kThreads = 2;
  constexpr int kRequestsPerThread = 50;

  for (uint32_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937 rng(0x9e3779b9u + seed);

    // 2 shards x 2 replicas, every backend a full replica of the data.
    std::vector<std::unique_ptr<Backend>> backends;
    std::vector<std::vector<ShardMap::Endpoint>> topology(2);
    for (size_t s = 0; s < 2; ++s) {
      for (size_t r = 0; r < 2; ++r) {
        backends.push_back(StartBackend());
        topology[s].push_back({"127.0.0.1", backends.back()->http->port()});
      }
    }
    ShardMap::Options map_options;
    map_options.quarantine_failures = 3;
    map_options.quarantine_period = std::chrono::milliseconds(100);
    ShardMap map(std::move(topology), map_options);

    Router::Options options;
    options.server.num_threads = 2;
    options.connect_deadline = std::chrono::milliseconds(250);
    options.recv_deadline = std::chrono::milliseconds(1000);
    options.hedge_initial = std::chrono::milliseconds(5);
    Router router(&map, options);
    ASSERT_TRUE(router.Start().ok());

    const size_t victim = rng() % backends.size();
    const int kill_after_ms = 1 + static_cast<int>(rng() % 8);

    std::vector<Tally> tallies(kThreads);
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back(ClientLoop, router.port(), seed * 97 + t,
                           kRequestsPerThread, &tallies[t]);
    }
    std::thread killer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
      backends[victim]->http->Stop();
      backends[victim]->http->Wait();
    });
    for (auto& c : clients) c.join();
    killer.join();

    Tally total;
    for (const Tally& t : tallies) {
      total.ok += t.ok;
      total.degraded += t.degraded;
      total.client_errors += t.client_errors;
      total.bad += t.bad;
    }
    const uint64_t expected =
        static_cast<uint64_t>(kThreads) * kRequestsPerThread;

    // Contract: nothing outside the documented statuses, ever.
    EXPECT_EQ(total.bad, 0u)
        << "ok=" << total.ok << " degraded=" << total.degraded
        << " client_errors=" << total.client_errors;
    // One dead replica of four leaves every shard with a live replica, so
    // failover keeps the vast majority of requests succeeding.
    EXPECT_GE(total.ok, expected / 2);
    // All backends serve the same generation: a refusal would mean the
    // router invented a mix that cannot exist.
    EXPECT_EQ(router.stats().mixed_generation_refusals, 0u);

    router.Stop();
    router.Wait();
    for (auto& b : backends) {
      b->http->Stop();
      b->http->Wait();
    }
  }
}

}  // namespace
}  // namespace cnpb::router
