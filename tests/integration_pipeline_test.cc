#include <gtest/gtest.h>

#include <memory>

#include "core/builder.h"
#include "eval/coverage.h"
#include "eval/precision.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/qa_gen.h"
#include "synth/world.h"
#include "text/segmenter.h"

namespace cnpb {
namespace {

// End-to-end fixture: one moderately sized world shared by all tests in
// this file (generation + training dominate the cost).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::WorldModel::Config wc;
    wc.num_entities = 4000;
    wc.seed = 42;
    world_ = new synth::WorldModel(synth::WorldModel::Generate(wc));

    synth::EncyclopediaGenerator::Config gc;
    output_ = new synth::EncyclopediaGenerator::Output(
        synth::EncyclopediaGenerator::Generate(*world_, gc));

    segmenter_ = new text::Segmenter(&world_->lexicon());
    synth::CorpusGenerator::Config cc;
    corpus_ = new synth::Corpus(synth::CorpusGenerator::Generate(
        *world_, output_->dump, *segmenter_, cc));
    corpus_words_ = new std::vector<std::vector<std::string>>();
    for (const auto& sentence : corpus_->sentences) {
      std::vector<std::string> words;
      words.reserve(sentence.size());
      for (const auto& token : sentence) words.push_back(token.word);
      corpus_words_->push_back(std::move(words));
    }

    core::CnProbaseBuilder::Config config;
    config.neural.epochs = 2;
    config.neural.max_train_samples = 1200;
    // The 184-word thematic lexicon is an external resource (Li et al.).
    for (const char* word : synth::ThematicWords()) {
      config.verification.syntax.thematic_lexicon.emplace_back(word);
    }
    report_ = new core::CnProbaseBuilder::Report();
    candidates_ = new generation::CandidateList(
        core::CnProbaseBuilder::BuildCandidates(output_->dump,
                                                world_->lexicon(),
                                                *corpus_words_, config,
                                                report_));
    taxonomy_ = new taxonomy::Taxonomy(
        core::CnProbaseBuilder::Materialise(*candidates_));
  }

  static void TearDownTestSuite() {
    delete taxonomy_;
    delete candidates_;
    delete report_;
    delete corpus_words_;
    delete corpus_;
    delete segmenter_;
    delete output_;
    delete world_;
  }

  static eval::Oracle Oracle() {
    return [](const std::string& hypo, const std::string& hyper) {
      return output_->gold.IsCorrect(hypo, hyper);
    };
  }

  static synth::WorldModel* world_;
  static synth::EncyclopediaGenerator::Output* output_;
  static text::Segmenter* segmenter_;
  static synth::Corpus* corpus_;
  static std::vector<std::vector<std::string>>* corpus_words_;
  static core::CnProbaseBuilder::Report* report_;
  static generation::CandidateList* candidates_;
  static taxonomy::Taxonomy* taxonomy_;
};

synth::WorldModel* PipelineTest::world_ = nullptr;
synth::EncyclopediaGenerator::Output* PipelineTest::output_ = nullptr;
text::Segmenter* PipelineTest::segmenter_ = nullptr;
synth::Corpus* PipelineTest::corpus_ = nullptr;
std::vector<std::vector<std::string>>* PipelineTest::corpus_words_ = nullptr;
core::CnProbaseBuilder::Report* PipelineTest::report_ = nullptr;
generation::CandidateList* PipelineTest::candidates_ = nullptr;
taxonomy::Taxonomy* PipelineTest::taxonomy_ = nullptr;

TEST_F(PipelineTest, AllSourcesProduceCandidates) {
  EXPECT_GT(report_->bracket_candidates, 1000u);
  EXPECT_GT(report_->tag_candidates, 3000u);
  EXPECT_GT(report_->infobox_candidates, 1000u);
  EXPECT_GT(report_->abstract_candidates, 1000u);
  EXPECT_GT(report_->merged_candidates, 5000u);
}

TEST_F(PipelineTest, VerificationRejectsSomething) {
  EXPECT_GT(report_->verification.rejected_total(), 100u);
  EXPECT_LT(report_->verification.output, report_->verification.input);
}

TEST_F(PipelineTest, PredicateDiscoveryFindsIsaBearingPredicates) {
  const auto& selected = report_->discovery.selected;
  ASSERT_FALSE(selected.empty());
  EXPECT_LE(selected.size(), 12u);
  // 职业 is the canonical implicit-isA predicate and must be discovered.
  EXPECT_NE(std::find(selected.begin(), selected.end(), "职业"),
            selected.end());
  // 出生地 points at places, not classes; it must not be selected.
  EXPECT_EQ(std::find(selected.begin(), selected.end(), "出生地"),
            selected.end());
  EXPECT_GE(report_->discovery.candidates.size(), selected.size());
}

TEST_F(PipelineTest, FinalPrecisionMatchesPaperBand) {
  const auto result = eval::ExactPrecision(*taxonomy_, Oracle());
  ASSERT_GT(result.evaluated, 5000u);
  // Paper: 95%. Band allows synthetic-noise variance.
  EXPECT_GT(result.precision(), 0.92);
}

TEST_F(PipelineTest, VerificationImprovesPrecision) {
  const auto before =
      eval::PrecisionResult{report_->verification.input, 0}.evaluated;
  (void)before;
  // Rebuild without verification on the same inputs.
  core::CnProbaseBuilder::Config config;
  config.neural.epochs = 2;
  config.neural.max_train_samples = 1200;
  config.enable_verification = false;
  core::CnProbaseBuilder::Report raw_report;
  const auto raw = core::CnProbaseBuilder::BuildCandidates(
      output_->dump, world_->lexicon(), *corpus_words_, config, &raw_report);
  const double raw_precision =
      eval::CandidatePrecision(raw, Oracle()).precision();
  const double verified_precision =
      eval::CandidatePrecision(*candidates_, Oracle()).precision();
  EXPECT_GT(verified_precision, raw_precision + 0.02);
}

TEST_F(PipelineTest, BracketSourcePrecisionBand) {
  const auto by_source = eval::PrecisionBySource(*taxonomy_, Oracle());
  auto it = by_source.find(taxonomy::Source::kBracket);
  ASSERT_NE(it, by_source.end());
  EXPECT_GT(it->second.evaluated, 500u);
  // Paper: 96.2% from the bracket source.
  EXPECT_GT(it->second.precision(), 0.93);
}

TEST_F(PipelineTest, TagSourcePrecisionBand) {
  const auto by_source = eval::PrecisionBySource(*taxonomy_, Oracle());
  auto it = by_source.find(taxonomy::Source::kTag);
  ASSERT_NE(it, by_source.end());
  // Paper: 97.4% for tag-derived relations after verification.
  EXPECT_GT(it->second.precision(), 0.93);
}

TEST_F(PipelineTest, SubconceptRelationsExist) {
  EXPECT_GT(taxonomy_->NumSubconceptEdges(), 50u);
  // Spot-check a known gold subconcept edge surfaced via concept pages.
  const taxonomy::NodeId sub = taxonomy_->Find("男演员");
  const taxonomy::NodeId super = taxonomy_->Find("演员");
  ASSERT_NE(sub, taxonomy::kInvalidNode);
  ASSERT_NE(super, taxonomy::kInvalidNode);
  EXPECT_TRUE(taxonomy_->HasIsa(sub, super));
}

TEST_F(PipelineTest, QaCoverageBand) {
  synth::QaGenerator::Config qc;
  qc.num_questions = 4000;
  const auto questions = synth::QaGenerator::Generate(*world_, qc);
  std::vector<std::string> texts;
  texts.reserve(questions.size());
  for (const auto& q : questions) texts.push_back(q.text);
  const auto coverage = eval::QaCoverage(*taxonomy_, output_->dump, texts);
  // Paper: 91.68% on NLPCC 2016; our out-of-KB rate is 8%.
  EXPECT_GT(coverage.coverage(), 0.80);
  EXPECT_LT(coverage.coverage(), 0.99);
  EXPECT_GT(coverage.avg_concepts_per_entity(), 1.0);
}

TEST_F(PipelineTest, SampledPrecisionTracksExact) {
  const auto exact = eval::ExactPrecision(*taxonomy_, Oracle());
  const auto sampled = eval::SampledPrecision(*taxonomy_, Oracle(), 2000, 3);
  EXPECT_EQ(sampled.evaluated, 2000u);
  EXPECT_NEAR(sampled.precision(), exact.precision(), 0.03);
}

TEST_F(PipelineTest, ApiServiceAnswersOverBuiltTaxonomy) {
  taxonomy::ApiService api(taxonomy_);
  core::CnProbaseBuilder::RegisterMentions(output_->dump, *taxonomy_, &api);
  EXPECT_GT(api.num_mentions(), 1000u);
  // Concepts of some entity resolve through men2ent + getConcept.
  bool found = false;
  for (const auto& page : output_->dump.pages()) {
    const auto entities = api.Men2Ent(page.mention);
    if (entities.empty()) continue;
    const auto concepts = api.GetConcept(taxonomy_->Name(entities[0]));
    if (!concepts.empty()) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace cnpb
