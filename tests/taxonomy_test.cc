#include <gtest/gtest.h>

#include <algorithm>

#include "taxonomy/api_service.h"
#include "taxonomy/serialize.h"
#include "taxonomy/taxonomy.h"

namespace cnpb::taxonomy {
namespace {

TEST(TaxonomyTest, AddNodeInterns) {
  Taxonomy t;
  const NodeId a = t.AddNode("演员", NodeKind::kConcept);
  const NodeId b = t.AddNode("演员", NodeKind::kEntity);  // kind kept
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.Kind(a), NodeKind::kConcept);
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_EQ(t.Find("演员"), a);
  EXPECT_EQ(t.Find("missing"), kInvalidNode);
}

TEST(TaxonomyTest, AddIsaDeduplicatesAndRejectsSelfLoop) {
  Taxonomy t;
  const NodeId e = t.AddNode("刘德华", NodeKind::kEntity);
  const NodeId c = t.AddNode("演员", NodeKind::kConcept);
  EXPECT_TRUE(t.AddIsa(e, c, Source::kTag));
  EXPECT_FALSE(t.AddIsa(e, c, Source::kBracket));  // duplicate
  EXPECT_FALSE(t.AddIsa(e, e, Source::kTag));      // self loop
  EXPECT_EQ(t.num_edges(), 1u);
  EXPECT_TRUE(t.HasIsa(e, c));
  EXPECT_FALSE(t.HasIsa(c, e));
}

TEST(TaxonomyTest, AdjacencyIndexes) {
  Taxonomy t;
  t.AddIsa("刘德华", "演员", Source::kTag);
  t.AddIsa("刘德华", "歌手", Source::kBracket);
  t.AddIsa("张学友", "歌手", Source::kTag);
  const NodeId liu = t.Find("刘德华");
  const NodeId singer = t.Find("歌手");
  EXPECT_EQ(t.Hypernyms(liu).size(), 2u);
  EXPECT_EQ(t.Hyponyms(singer).size(), 2u);
  EXPECT_TRUE(t.Hypernyms(singer).empty());
}

TEST(TaxonomyTest, KindsAndCounts) {
  Taxonomy t;
  t.AddIsa("刘德华", "演员", Source::kTag);                       // entity->concept
  t.AddIsa("演员", "人物", Source::kTag, 1.0f, NodeKind::kConcept);  // sub->concept
  EXPECT_EQ(t.NumEntities(), 1u);
  EXPECT_EQ(t.NumConcepts(), 2u);
  EXPECT_EQ(t.NumEntityConceptEdges(), 1u);
  EXPECT_EQ(t.NumSubconceptEdges(), 1u);
  EXPECT_EQ(t.NumEdgesFromSource(Source::kTag), 2u);
  EXPECT_EQ(t.NumEdgesFromSource(Source::kBracket), 0u);
}

TEST(TaxonomyTest, RemoveIsa) {
  Taxonomy t;
  t.AddIsa("a", "b", Source::kTag);
  const NodeId a = t.Find("a"), b = t.Find("b");
  EXPECT_TRUE(t.RemoveIsa(a, b));
  EXPECT_FALSE(t.RemoveIsa(a, b));
  EXPECT_EQ(t.num_edges(), 0u);
  EXPECT_EQ(t.NumEdgesFromSource(Source::kTag), 0u);
  EXPECT_TRUE(t.Hypernyms(a).empty());
  EXPECT_TRUE(t.Hyponyms(b).empty());
}

TEST(TaxonomyTest, TransitiveHypernyms) {
  Taxonomy t;
  t.AddIsa("男演员", "演员", Source::kTag, 1.0f, NodeKind::kConcept);
  t.AddIsa("演员", "娱乐人物", Source::kTag, 1.0f, NodeKind::kConcept);
  t.AddIsa("娱乐人物", "人物", Source::kTag, 1.0f, NodeKind::kConcept);
  const auto ancestors = t.TransitiveHypernyms(t.Find("男演员"));
  EXPECT_EQ(ancestors.size(), 3u);
}

TEST(TaxonomyTest, CycleDetection) {
  Taxonomy t;
  t.AddIsa("a", "b", Source::kTag, 1.0f, NodeKind::kConcept);
  t.AddIsa("b", "c", Source::kTag, 1.0f, NodeKind::kConcept);
  EXPECT_TRUE(t.IsAcyclic());
  EXPECT_TRUE(t.WouldCreateCycle(t.Find("c"), t.Find("a")));
  EXPECT_FALSE(t.WouldCreateCycle(t.Find("a"), t.Find("c")));
  t.AddIsa(t.Find("c"), t.Find("a"), Source::kTag);
  EXPECT_FALSE(t.IsAcyclic());
}

TEST(TaxonomyTest, ForEachEdgeVisitsAll) {
  Taxonomy t;
  t.AddIsa("x", "y", Source::kTag);
  t.AddIsa("x", "z", Source::kInfobox);
  size_t count = 0;
  t.ForEachEdge([&](const IsaEdge&) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST(SerializeTest, RoundTrip) {
  Taxonomy t;
  t.AddIsa("刘德华（演员）", "演员", Source::kBracket, 0.9f);
  t.AddIsa("演员", "人物", Source::kTag, 1.0f, NodeKind::kConcept);
  const std::string path = ::testing::TempDir() + "/taxonomy_test.tsv";
  ASSERT_TRUE(SaveTaxonomy(t, path).ok());
  auto loaded = LoadTaxonomy(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), t.num_nodes());
  EXPECT_EQ(loaded->num_edges(), t.num_edges());
  const NodeId liu = loaded->Find("刘德华（演员）");
  ASSERT_NE(liu, kInvalidNode);
  EXPECT_EQ(loaded->Kind(liu), NodeKind::kEntity);
  EXPECT_EQ(loaded->Hypernyms(liu).size(), 1u);
  EXPECT_EQ(loaded->Hypernyms(liu)[0].source, Source::kBracket);
  EXPECT_NEAR(loaded->Hypernyms(liu)[0].score, 0.9f, 1e-5);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsMalformedRows) {
  const std::string path = ::testing::TempDir() + "/taxonomy_bad.tsv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("E\t0\t1\t0\t1.0\n", f);  // edge referencing unknown nodes
  fclose(f);
  auto loaded = LoadTaxonomy(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(ApiServiceTest, Men2EntRankingAndCounts) {
  Taxonomy t;
  t.AddIsa("刘德华（演员）", "演员", Source::kTag);
  t.AddIsa("刘德华（演员）", "歌手", Source::kTag);
  t.AddIsa("刘德华（作家）", "作家", Source::kTag);
  ApiService api(&t);
  api.RegisterMention("刘德华", t.Find("刘德华（演员）"));
  api.RegisterMention("刘德华", t.Find("刘德华（作家）"));
  api.RegisterMention("刘德华", t.Find("刘德华（演员）"));  // dedup

  const auto entities = api.Men2Ent("刘德华");
  ASSERT_EQ(entities.size(), 2u);
  // The richer page (2 hypernyms) ranks first.
  EXPECT_EQ(t.Name(entities[0]), "刘德华（演员）");
  EXPECT_TRUE(api.Men2Ent("无名氏").empty());

  const auto concepts = api.GetConcept("刘德华（演员）");
  EXPECT_EQ(concepts.size(), 2u);
  const auto hyponyms = api.GetEntity("演员");
  ASSERT_EQ(hyponyms.size(), 1u);
  EXPECT_EQ(hyponyms[0], "刘德华（演员）");

  EXPECT_EQ(api.usage().men2ent_calls, 2u);
  EXPECT_EQ(api.usage().get_concept_calls, 1u);
  EXPECT_EQ(api.usage().get_entity_calls, 1u);
  EXPECT_EQ(api.usage().total(), 4u);
}

TEST(ApiServiceTest, GetConceptTransitiveAppendsAncestors) {
  Taxonomy t;
  t.AddIsa("刘德华", "男演员", Source::kBracket, 0.96f);
  t.AddIsa("男演员", "演员", Source::kTag, 0.9f, NodeKind::kConcept);
  t.AddIsa("演员", "人物", Source::kTag, 0.9f, NodeKind::kConcept);
  ApiService api(&t);
  const auto direct = api.GetConcept("刘德华");
  EXPECT_EQ(direct, (std::vector<std::string>{"男演员"}));
  const auto all = api.GetConcept("刘德华", /*transitive=*/true);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], "男演员");
  // Ancestors follow, each exactly once.
  EXPECT_NE(std::find(all.begin(), all.end(), "演员"), all.end());
  EXPECT_NE(std::find(all.begin(), all.end(), "人物"), all.end());
}

TEST(ApiServiceTest, GetEntityHonoursLimit) {
  Taxonomy t;
  for (int i = 0; i < 20; ++i) {
    t.AddIsa("e" + std::to_string(i), "c", Source::kTag);
  }
  ApiService api(&t);
  EXPECT_EQ(api.GetEntity("c", 5).size(), 5u);
  EXPECT_EQ(api.GetEntity("c", 100).size(), 20u);
}

}  // namespace
}  // namespace cnpb::taxonomy
