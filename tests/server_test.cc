// End-to-end tests for the HTTP serving layer: real sockets over loopback,
// the wire contract of the three public endpoints (Table II), the
// status→HTTP mapping under overload and injected faults, graceful drain,
// and the SIGPIPE/early-close regression. The pure-parser corpus lives in
// http_parser_test.cc; multi-seed chaos in server_concurrency_test.cc.
#include "server/server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/http.h"
#include "server/service.h"
#include "taxonomy/api_service.h"
#include "taxonomy/taxonomy.h"
#include "util/fault_injection.h"
#include "util/net.h"

namespace cnpb::server {
namespace {

using taxonomy::ApiService;
using taxonomy::Taxonomy;

Taxonomy MakeTaxonomy() {
  Taxonomy t;
  t.AddIsa("刘备", "君主", taxonomy::Source::kTag, 0.9f);
  t.AddIsa("刘备", "人物", taxonomy::Source::kTag, 0.8f);
  t.AddIsa("曹操", "君主", taxonomy::Source::kTag, 0.9f);
  t.AddIsa("君主", "人物", taxonomy::Source::kTag, 0.7f);
  for (int i = 0; i < 6; ++i) {
    t.AddIsa("entity" + std::to_string(i), "concept",
             taxonomy::Source::kTag, 0.5f);
  }
  return t;
}

// One live server over a hand-built taxonomy, torn down per test.
class ServerTest : public ::testing::Test {
 protected:
  void StartServer(HttpServer::Config config = {}) {
    taxonomy_ = std::make_unique<Taxonomy>(MakeTaxonomy());
    api_ = std::make_unique<ApiService>(taxonomy_.get());
    api_->RegisterMention("主公", taxonomy_->Find("刘备"));
    api_->RegisterMention("孟德", taxonomy_->Find("曹操"));
    endpoints_ = std::make_unique<ApiEndpoints>(api_.get());
    config.num_threads = 2;
    server_ = std::make_unique<HttpServer>(config, endpoints_->AsHandler());
    ASSERT_TRUE(server_->Start().ok());
  }

  HttpClient Connect() {
    HttpClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  std::unique_ptr<Taxonomy> taxonomy_;
  std::unique_ptr<ApiService> api_;
  std::unique_ptr<ApiEndpoints> endpoints_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServerTest, Men2EntReturnsResolvedEntities) {
  StartServer();
  HttpClient client = Connect();
  auto response =
      client.Get("/v1/men2ent?mention=" + PercentEncode("主公"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->Header("Content-Type"), "application/json");
  EXPECT_NE(response->body.find("\"刘备\""), std::string::npos);
  EXPECT_NE(response->body.find("\"version\":1"), std::string::npos);
  EXPECT_NE(response->body.find("\"num_hypernyms\":2"), std::string::npos);
}

TEST_F(ServerTest, GetConceptDirectAndTransitive) {
  StartServer();
  HttpClient client = Connect();
  auto direct =
      client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->status, 200);
  EXPECT_NE(direct->body.find("君主"), std::string::npos);

  auto transitive = client.Get("/v1/getConcept?entity=" +
                               PercentEncode("刘备") + "&transitive=1");
  ASSERT_TRUE(transitive.ok());
  EXPECT_EQ(transitive->status, 200);
  // 人物 is both a direct hypernym and an inherited one via 君主; either
  // way it must appear in the transitive closure.
  EXPECT_NE(transitive->body.find("人物"), std::string::npos);
  EXPECT_NE(transitive->body.find("\"transitive\":true"), std::string::npos);
  EXPECT_NE(direct->body.find("\"transitive\":false"), std::string::npos);
}

TEST_F(ServerTest, GetEntityHonorsLimit) {
  StartServer();
  HttpClient client = Connect();
  auto all = client.Get("/v1/getEntity?concept=concept");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->status, 200);
  auto capped = client.Get("/v1/getEntity?concept=concept&limit=2");
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->status, 200);
  EXPECT_LT(capped->body.size(), all->body.size());

  auto bad = client.Get("/v1/getEntity?concept=concept&limit=zero");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
}

TEST_F(ServerTest, MissingParameterIs400) {
  StartServer();
  HttpClient client = Connect();
  for (const char* target :
       {"/v1/men2ent", "/v1/getConcept", "/v1/getEntity"}) {
    auto response = client.Get(target);
    ASSERT_TRUE(response.ok()) << target;
    EXPECT_EQ(response->status, 400) << target;
    EXPECT_NE(response->body.find("\"error\""), std::string::npos);
  }
}

TEST_F(ServerTest, UnknownMentionIs404) {
  StartServer();
  HttpClient client = Connect();
  auto response = client.Get("/v1/men2ent?mention=nonexistent");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 404);
  EXPECT_NE(response->body.find("NOT_FOUND"), std::string::npos);
}

TEST_F(ServerTest, UnknownPathIs404AndPostIs405) {
  StartServer();
  HttpClient client = Connect();
  auto missing = client.Get("/v2/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  ASSERT_TRUE(client
                  .SendRaw("POST /v1/men2ent HTTP/1.1\r\nHost: h\r\n"
                           "Content-Length: 0\r\n\r\n")
                  .ok());
  auto post = client.ReadResponse();
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->status, 405);
  EXPECT_EQ(post->Header("Allow"), "GET, HEAD");
}

TEST_F(ServerTest, HealthzAndMetrics) {
  StartServer();
  HttpClient client = Connect();
  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health->body.find("\"version\":1"), std::string::npos);

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(std::string(metrics->Header("Content-Type")).find("text/plain"),
            std::string::npos);
  // The exposition carries both the API-layer and HTTP-layer instruments.
  EXPECT_NE(metrics->body.find("api_calls_men2ent"), std::string::npos);
  EXPECT_NE(metrics->body.find("http_requests"), std::string::npos);
}

TEST_F(ServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  StartServer();
  HttpClient client = Connect();
  for (int i = 0; i < 50; ++i) {
    auto response = client.Get("/healthz");
    ASSERT_TRUE(response.ok()) << "request " << i;
    EXPECT_EQ(response->status, 200);
  }
  EXPECT_EQ(server_->stats().connections_accepted, 1u);
  EXPECT_GE(server_->stats().requests, 50u);
}

TEST_F(ServerTest, PipelinedRequestsAnsweredInOrder) {
  StartServer();
  HttpClient client = Connect();
  ASSERT_TRUE(client
                  .SendRaw("GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n"
                           "GET /v1/men2ent?mention=nonexistent HTTP/1.1\r\n"
                           "Host: h\r\n\r\n")
                  .ok());
  auto first = client.ReadResponse();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 200);
  auto second = client.ReadResponse();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, 404);
}

TEST_F(ServerTest, MalformedRequestGets400AndClose) {
  StartServer();
  HttpClient client = Connect();
  ASSERT_TRUE(client.SendRaw("NONSENSE\r\n\r\n").ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);
  EXPECT_EQ(response->Header("Connection"), "close");
  EXPECT_GE(server_->stats().parse_errors, 1u);
}

TEST_F(ServerTest, OversizedRequestLineGets431) {
  HttpServer::Config config;
  config.parser_limits.max_request_line = 256;
  StartServer(config);
  HttpClient client = Connect();
  auto response = client.Get("/v1/men2ent?mention=" + std::string(512, 'x'));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 431);
}

TEST_F(ServerTest, ConnectionTableFullAnswers503) {
  HttpServer::Config config;
  config.max_connections = 1;
  StartServer(config);
  HttpClient first = Connect();
  auto warm = first.Get("/healthz");  // ensure the slot is occupied
  ASSERT_TRUE(warm.ok());

  HttpClient second = Connect();
  auto overflow = second.ReadResponse();  // server answers unprompted
  ASSERT_TRUE(overflow.ok());
  EXPECT_EQ(overflow->status, 503);
  EXPECT_GE(server_->stats().connections_rejected, 1u);

  // The occupant keeps working.
  auto again = first.Get("/healthz");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, 200);
}

TEST_F(ServerTest, LoadShedIs429WithRetryAfter) {
  StartServer();
  ApiService::ServingLimits limits;
  limits.max_in_flight = 1;
  api_->SetServingLimits(limits);
  // Every admitted query holds its in-flight slot ~2ms. An in-process hog
  // keeps the single slot occupied, so HTTP requests are shed regardless
  // of how the kernel distributed the connections over the event loops
  // (relying on overlapping wire requests alone is racy on a loaded box).
  util::ScopedFaultInjection scoped("api.query=1:delay=2", 7);
  std::atomic<bool> stop{false};
  std::thread hog([&] {
    while (!stop.load()) {
      (void)api_->TryGetEntity("concept");
    }
  });

  HttpClient client = Connect();
  int shed_count = 0;
  for (int i = 0; i < 200 && shed_count == 0; ++i) {
    auto response = client.Get("/v1/getEntity?concept=concept");
    ASSERT_TRUE(response.ok());
    if (response->status == 429) {
      // Sheds are polite 429s with backoff advice — not resets.
      EXPECT_EQ(response->Header("Retry-After"), "1");
      EXPECT_NE(response->body.find("RESOURCE_EXHAUSTED"),
                std::string::npos);
      ++shed_count;
    } else {
      // Landed in the gap between two hog calls and was admitted.
      EXPECT_EQ(response->status, 200);
    }
  }
  stop.store(true);
  hog.join();
  EXPECT_GT(shed_count, 0);
}

TEST_F(ServerTest, DeadlineExceededIs504) {
  StartServer();
  ApiService::ServingLimits limits;
  limits.deadline = std::chrono::microseconds(500);
  api_->SetServingLimits(limits);
  util::ScopedFaultInjection scoped("api.query=1:delay=5", 7);

  HttpClient client = Connect();
  auto response = client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 504);
  EXPECT_NE(response->body.find("DEADLINE_EXCEEDED"), std::string::npos);
}

TEST_F(ServerTest, InjectedIoErrorIs503) {
  StartServer();
  util::ScopedFaultInjection scoped("api.query=1", 7);
  HttpClient client = Connect();
  auto response = client.Get("/v1/men2ent?mention=" + PercentEncode("主公"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 503);
  EXPECT_NE(response->body.find("IO_ERROR"), std::string::npos);
}

TEST_F(ServerTest, GracefulDrainFinishesInFlightRequest) {
  StartServer();
  // The in-flight request takes ~50ms; Stop() arrives mid-query and must
  // let it finish and flush rather than cutting the connection.
  util::ScopedFaultInjection scoped("api.query=1:delay=50", 7);
  std::atomic<int> status{0};
  std::thread requester([&] {
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    auto response = client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    status.store(response->status);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  server_->Stop();
  server_->Wait();
  requester.join();
  EXPECT_EQ(status.load(), 200);
  EXPECT_FALSE(server_->running());

  // Post-drain the listener is gone: new connections are refused.
  HttpClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server_->port()).ok());
}

// The SIGPIPE regression: a client that disconnects before (or while) the
// server writes its response must surface as EPIPE on the server side — an
// orderly connection close — never a process-killing signal, and never
// poison for later connections.
TEST_F(ServerTest, EarlyCloseDoesNotKillServer) {
  StartServer();
  for (int i = 0; i < 10; ++i) {
    HttpClient rude = Connect();
    // Pipeline several /metrics requests (the largest response body) and
    // hang up without reading a byte of the answers.
    std::string burst;
    for (int j = 0; j < 8; ++j) {
      burst += "GET /metrics HTTP/1.1\r\nHost: h\r\n\r\n";
    }
    ASSERT_TRUE(rude.SendRaw(burst).ok());
    rude.Close();
  }
  // Give the event loops a beat to hit the broken pipes.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  HttpClient polite = Connect();
  auto response = polite.Get("/healthz");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
}

TEST(SerializeResponseTest, HeadOmitsBodyButKeepsContentLength) {
  HttpResponse response;
  response.body = "{\"status\":\"ok\"}";
  const std::string head = SerializeResponse(response, true, true);
  EXPECT_NE(head.find("Content-Length: 15\r\n"), std::string::npos);
  EXPECT_EQ(head.find("status\":\"ok"), std::string::npos);
  const std::string full = SerializeResponse(response, true, false);
  EXPECT_NE(full.find("status\":\"ok"), std::string::npos);
}

}  // namespace
}  // namespace cnpb::server
