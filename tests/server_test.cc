// End-to-end tests for the HTTP serving layer: real sockets over loopback,
// the wire contract of the three public endpoints (Table II), the
// status→HTTP mapping under overload and injected faults, graceful drain,
// and the SIGPIPE/early-close regression. The pure-parser corpus lives in
// http_parser_test.cc; multi-seed chaos in server_concurrency_test.cc.
#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/http.h"
#include "server/service.h"
#include "taxonomy/api_service.h"
#include "taxonomy/taxonomy.h"
#include "util/fault_injection.h"
#include "util/net.h"

namespace cnpb::server {
namespace {

using taxonomy::ApiService;
using taxonomy::Taxonomy;

Taxonomy MakeTaxonomy() {
  Taxonomy t;
  t.AddIsa("刘备", "君主", taxonomy::Source::kTag, 0.9f);
  t.AddIsa("刘备", "人物", taxonomy::Source::kTag, 0.8f);
  t.AddIsa("曹操", "君主", taxonomy::Source::kTag, 0.9f);
  t.AddIsa("君主", "人物", taxonomy::Source::kTag, 0.7f);
  for (int i = 0; i < 6; ++i) {
    t.AddIsa("entity" + std::to_string(i), "concept",
             taxonomy::Source::kTag, 0.5f);
  }
  return t;
}

// One live server over a hand-built taxonomy, torn down per test.
class ServerTest : public ::testing::Test {
 protected:
  void StartServer(HttpServer::Config config = {}) {
    taxonomy_ = std::make_unique<Taxonomy>(MakeTaxonomy());
    api_ = std::make_unique<ApiService>(taxonomy_.get());
    api_->RegisterMention("主公", taxonomy_->Find("刘备"));
    api_->RegisterMention("孟德", taxonomy_->Find("曹操"));
    endpoints_ = std::make_unique<ApiEndpoints>(api_.get());
    config.num_threads = 2;
    server_ = std::make_unique<HttpServer>(config, endpoints_->AsHandler());
    ASSERT_TRUE(server_->Start().ok());
  }

  HttpClient Connect() {
    HttpClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  std::unique_ptr<Taxonomy> taxonomy_;
  std::unique_ptr<ApiService> api_;
  std::unique_ptr<ApiEndpoints> endpoints_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServerTest, Men2EntReturnsResolvedEntities) {
  StartServer();
  HttpClient client = Connect();
  auto response =
      client.Get("/v1/men2ent?mention=" + PercentEncode("主公"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->Header("Content-Type"), "application/json");
  EXPECT_NE(response->body.find("\"刘备\""), std::string::npos);
  EXPECT_NE(response->body.find("\"version\":1"), std::string::npos);
  EXPECT_NE(response->body.find("\"num_hypernyms\":2"), std::string::npos);
}

TEST_F(ServerTest, GetConceptDirectAndTransitive) {
  StartServer();
  HttpClient client = Connect();
  auto direct =
      client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->status, 200);
  EXPECT_NE(direct->body.find("君主"), std::string::npos);

  auto transitive = client.Get("/v1/getConcept?entity=" +
                               PercentEncode("刘备") + "&transitive=1");
  ASSERT_TRUE(transitive.ok());
  EXPECT_EQ(transitive->status, 200);
  // 人物 is both a direct hypernym and an inherited one via 君主; either
  // way it must appear in the transitive closure.
  EXPECT_NE(transitive->body.find("人物"), std::string::npos);
  EXPECT_NE(transitive->body.find("\"transitive\":true"), std::string::npos);
  EXPECT_NE(direct->body.find("\"transitive\":false"), std::string::npos);
}

TEST_F(ServerTest, GetEntityHonorsLimit) {
  StartServer();
  HttpClient client = Connect();
  auto all = client.Get("/v1/getEntity?concept=concept");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->status, 200);
  auto capped = client.Get("/v1/getEntity?concept=concept&limit=2");
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->status, 200);
  EXPECT_LT(capped->body.size(), all->body.size());

  auto bad = client.Get("/v1/getEntity?concept=concept&limit=zero");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
}

TEST_F(ServerTest, MissingParameterIs400) {
  StartServer();
  HttpClient client = Connect();
  for (const char* target :
       {"/v1/men2ent", "/v1/getConcept", "/v1/getEntity"}) {
    auto response = client.Get(target);
    ASSERT_TRUE(response.ok()) << target;
    EXPECT_EQ(response->status, 400) << target;
    EXPECT_NE(response->body.find("\"error\""), std::string::npos);
  }
}

TEST_F(ServerTest, UnknownMentionIs404) {
  StartServer();
  HttpClient client = Connect();
  auto response = client.Get("/v1/men2ent?mention=nonexistent");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 404);
  EXPECT_NE(response->body.find("NOT_FOUND"), std::string::npos);
}

TEST_F(ServerTest, UnknownPathIs404AndPostIs405) {
  StartServer();
  HttpClient client = Connect();
  auto missing = client.Get("/v2/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  ASSERT_TRUE(client
                  .SendRaw("POST /v1/men2ent HTTP/1.1\r\nHost: h\r\n"
                           "Content-Length: 0\r\n\r\n")
                  .ok());
  auto post = client.ReadResponse();
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->status, 405);
  EXPECT_EQ(post->Header("Allow"), "GET, HEAD");
}

TEST_F(ServerTest, HealthzAndMetrics) {
  StartServer();
  HttpClient client = Connect();
  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health->body.find("\"version\":1"), std::string::npos);

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(std::string(metrics->Header("Content-Type")).find("text/plain"),
            std::string::npos);
  // The exposition carries both the API-layer and HTTP-layer instruments.
  EXPECT_NE(metrics->body.find("api_calls_men2ent"), std::string::npos);
  EXPECT_NE(metrics->body.find("http_requests"), std::string::npos);
}

TEST_F(ServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  StartServer();
  HttpClient client = Connect();
  for (int i = 0; i < 50; ++i) {
    auto response = client.Get("/healthz");
    ASSERT_TRUE(response.ok()) << "request " << i;
    EXPECT_EQ(response->status, 200);
  }
  EXPECT_EQ(server_->stats().connections_accepted, 1u);
  EXPECT_GE(server_->stats().requests, 50u);
}

TEST_F(ServerTest, PipelinedRequestsAnsweredInOrder) {
  StartServer();
  HttpClient client = Connect();
  ASSERT_TRUE(client
                  .SendRaw("GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n"
                           "GET /v1/men2ent?mention=nonexistent HTTP/1.1\r\n"
                           "Host: h\r\n\r\n")
                  .ok());
  auto first = client.ReadResponse();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 200);
  auto second = client.ReadResponse();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, 404);
}

TEST_F(ServerTest, MalformedRequestGets400AndClose) {
  StartServer();
  HttpClient client = Connect();
  ASSERT_TRUE(client.SendRaw("NONSENSE\r\n\r\n").ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);
  EXPECT_EQ(response->Header("Connection"), "close");
  EXPECT_GE(server_->stats().parse_errors, 1u);
}

TEST_F(ServerTest, OversizedRequestLineGets431) {
  HttpServer::Config config;
  config.parser_limits.max_request_line = 256;
  StartServer(config);
  HttpClient client = Connect();
  auto response = client.Get("/v1/men2ent?mention=" + std::string(512, 'x'));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 431);
}

TEST_F(ServerTest, ConnectionTableFullAnswers503) {
  HttpServer::Config config;
  config.max_connections = 1;
  StartServer(config);
  HttpClient first = Connect();
  auto warm = first.Get("/healthz");  // ensure the slot is occupied
  ASSERT_TRUE(warm.ok());

  HttpClient second = Connect();
  auto overflow = second.ReadResponse();  // server answers unprompted
  ASSERT_TRUE(overflow.ok());
  EXPECT_EQ(overflow->status, 503);
  EXPECT_GE(server_->stats().connections_rejected, 1u);

  // The occupant keeps working.
  auto again = first.Get("/healthz");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, 200);
}

TEST_F(ServerTest, LoadShedIs429WithRetryAfter) {
  StartServer();
  ApiService::ServingLimits limits;
  limits.max_in_flight = 1;
  api_->SetServingLimits(limits);
  // Every admitted query holds its in-flight slot ~2ms. An in-process hog
  // keeps the single slot occupied, so HTTP requests are shed regardless
  // of how the kernel distributed the connections over the event loops
  // (relying on overlapping wire requests alone is racy on a loaded box).
  util::ScopedFaultInjection scoped("api.query=1:delay=2", 7);
  std::atomic<bool> stop{false};
  std::thread hog([&] {
    while (!stop.load()) {
      (void)api_->TryGetEntity("concept");
    }
  });

  HttpClient client = Connect();
  int shed_count = 0;
  for (int i = 0; i < 200 && shed_count == 0; ++i) {
    auto response = client.Get("/v1/getEntity?concept=concept");
    ASSERT_TRUE(response.ok());
    if (response->status == 429) {
      // Sheds are polite 429s with backoff advice — not resets.
      EXPECT_EQ(response->Header("Retry-After"), "1");
      EXPECT_NE(response->body.find("RESOURCE_EXHAUSTED"),
                std::string::npos);
      ++shed_count;
    } else {
      // Landed in the gap between two hog calls and was admitted.
      EXPECT_EQ(response->status, 200);
    }
  }
  stop.store(true);
  hog.join();
  EXPECT_GT(shed_count, 0);
}

TEST_F(ServerTest, DeadlineExceededIs504) {
  StartServer();
  ApiService::ServingLimits limits;
  limits.deadline = std::chrono::microseconds(500);
  api_->SetServingLimits(limits);
  util::ScopedFaultInjection scoped("api.query=1:delay=5", 7);

  HttpClient client = Connect();
  auto response = client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 504);
  EXPECT_NE(response->body.find("DEADLINE_EXCEEDED"), std::string::npos);
}

TEST_F(ServerTest, InjectedIoErrorIs503) {
  StartServer();
  util::ScopedFaultInjection scoped("api.query=1", 7);
  HttpClient client = Connect();
  auto response = client.Get("/v1/men2ent?mention=" + PercentEncode("主公"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 503);
  EXPECT_NE(response->body.find("IO_ERROR"), std::string::npos);
}

TEST_F(ServerTest, GracefulDrainFinishesInFlightRequest) {
  StartServer();
  // The in-flight request takes ~50ms; Stop() arrives mid-query and must
  // let it finish and flush rather than cutting the connection.
  util::ScopedFaultInjection scoped("api.query=1:delay=50", 7);
  std::atomic<int> status{0};
  std::thread requester([&] {
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    auto response = client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    status.store(response->status);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  server_->Stop();
  server_->Wait();
  requester.join();
  EXPECT_EQ(status.load(), 200);
  EXPECT_FALSE(server_->running());

  // Post-drain the listener is gone: new connections are refused.
  HttpClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server_->port()).ok());
}

// The SIGPIPE regression: a client that disconnects before (or while) the
// server writes its response must surface as EPIPE on the server side — an
// orderly connection close — never a process-killing signal, and never
// poison for later connections.
TEST_F(ServerTest, EarlyCloseDoesNotKillServer) {
  StartServer();
  for (int i = 0; i < 10; ++i) {
    HttpClient rude = Connect();
    // Pipeline several /metrics requests (the largest response body) and
    // hang up without reading a byte of the answers.
    std::string burst;
    for (int j = 0; j < 8; ++j) {
      burst += "GET /metrics HTTP/1.1\r\nHost: h\r\n\r\n";
    }
    ASSERT_TRUE(rude.SendRaw(burst).ok());
    rude.Close();
  }
  // Give the event loops a beat to hit the broken pipes.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  HttpClient polite = Connect();
  auto response = polite.Get("/healthz");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
}

// ------------------------------------------------- strict limit parsing
// The old parse used strtoull, which silently accepted leading whitespace
// and '+' — "limit=+5" and "limit=%205" (an encoded " 5") slipped through
// as 5. The contract is digits-only in [1, 100000]; everything else is 400.
TEST_F(ServerTest, GetEntityLimitParsingIsStrict) {
  StartServer();
  HttpClient client = Connect();
  for (const char* target : {
           "/v1/getEntity?concept=concept&limit=%2B5",  // literal "+5"
           "/v1/getEntity?concept=concept&limit=%205",  // literal " 5"
           "/v1/getEntity?concept=concept&limit=+5",    // '+' decodes to ' '
           "/v1/getEntity?concept=concept&limit=5x",
           "/v1/getEntity?concept=concept&limit=0",
           "/v1/getEntity?concept=concept&limit=",
           // 2^64: overflows uint64 in the digit loop, not UB-wraps.
           "/v1/getEntity?concept=concept&limit=18446744073709551616",
           "/v1/getEntity?concept=concept&limit=100001",
       }) {
    auto response = client.Get(target);
    ASSERT_TRUE(response.ok()) << target;
    EXPECT_EQ(response->status, 400) << target;
    EXPECT_NE(response->body.find("INVALID_ARGUMENT"), std::string::npos)
        << target;
  }
  auto good = client.Get("/v1/getEntity?concept=concept&limit=5");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->status, 200);
}

// ------------------------------------------------------ batch endpoints

TEST_F(ServerTest, Men2EntBatchResolvesRepeatedParams) {
  StartServer();
  HttpClient client = Connect();
  auto response = client.Get("/v1/men2ent_batch?mention=" +
                             PercentEncode("主公") + "&mention=" +
                             PercentEncode("孟德") + "&mention=missing");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("\"version\":1"), std::string::npos);
  EXPECT_NE(response->body.find("\"count\":3"), std::string::npos);
  EXPECT_NE(response->body.find("\"刘备\""), std::string::npos);
  EXPECT_NE(response->body.find("\"曹操\""), std::string::npos);
  // Unknown mentions come back as empty candidate lists in position — a
  // partial answer, not a request-killing 404 like the single-shot API.
  EXPECT_NE(
      response->body.find("{\"mention\":\"missing\",\"entities\":[]}"),
      std::string::npos);
}

TEST_F(ServerTest, GetConceptBatchAcceptsPostBody) {
  StartServer();
  HttpClient client = Connect();
  // One term per line; CRLF line endings and blank lines are tolerated.
  auto response = client.Post(
      "/v1/getConcept_batch",
      std::string("刘备\r\n") + "曹操\n" + "\n" + "unknown哉\n");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->Header("Content-Type"), "application/json");
  EXPECT_NE(response->body.find("\"count\":3"), std::string::npos);
  EXPECT_NE(response->body.find("君主"), std::string::npos);
  EXPECT_NE(
      response->body.find("{\"entity\":\"unknown哉\",\"concepts\":[]}"),
      std::string::npos);
}

TEST_F(ServerTest, GetEntityBatchHonorsLimitWithPartialUnknowns) {
  StartServer();
  HttpClient client = Connect();
  auto response = client.Get(
      "/v1/getEntity_batch?concept=concept&concept=missing&limit=2");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("\"limit\":2"), std::string::npos);
  EXPECT_NE(response->body.find("\"count\":2"), std::string::npos);
  EXPECT_NE(
      response->body.find("{\"concept\":\"missing\",\"entities\":[]}"),
      std::string::npos);
  // "concept" has six hyponyms entity0..entity5; limit=2 keeps exactly two.
  // (The name "entity" never appears in the JSON keys, so counting the
  // substring counts returned hyponyms.)
  size_t hyponyms = 0;
  for (size_t at = response->body.find("entity"); at != std::string::npos;
       at = response->body.find("entity", at + 1)) {
    ++hyponyms;
  }
  EXPECT_EQ(hyponyms, 2u);
}

TEST_F(ServerTest, BatchRejectsEmptyAndOversizedInput) {
  StartServer();
  HttpClient client = Connect();
  auto blank = client.Post("/v1/men2ent_batch", "\r\n\n");
  ASSERT_TRUE(blank.ok());
  EXPECT_EQ(blank->status, 400);

  auto unparameterized = client.Get("/v1/getConcept_batch");
  ASSERT_TRUE(unparameterized.ok());
  EXPECT_EQ(unparameterized->status, 400);
  EXPECT_NE(unparameterized->body.find("entity"), std::string::npos);

  std::string oversized;
  for (int i = 0; i < 300; ++i) {
    oversized += "m" + std::to_string(i) + "\n";
  }
  auto rejected = client.Post("/v1/men2ent_batch", oversized);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, 400);
  EXPECT_NE(rejected->body.find("batch too large"), std::string::npos);

  // Batch endpoints advertise POST in the 405 Allow list; PUT is refused.
  ASSERT_TRUE(client
                  .SendRaw("PUT /v1/men2ent_batch HTTP/1.1\r\nHost: h\r\n"
                           "Content-Length: 0\r\n\r\n")
                  .ok());
  auto put = client.ReadResponse();
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put->status, 405);
  EXPECT_EQ(put->Header("Allow"), "GET, HEAD, POST");
}

// ------------------------------------------------------ timer reclaims

TEST_F(ServerTest, IdleConnectionReclaimedAndHalfRequestGets408) {
  HttpServer::Config config;
  config.idle_timeout = std::chrono::milliseconds(150);
  StartServer(config);

  HttpClient silent = Connect();
  auto warm = silent.Get("/healthz");
  ASSERT_TRUE(warm.ok());

  // A half-sent request going idle deserves a diagnosis, not a bare RST.
  HttpClient halfway = Connect();
  ASSERT_TRUE(halfway.SendRaw("GET /healthz HTTP/1.1\r\nHost: h\r\n").ok());

  auto response = halfway.ReadResponse();  // blocks until the 408 arrives
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 408);

  bool reclaimed = false;
  for (int i = 0; i < 250 && !reclaimed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const HttpServer::Stats stats = server_->stats();
    reclaimed = stats.open_connections == 0 && stats.idle_timeouts >= 2;
  }
  const HttpServer::Stats stats = server_->stats();
  EXPECT_TRUE(reclaimed) << "open=" << stats.open_connections
                         << " idle_timeouts=" << stats.idle_timeouts;
}

// The write-stall fd leak: a peer that sends requests but never reads the
// responses used to pin its connection forever, because idle reclaim
// required an empty output queue. The wheel now applies write_stall_timeout
// to exactly that state. A tiny SO_SNDBUF makes the stall reproducible on
// loopback: the responses overrun the socket buffers and flushing parks
// with output queued.
TEST_F(ServerTest, WriteStalledConnectionReclaimed) {
  HttpServer::Config config;
  config.so_sndbuf = 4096;
  config.write_stall_timeout = std::chrono::milliseconds(200);
  config.idle_timeout = std::chrono::milliseconds(60000);  // out of play
  StartServer(config);

  // A plain HttpClient would not stall: loopback receive-buffer autotuning
  // absorbs megabytes. Pinning SO_RCVBUF before connect fixes the peer's
  // flow-control window, so a few dozen KB of unread responses wedge the
  // server's writes for real.
  const int rude = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(rude, 0);
  const int rcvbuf = 4096;
  ASSERT_EQ(::setsockopt(rude, SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                         sizeof(rcvbuf)),
            0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(rude, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::string burst;
  for (int j = 0; j < 600; ++j) {
    burst += "GET /metrics HTTP/1.1\r\nHost: h\r\n\r\n";
  }
  for (size_t off = 0; off < burst.size();) {
    const ssize_t sent =
        ::send(rude, burst.data() + off, burst.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(sent, 0);
    off += static_cast<size_t>(sent);
  }
  // ... and never read a byte. The connection must be reclaimed while the
  // client keeps its end open (the leak scenario), not when it hangs up.
  bool reclaimed = false;
  for (int i = 0; i < 250 && !reclaimed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const HttpServer::Stats stats = server_->stats();
    reclaimed =
        stats.open_connections == 0 && stats.write_stall_timeouts >= 1;
  }
  const HttpServer::Stats stats = server_->stats();
  EXPECT_TRUE(reclaimed) << "open=" << stats.open_connections
                         << " stall_timeouts=" << stats.write_stall_timeouts;
  EXPECT_EQ(stats.idle_timeouts, 0u);

  // The reclaim freed real capacity: a well-behaved client is served.
  HttpClient polite = Connect();
  auto response = polite.Get("/healthz");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  ::close(rude);
}

// ------------------------------------------- version-stamp coherence
// The headline regression: GetConcept/GetEntity used to stamp responses
// with api->version() read *after* the query returned, so a publish landing
// between resolve and stamp produced a body whose data and version
// disagreed. Every version V of this taxonomy names its data after V
// ("genV", "entV"), making any incoherent stamp visible in a single
// response. With the old stamping this fails within a few hundred
// requests; with pinned-snapshot stamps it can never fail.
uint64_t ParseVersionStamp(const std::string& body) {
  const size_t at = body.find("\"version\":");
  if (at == std::string::npos) return 0;
  return std::strtoull(body.c_str() + at + 10, nullptr, 10);
}

std::shared_ptr<const Taxonomy> MakeGenTaxonomy(uint64_t v) {
  Taxonomy t;
  const std::string gen = std::to_string(v);
  t.AddIsa("e", "gen" + gen, taxonomy::Source::kTag, 0.99f);
  t.AddIsa("ent" + gen, "anchor", taxonomy::Source::kTag, 0.99f);
  return Taxonomy::Freeze(std::move(t));
}

TEST(VersionCoherenceTest, StampAlwaysNamesTheSnapshotThatResolved) {
  // The natural race window — between pinning the snapshot and the stamp
  // leaving the handler — is sub-microsecond, far too narrow to hit
  // reliably (on a single-core host a publish can only land there via a
  // perfectly-timed preemption). The api.resolve delay fault fires inside
  // that window with the pin held, so the publisher provably runs mid-query
  // on every request. Old stamping (api->version() read after resolve)
  // fails almost every request here; pinned-snapshot stamps cannot fail at
  // any publish rate.
  constexpr int kRequestsPerClient = 100;
  util::ScopedFaultInjection scoped("api.resolve=1:delay=2", 7);
  ApiService api(MakeGenTaxonomy(1));  // published as version 1
  ApiEndpoints endpoints(&api);
  HttpServer::Config config;
  config.num_threads = 2;
  HttpServer server(config, endpoints.AsHandler());
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    // Single publisher: versions are assigned 2, 3, ... in order, so
    // version V always serves genV/entV.
    for (uint64_t v = 2; !stop.load(); ++v) {
      ASSERT_EQ(api.Publish(MakeGenTaxonomy(v), {}), v);
    }
  });

  const auto check = [&](const char* target, const char* prefix) {
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    for (int i = 0; i < kRequestsPerClient; ++i) {
      auto response = client.Get(target);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_EQ(response->status, 200);
      const uint64_t stamped = ParseVersionStamp(response->body);
      ASSERT_GE(stamped, 1u);
      const std::string expected =
          "\"" + std::string(prefix) + std::to_string(stamped) + "\"";
      ASSERT_NE(response->body.find(expected), std::string::npos)
          << "stamped version " << stamped
          << " but the data disagrees: " << response->body;
    }
  };
  std::thread concepts([&] { check("/v1/getConcept?entity=e", "gen"); });
  std::thread hyponyms(
      [&] { check("/v1/getEntity?concept=anchor&limit=10", "ent"); });
  concepts.join();
  hyponyms.join();
  stop.store(true);
  publisher.join();
  // The fault must actually have widened the window, or this test proves
  // nothing: the publisher overlapped the clients the whole run.
  EXPECT_GT(api.version(), 100u);
}

TEST(SerializeResponseTest, HeadOmitsBodyButKeepsContentLength) {
  HttpResponse response;
  response.body = "{\"status\":\"ok\"}";
  const std::string head = SerializeResponse(response, true, true);
  EXPECT_NE(head.find("Content-Length: 15\r\n"), std::string::npos);
  EXPECT_EQ(head.find("status\":\"ok"), std::string::npos);
  const std::string full = SerializeResponse(response, true, false);
  EXPECT_NE(full.find("status\":\"ok"), std::string::npos);
}

}  // namespace
}  // namespace cnpb::server
