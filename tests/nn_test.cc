#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/adam.h"
#include "nn/autograd.h"
#include "nn/copynet.h"
#include "nn/layers.h"
#include "nn/vocab.h"
#include "util/rng.h"

namespace cnpb::nn {
namespace {

// Checks every gradient of `params` against central finite differences of
// the scalar loss built by `forward`. `forward` must rebuild the graph from
// the CURRENT parameter values on each call.
void CheckGradients(const std::vector<Var>& params,
                    const std::function<Var()>& forward, float tolerance = 2e-2f) {
  for (const Var& p : params) {
    p->EnsureGrad();
    p->grad.Fill(0.0f);
  }
  Var loss = forward();
  Backward(loss);
  const float eps = 1e-3f;
  for (const Var& p : params) {
    ASSERT_TRUE(p->grad_ready);
    for (size_t i = 0; i < p->value.size(); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const float up = forward()->value[0];
      p->value[i] = saved - eps;
      const float down = forward()->value[0];
      p->value[i] = saved;
      const float numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(p->grad[i], numeric,
                  tolerance * std::max(1.0f, std::fabs(numeric)))
          << "param index " << i;
    }
  }
}

Var RandomParam(int rows, int cols, uint64_t seed) {
  util::Rng rng(seed);
  return MakeVar(Tensor::RandomUniform(rows, cols, 0.5f, rng), true);
}

Tensor RandomCoef(int rows, int cols, uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::RandomUniform(rows, cols, 1.0f, rng);
}

TEST(TensorTest, ShapeAndAccess) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6u);
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
  t.Fill(1.0f);
  EXPECT_EQ(t.at(1, 2), 1.0f);
}

TEST(AutogradTest, AddMulGradients) {
  Var a = RandomParam(4, 1, 1);
  Var b = RandomParam(4, 1, 2);
  Var c = MakeVar(RandomCoef(4, 1, 3), false);
  CheckGradients({a, b}, [&]() { return Dot(Mul(Add(a, b), a), c); });
}

TEST(AutogradTest, SubScalarMulGradients) {
  Var a = RandomParam(5, 1, 4);
  Var b = RandomParam(5, 1, 5);
  Var ones = MakeVar([] {
    Tensor t(5);
    t.Fill(1.0f);
    return t;
  }());
  CheckGradients({a, b},
                 [&]() { return Dot(ScalarMul(Sub(a, b), 2.5f), ones); });
}

TEST(AutogradTest, TanhSigmoidGradients) {
  Var a = RandomParam(6, 1, 6);
  Var ones = MakeVar([] {
    Tensor t(6);
    t.Fill(1.0f);
    return t;
  }());
  CheckGradients({a}, [&]() { return Dot(Tanh(a), ones); });
  CheckGradients({a}, [&]() { return Dot(Sigmoid(a), ones); });
  CheckGradients({a}, [&]() { return Dot(OneMinus(a), ones); });
}

TEST(AutogradTest, MatVecGradients) {
  Var w = RandomParam(3, 4, 7);
  Var x = RandomParam(4, 1, 8);
  Var coef = MakeVar(RandomCoef(3, 1, 9));
  CheckGradients({w, x}, [&]() { return Dot(MatVec(w, x), coef); });
}

TEST(AutogradTest, SoftmaxGradients) {
  Var a = RandomParam(5, 1, 10);
  Var coef = MakeVar(RandomCoef(5, 1, 11));
  CheckGradients({a}, [&]() { return Dot(Softmax(a), coef); });
}

TEST(AutogradTest, SoftmaxSumsToOne) {
  Var a = RandomParam(7, 1, 12);
  Var s = Softmax(a);
  float total = 0;
  for (size_t i = 0; i < s->value.size(); ++i) {
    total += s->value[i];
    EXPECT_GT(s->value[i], 0.0f);
  }
  EXPECT_NEAR(total, 1.0f, 1e-5);
}

TEST(AutogradTest, GatherOpsGradients) {
  Var a = RandomParam(6, 1, 13);
  CheckGradients({a}, [&]() { return NegLog(Sigmoid(Gather(a, 2))); });
  CheckGradients({a}, [&]() {
    return NegLog(Sigmoid(GatherSum(a, {0, 3, 3, 5})));
  });
}

TEST(AutogradTest, ConcatGradients) {
  Var a = RandomParam(3, 1, 14);
  Var b = RandomParam(2, 1, 15);
  Var coef = MakeVar(RandomCoef(5, 1, 16));
  CheckGradients({a, b}, [&]() { return Dot(Concat(a, b), coef); });
}

TEST(AutogradTest, RowScattersIntoTable) {
  Var table = RandomParam(4, 3, 17);
  Var coef = MakeVar(RandomCoef(3, 1, 18));
  CheckGradients({table}, [&]() { return Dot(Row(table, 2), coef); });
  // Untouched rows receive zero gradient.
  Var loss = Dot(Row(table, 2), coef);
  table->grad.Fill(0.0f);
  Backward(loss);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(table->grad.at(0, c), 0.0f);
    EXPECT_NE(table->grad.at(2, c), 0.0f);
  }
}

TEST(AutogradTest, StackAndMatTVecGradients) {
  Var r0 = RandomParam(3, 1, 19);
  Var r1 = RandomParam(3, 1, 20);
  Var attn = RandomParam(2, 1, 21);
  Var coef = MakeVar(RandomCoef(3, 1, 22));
  CheckGradients({r0, r1, attn}, [&]() {
    Var h = StackRows({r0, r1});
    return Dot(MatTVec(h, Softmax(attn)), coef);
  });
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // loss = dot(a, a): gradient is 2a — checks repeated-parent accumulation.
  Var a = RandomParam(4, 1, 23);
  Var loss = Dot(a, a);
  Backward(loss);
  for (size_t i = 0; i < a->value.size(); ++i) {
    EXPECT_NEAR(a->grad[i], 2 * a->value[i], 1e-4);
  }
}

TEST(LayersTest, LinearGradients) {
  util::Rng rng(31);
  Linear linear(4, 3, rng);
  Var x = RandomParam(4, 1, 32);
  Var coef = MakeVar(RandomCoef(3, 1, 33));
  std::vector<Var> params;
  linear.CollectParams(&params);
  params.push_back(x);
  CheckGradients(params, [&]() { return Dot(linear(x), coef); });
}

TEST(LayersTest, GruCellGradientsAndShape) {
  util::Rng rng(34);
  GruCell gru(3, 5, rng);
  Var x = RandomParam(3, 1, 35);
  Var h = RandomParam(5, 1, 36);
  Var coef = MakeVar(RandomCoef(5, 1, 37));
  std::vector<Var> params;
  gru.CollectParams(&params);
  params.push_back(x);
  params.push_back(h);
  CheckGradients(params, [&]() { return Dot(gru.Step(x, h), coef); });
  EXPECT_EQ(gru.Step(x, h)->value.rows(), 5);
  EXPECT_EQ(gru.InitialState()->value.rows(), 5);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimise ||x - t||^2.
  util::Rng rng(41);
  Var x = MakeVar(Tensor::RandomUniform(4, 1, 1.0f, rng), true);
  Tensor target(4);
  for (int i = 0; i < 4; ++i) target[i] = static_cast<float>(i) - 1.5f;
  Adam::Config config;
  config.lr = 0.05f;
  Adam adam({x}, config);
  for (int step = 0; step < 400; ++step) {
    Var t = MakeVar(target);
    Var diff = Sub(x, t);
    Backward(Dot(diff, diff));
    adam.Step();
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(x->value[i], target[i], 1e-2);
  EXPECT_EQ(adam.NumParams(), 4u);
}

TEST(VocabTest, ReservedAndRoundTrip) {
  Vocab vocab;
  EXPECT_EQ(vocab.size(), 3);
  const int id = vocab.Add("演员");
  EXPECT_EQ(vocab.Add("演员"), id);
  EXPECT_EQ(vocab.Id("演员"), id);
  EXPECT_EQ(vocab.Id("未知词"), Vocab::kUnk);
  EXPECT_EQ(vocab.Word(id), "演员");
  EXPECT_EQ(vocab.Encode({"演员", "x"}),
            (std::vector<int>{id, Vocab::kUnk}));
}

// ---- CopyNet ---------------------------------------------------------------

class CopyNetTest : public ::testing::Test {
 protected:
  // Task: the target is always the token following the marker 是 in the
  // source. Some targets are in the output vocab (generate path), some are
  // not (copy path).
  void BuildData(bool oov_targets) {
    util::Rng rng(55);
    const std::vector<std::string> in_vocab_targets = {"演员", "歌手", "作家"};
    const std::vector<std::string> oov_only_targets = {"雕塑家", "飞行员"};
    for (const char* w : {"他", "她", "是", "著名", "的"}) {
      input_vocab_.Add(w);
    }
    for (const std::string& w : in_vocab_targets) {
      input_vocab_.Add(w);
      output_vocab_.Add(w);
    }
    for (const std::string& w : oov_only_targets) input_vocab_.Add(w);

    for (int i = 0; i < 240; ++i) {
      CopyNet::Example example;
      std::string target;
      if (oov_targets && i % 3 == 0) {
        target = oov_only_targets[rng.Uniform(oov_only_targets.size())];
      } else {
        target = in_vocab_targets[rng.Uniform(in_vocab_targets.size())];
      }
      example.source_words = {rng.Bernoulli(0.5) ? "他" : "她", "是", "著名",
                              "的", target};
      example.source_ids = input_vocab_.Encode(example.source_words);
      example.target_words = {target};
      examples_.push_back(std::move(example));
    }
  }

  float TrainModel(CopyNet* model, int epochs = 12) {
    Adam::Config adam_config;
    adam_config.lr = 0.02f;
    Adam adam(model->Params(), adam_config);
    float last_loss = 0;
    for (int epoch = 0; epoch < epochs; ++epoch) {
      float epoch_loss = 0;
      int batches = 0;
      std::vector<const CopyNet::Example*> batch;
      for (const auto& example : examples_) {
        batch.push_back(&example);
        if (batch.size() == 16) {
          epoch_loss += model->AccumulateBatch(batch);
          adam.Step();
          batch.clear();
          ++batches;
        }
      }
      last_loss = epoch_loss / batches;
    }
    return last_loss;
  }

  enum class Subset { kAll, kOovOnly, kInVocabOnly };

  double Accuracy(const CopyNet& model, Subset subset) {
    size_t correct = 0, total = 0;
    for (const auto& example : examples_) {
      const bool oov = !output_vocab_.Contains(example.target_words[0]);
      if (subset == Subset::kOovOnly && !oov) continue;
      if (subset == Subset::kInVocabOnly && oov) continue;
      ++total;
      const auto generated =
          model.Generate(example.source_ids, example.source_words);
      if (!generated.empty() && generated[0] == example.target_words[0]) {
        ++correct;
      }
    }
    return total == 0 ? 0.0 : static_cast<double>(correct) / total;
  }

  Vocab input_vocab_;
  Vocab output_vocab_;
  std::vector<CopyNet::Example> examples_;
};

TEST_F(CopyNetTest, LossDecreasesAndLearnsInVocabTargets) {
  BuildData(/*oov_targets=*/false);
  CopyNet::Config config;
  config.embed_dim = 12;
  config.hidden_dim = 20;
  CopyNet model(&input_vocab_, &output_vocab_, config);
  std::vector<const CopyNet::Example*> first = {&examples_[0]};
  const float initial = model.AccumulateBatch(first);
  const float final_loss = TrainModel(&model);
  EXPECT_LT(final_loss, initial * 0.5f);
  EXPECT_GT(Accuracy(model, Subset::kAll), 0.9);
}

TEST_F(CopyNetTest, CopyMechanismHandlesOovTargets) {
  BuildData(/*oov_targets=*/true);
  CopyNet::Config config;
  config.embed_dim = 12;
  config.hidden_dim = 20;
  CopyNet model(&input_vocab_, &output_vocab_, config);
  TrainModel(&model);
  EXPECT_GT(Accuracy(model, Subset::kOovOnly), 0.8);
}

TEST_F(CopyNetTest, AblationWithoutCopyFailsOnOov) {
  BuildData(/*oov_targets=*/true);
  CopyNet::Config config;
  config.embed_dim = 12;
  config.hidden_dim = 20;
  config.use_copy = false;
  CopyNet model(&input_vocab_, &output_vocab_, config);
  TrainModel(&model);
  // Without copying the OOV targets are unreachable.
  EXPECT_EQ(Accuracy(model, Subset::kOovOnly), 0.0);
  EXPECT_GT(Accuracy(model, Subset::kAll), 0.55);
}

TEST(CopyNetEdgeTest, EmptySourceGeneratesNothing) {
  Vocab in, out;
  CopyNet::Config config;
  config.embed_dim = 4;
  config.hidden_dim = 6;
  CopyNet model(&in, &out, config);
  EXPECT_TRUE(model.Generate({}, {}).empty());
}

}  // namespace
}  // namespace cnpb::nn
