// Quarantine-and-continue ingest over a corpus of corrupted dumps
// (DESIGN.md §8): each corruption class lands in the sidecar with its
// reason code, the survivors load, and a taxonomy still builds from them.
#include "kb/dump.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "taxonomy/taxonomy.h"
#include "util/atomic_file.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/tsv.h"

namespace cnpb::kb {
namespace {

constexpr char kPairSep = '\x02';
constexpr char kKvSep = '\x03';

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// One well-formed dump row: id, name, mention, bracket, abstract, infobox,
// tags, aliases.
std::vector<std::string> GoodRow(uint64_t id, const std::string& name) {
  return {std::to_string(id),
          name,
          name,
          "演员",
          name + "是一名演员。",
          std::string("职业") + kKvSep + "演员",
          std::string("演员") + kPairSep + "人物",
          ""};
}

// Writes raw rows WITHOUT a checksum footer, so structural corruption is
// exercised at the row level (a checksummed file would fail wholesale).
void WriteRawRows(const std::string& path,
                  const std::vector<std::vector<std::string>>& rows,
                  bool drop_last_newline = false) {
  std::string content;
  for (const auto& row : rows) {
    content += util::Join(row, "\t");
    content += '\n';
  }
  if (drop_last_newline && !content.empty()) content.pop_back();
  ASSERT_TRUE(util::WriteFileAtomic(path, content).ok());
}

// Writes rows through the checksummed saver (the normal path).
void WriteChecksummed(const std::string& path,
                      const std::vector<std::vector<std::string>>& rows) {
  util::TsvWriter writer(path);
  for (const auto& row : rows) writer.WriteRow(row);
  ASSERT_TRUE(writer.Close().ok());
}

TEST(DumpRobustnessTest, CleanRoundTripIsByteIdentical) {
  EncyclopediaDump dump;
  EncyclopediaPage page;
  page.page_id = 7;
  page.name = "刘德华（演员）";
  page.mention = "刘德华";
  page.bracket = "演员";
  page.abstract = "刘德华是演员。";
  page.infobox.push_back({page.name, "职业", "演员"});
  page.tags = {"演员", "歌手"};
  page.aliases = {"华仔"};
  dump.AddPage(page);

  const std::string a = TempPath("roundtrip_a.tsv");
  const std::string b = TempPath("roundtrip_b.tsv");
  ASSERT_TRUE(dump.Save(a).ok());
  auto loaded = EncyclopediaDump::Load(a);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->Save(b).ok());
  auto bytes_a = util::ReadFileToString(a);
  auto bytes_b = util::ReadFileToString(b);
  ASSERT_TRUE(bytes_a.ok() && bytes_b.ok());
  EXPECT_EQ(*bytes_a, *bytes_b);

  DumpLoadReport report;
  ASSERT_TRUE(EncyclopediaDump::Load(a, {}, &report).ok());
  EXPECT_TRUE(report.checksummed);
  EXPECT_EQ(report.rows_ok, 1u);
  EXPECT_EQ(report.rows_quarantined, 0u);
}

TEST(DumpRobustnessTest, StrictLoadFailsOnFirstBadRow) {
  const std::string path = TempPath("strict_bad.tsv");
  WriteRawRows(path, {GoodRow(1, "甲"), {"2", "乙", "too", "few"},
                      GoodRow(3, "丙")});
  auto loaded = EncyclopediaDump::Load(path);
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(DumpRobustnessTest, WrongFieldCountIsQuarantined) {
  const std::string path = TempPath("corpus_field_count.tsv");
  auto nine = GoodRow(2, "乙");
  nine.push_back("extra");
  WriteRawRows(path, {GoodRow(1, "甲"), nine, {"3", "丙", "short"},
                      GoodRow(4, "丁")});

  DumpLoadOptions options;
  options.max_errors = 10;
  DumpLoadReport report;
  auto loaded = EncyclopediaDump::Load(path, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(report.rows_quarantined, 2u);
  EXPECT_EQ(report.quarantined_by_reason.at("bad_field_count"), 2u);
  EXPECT_NE(loaded->FindByName("甲"), nullptr);
  EXPECT_NE(loaded->FindByName("丁"), nullptr);
}

TEST(DumpRobustnessTest, TruncatedFinalRowGetsItsOwnReason) {
  const std::string path = TempPath("corpus_truncated.tsv");
  // Simulate a torn tail: the writer died mid-row, taking the footer (never
  // written) and half the final row with it.
  WriteRawRows(path, {GoodRow(1, "甲"), GoodRow(2, "乙"), {"3", "丙", "丙"}},
               /*drop_last_newline=*/true);

  DumpLoadOptions options;
  options.max_errors = 1;
  DumpLoadReport report;
  auto loaded = EncyclopediaDump::Load(path, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(report.checksummed);
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(report.quarantined_by_reason.at("truncated_row"), 1u);
}

TEST(DumpRobustnessTest, BadUtf8IsQuarantined) {
  const std::string path = TempPath("corpus_utf8.tsv");
  auto mangled = GoodRow(2, "乙");
  mangled[4] = "abstract with stray continuation \x80 byte";
  auto overlong = GoodRow(3, "丙");
  overlong[2] = "overlong \xC0\xAF slash";
  WriteRawRows(path, {GoodRow(1, "甲"), mangled, overlong});

  DumpLoadOptions options;
  options.max_errors = 10;
  DumpLoadReport report;
  auto loaded = EncyclopediaDump::Load(path, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(report.quarantined_by_reason.at("bad_utf8"), 2u);
}

TEST(DumpRobustnessTest, BadAndDuplicateIdsAreQuarantined) {
  const std::string path = TempPath("corpus_ids.tsv");
  auto garbage_id = GoodRow(0, "乙");
  garbage_id[0] = "12abc";  // silent-strtoull regression guard
  auto zero_id = GoodRow(0, "丙");
  zero_id[0] = "0";
  auto dup_id = GoodRow(1, "丁");        // id 1 again
  auto dup_name = GoodRow(9, "甲");      // name 甲 again
  WriteRawRows(path,
               {GoodRow(1, "甲"), garbage_id, zero_id, dup_id, dup_name});

  DumpLoadOptions options;
  options.max_errors = 10;
  DumpLoadReport report;
  auto loaded = EncyclopediaDump::Load(path, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(report.quarantined_by_reason.at("bad_page_id"), 2u);
  EXPECT_EQ(report.quarantined_by_reason.at("dup_page_id"), 1u);
  EXPECT_EQ(report.quarantined_by_reason.at("dup_name"), 1u);
}

TEST(DumpRobustnessTest, QuarantineSidecarCarriesReasonAndRowNumber) {
  const std::string path = TempPath("corpus_sidecar.tsv");
  const std::string sidecar = TempPath("corpus_sidecar.quarantine.tsv");
  std::remove(sidecar.c_str());
  auto bad = GoodRow(0, "乙");
  bad[0] = "not-a-number";
  WriteRawRows(path, {GoodRow(1, "甲"), bad, GoodRow(3, "丙")});

  DumpLoadOptions options;
  options.max_errors = 10;
  options.quarantine_path = sidecar;
  ASSERT_TRUE(EncyclopediaDump::Load(path, options, nullptr).ok());

  auto rows = util::ReadTsvFile(sidecar);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  const auto& row = (*rows)[0];
  ASSERT_GE(row.size(), 3u);
  EXPECT_EQ(row[0], "bad_page_id");
  EXPECT_EQ(row[1], "2");             // 1-based row number
  EXPECT_EQ(row[2], "not-a-number");  // original fields follow
}

TEST(DumpRobustnessTest, BudgetExhaustionFailsTheLoad) {
  const std::string path = TempPath("corpus_budget.tsv");
  auto bad1 = GoodRow(0, "乙");
  bad1[0] = "x";
  auto bad2 = GoodRow(0, "丙");
  bad2[0] = "y";
  WriteRawRows(path, {GoodRow(1, "甲"), bad1, bad2});

  DumpLoadOptions options;
  options.max_errors = 1;
  auto loaded = EncyclopediaDump::Load(path, options, nullptr);
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(DumpRobustnessTest, ChecksummedFileWithBadRowsStillQuarantines) {
  // Corruption that predates the save (bad upstream extraction) is written
  // out checksummed; the footer verifies, and row validation still fires.
  const std::string path = TempPath("corpus_checksummed.tsv");
  WriteChecksummed(path, {GoodRow(1, "甲"), {"2", "乙", "short"},
                          GoodRow(3, "丙")});
  DumpLoadOptions options;
  options.max_errors = 10;
  DumpLoadReport report;
  auto loaded = EncyclopediaDump::Load(path, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(report.checksummed);
  EXPECT_EQ(loaded->size(), 2u);
  // A short row in a checksummed file is bad_field_count, never
  // truncated_row — the footer proves the file is whole.
  EXPECT_EQ(report.quarantined_by_reason.at("bad_field_count"), 1u);
}

TEST(DumpRobustnessTest, SurvivorsBuildAValidTaxonomy) {
  const std::string path = TempPath("corpus_survivors.tsv");
  std::vector<std::vector<std::string>> rows;
  for (uint64_t i = 1; i <= 6; ++i) {
    rows.push_back(GoodRow(i, "实体" + std::to_string(i)));
  }
  rows[2] = {"3", "破损行"};           // damage row 3
  rows[4][0] = "dup";                  // damage row 5
  WriteRawRows(path, rows);

  DumpLoadOptions options;
  options.max_errors = 10;
  DumpLoadReport report;
  auto loaded = EncyclopediaDump::Load(path, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 4u);
  EXPECT_EQ(report.rows_quarantined, 2u);

  // The surviving pages still carry coherent structure: tags present, and a
  // taxonomy over their tag relations materialises without issue.
  taxonomy::Taxonomy taxonomy;
  for (const EncyclopediaPage& page : loaded->pages()) {
    ASSERT_FALSE(page.tags.empty());
    const taxonomy::NodeId entity =
        taxonomy.AddNode(page.name, taxonomy::NodeKind::kEntity);
    for (const std::string& tag : page.tags) {
      taxonomy::NodeId hyper = taxonomy.Find(tag);
      if (hyper == taxonomy::kInvalidNode) {
        hyper = taxonomy.AddNode(tag, taxonomy::NodeKind::kConcept);
      }
      EXPECT_TRUE(taxonomy.AddIsa(entity, hyper, taxonomy::Source::kTag,
                                  0.8f));
    }
  }
  EXPECT_EQ(taxonomy.num_edges(), 4u * 2u);
}

}  // namespace
}  // namespace cnpb::kb
