// WAL layer unit tests (DESIGN.md §13): record codec round-trips (including
// CJK payloads), segment rotation and reopen, replay ordering and bounded
// replay past the commit cursor, cursor persistence, segment pruning, and
// the fault points wal.append / wal.fsync / wal.rotate. The crash-shaped
// behaviours (torn tails, corruption corpus) live in wal_robustness_test;
// the end-to-end daemon contract lives in ingest_chaos_test.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "ingest/wal.h"
#include "kb/page.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace cnpb {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/wal_test_" + name;
  // Tests may rerun in the same temp dir: wipe any previous contents.
  auto segments = ingest::ListWalSegments(dir);
  if (segments.ok()) {
    for (const auto& segment : *segments) std::remove(segment.path.c_str());
  }
  std::remove((dir + "/wal.cursor").c_str());
  return dir;
}

kb::EncyclopediaPage MakePage(const std::string& name) {
  kb::EncyclopediaPage page;
  page.name = name;
  page.mention = name;
  page.bracket = "歌手";
  page.abstract = name + "是一位歌手。";
  kb::SpoTriple entry;
  entry.subject = name;
  entry.predicate = "职业";
  entry.object = "歌手";
  page.infobox.push_back(entry);
  page.tags = {"歌手", "人物"};
  page.aliases = {name + "别名"};
  return page;
}

TEST(WalCodecTest, PageUpsertRoundTripsCjk) {
  const kb::EncyclopediaPage page = MakePage("刘德华");
  const std::string payload = ingest::EncodePageUpsert(page);
  auto decoded = ingest::DecodePageUpsert(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->name, "刘德华");
  EXPECT_EQ(decoded->mention, "刘德华");
  EXPECT_EQ(decoded->bracket, "歌手");
  EXPECT_EQ(decoded->abstract, page.abstract);
  ASSERT_EQ(decoded->infobox.size(), 1u);
  EXPECT_EQ(decoded->infobox[0].subject, "刘德华");
  EXPECT_EQ(decoded->infobox[0].predicate, "职业");
  EXPECT_EQ(decoded->infobox[0].object, "歌手");
  EXPECT_EQ(decoded->tags, page.tags);
  EXPECT_EQ(decoded->aliases, page.aliases);
  // page_id is not part of the wire format: the updater assigns fresh ids.
  EXPECT_EQ(decoded->page_id, 0u);
}

TEST(WalCodecTest, EmptyFieldsRoundTrip) {
  kb::EncyclopediaPage page;
  page.name = "x";
  auto decoded = ingest::DecodePageUpsert(ingest::EncodePageUpsert(page));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, "x");
  EXPECT_TRUE(decoded->infobox.empty());
  EXPECT_TRUE(decoded->tags.empty());
  EXPECT_TRUE(decoded->aliases.empty());
}

TEST(WalCodecTest, TrailingBytesRejected) {
  std::string payload = ingest::EncodePageUpsert(MakePage("a"));
  payload += "extra";
  EXPECT_FALSE(ingest::DecodePageUpsert(payload).ok());
}

TEST(WalWriterTest, AppendSyncReplayRoundTrip) {
  const std::string dir = FreshDir("roundtrip");
  auto writer = ingest::WalWriter::Open(dir);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ingest::WalWriter& wal = **writer;

  std::vector<uint64_t> lsns;
  for (int i = 0; i < 5; ++i) {
    auto lsn = wal.Append(ingest::WalOp::kUpsert, 1,
                          ingest::EncodePageUpsert(
                              MakePage("实体" + std::to_string(i))));
    ASSERT_TRUE(lsn.ok());
    lsns.push_back(*lsn);
  }
  auto del = wal.Append(ingest::WalOp::kDelete, 0, "实体3");
  ASSERT_TRUE(del.ok());
  lsns.push_back(*del);
  EXPECT_EQ(wal.durable_lsn(), 0u);
  ASSERT_TRUE(wal.Sync().ok());
  EXPECT_EQ(wal.durable_lsn(), lsns.back());

  // LSNs are contiguous from 1.
  for (size_t i = 0; i < lsns.size(); ++i) EXPECT_EQ(lsns[i], i + 1);

  std::vector<ingest::WalRecord> records;
  ingest::WalReplayReport report;
  ASSERT_TRUE(ingest::ReplayWal(dir, 0,
                                [&](const ingest::WalRecord& r) {
                                  records.push_back(r);
                                  return util::Status::Ok();
                                },
                                &report)
                  .ok());
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(report.records_delivered, 6u);
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(report.max_lsn, 6u);
  EXPECT_EQ(records[5].op, ingest::WalOp::kDelete);
  EXPECT_EQ(records[5].priority, 0);
  EXPECT_EQ(records[5].payload, "实体3");
  auto page = ingest::DecodePageUpsert(records[2].payload);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->name, "实体2");
}

TEST(WalWriterTest, ReplayAfterLsnSkipsPrefix) {
  const std::string dir = FreshDir("after_lsn");
  auto writer = ingest::WalWriter::Open(dir);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*writer)->Append(ingest::WalOp::kDelete, 1,
                                  "n" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());

  std::vector<uint64_t> seen;
  ingest::WalReplayReport report;
  ASSERT_TRUE(ingest::ReplayWal(dir, 2,
                                [&](const ingest::WalRecord& r) {
                                  seen.push_back(r.lsn);
                                  return util::Status::Ok();
                                },
                                &report)
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{3, 4}));
  EXPECT_EQ(report.records_delivered, 2u);
  EXPECT_EQ(report.records_skipped, 2u);
}

TEST(WalWriterTest, RotationSealsSegmentsAndReplayStaysOrdered) {
  const std::string dir = FreshDir("rotate");
  ingest::WalOptions options;
  options.segment_bytes = 256;  // a few records per segment
  auto writer = ingest::WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE((*writer)
                    ->Append(ingest::WalOp::kDelete, 1,
                             "entity_" + std::to_string(i))
                    .ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  EXPECT_GT((*writer)->rotations(), 2u);

  auto segments = ingest::ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_GT(segments->size(), 3u);
  // Sorted by first_lsn, strictly increasing.
  for (size_t i = 1; i < segments->size(); ++i) {
    EXPECT_GT((*segments)[i].first_lsn, (*segments)[i - 1].first_lsn);
  }

  uint64_t prev = 0;
  ingest::WalReplayReport report;
  ASSERT_TRUE(ingest::ReplayWal(dir, 0,
                                [&](const ingest::WalRecord& r) {
                                  EXPECT_EQ(r.lsn, prev + 1);
                                  prev = r.lsn;
                                  return util::Status::Ok();
                                },
                                &report)
                  .ok());
  EXPECT_EQ(prev, 30u);
  EXPECT_EQ(report.segments_total, segments->size());
  EXPECT_EQ(report.segments_scanned, segments->size());
}

TEST(WalWriterTest, ReopenContinuesLsnSequence) {
  const std::string dir = FreshDir("reopen");
  {
    auto writer = ingest::WalWriter::Open(dir);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(ingest::WalOp::kDelete, 1, "a").ok());
    ASSERT_TRUE((*writer)->Append(ingest::WalOp::kDelete, 1, "b").ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto writer = ingest::WalWriter::Open(dir);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ((*writer)->next_lsn(), 3u);
  auto lsn = (*writer)->Append(ingest::WalOp::kDelete, 1, "c");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  ASSERT_TRUE((*writer)->Sync().ok());

  uint64_t count = 0;
  ASSERT_TRUE(ingest::ReplayWal(dir, 0,
                                [&](const ingest::WalRecord& r) {
                                  ++count;
                                  EXPECT_EQ(r.lsn, count);
                                  return util::Status::Ok();
                                })
                  .ok());
  EXPECT_EQ(count, 3u);
}

TEST(WalWriterTest, BoundedReplaySkipsCoveredSegments) {
  const std::string dir = FreshDir("bounded");
  ingest::WalOptions options;
  options.segment_bytes = 256;
  auto writer = ingest::WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE((*writer)
                    ->Append(ingest::WalOp::kDelete, 1,
                             "entity_" + std::to_string(i))
                    .ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto segments = ingest::ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_GT(segments->size(), 3u);

  // A cursor in the middle of the log: whole segments below it must not be
  // read at all (the bounded-replay acceptance criterion).
  const uint64_t cursor_lsn = 15;
  ingest::WalReplayReport report;
  uint64_t delivered_min = UINT64_MAX;
  ASSERT_TRUE(ingest::ReplayWal(dir, cursor_lsn,
                                [&](const ingest::WalRecord& r) {
                                  if (r.lsn < delivered_min)
                                    delivered_min = r.lsn;
                                  return util::Status::Ok();
                                },
                                &report)
                  .ok());
  EXPECT_EQ(delivered_min, cursor_lsn + 1);
  EXPECT_EQ(report.records_delivered, 30 - cursor_lsn);
  EXPECT_LT(report.segments_scanned, report.segments_total);
}

TEST(WalWriterTest, PruneRemovesCoveredSegmentsOnly) {
  const std::string dir = FreshDir("prune");
  ingest::WalOptions options;
  options.segment_bytes = 256;
  auto writer = ingest::WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE((*writer)
                    ->Append(ingest::WalOp::kDelete, 1,
                             "entity_" + std::to_string(i))
                    .ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  auto before = ingest::ListWalSegments(dir);
  ASSERT_TRUE(before.ok());
  const size_t total = before->size();
  ASSERT_GT(total, 3u);

  auto pruned = ingest::PruneWalSegments(dir, 15);
  ASSERT_TRUE(pruned.ok());
  EXPECT_GT(*pruned, 0u);
  auto after = ingest::ListWalSegments(dir);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), total - *pruned);

  // Replay after pruning still yields every record past the cursor.
  uint64_t delivered = 0;
  ASSERT_TRUE(ingest::ReplayWal(dir, 15,
                                [&](const ingest::WalRecord&) {
                                  ++delivered;
                                  return util::Status::Ok();
                                })
                  .ok());
  EXPECT_EQ(delivered, 15u);

  // Pruning everything never removes the active (last) segment.
  auto all = ingest::PruneWalSegments(dir, 1000);
  ASSERT_TRUE(all.ok());
  auto remaining = ingest::ListWalSegments(dir);
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(remaining->size(), 1u);
}

TEST(WalCursorTest, SaveLoadRoundTripAndNotFound) {
  const std::string dir = FreshDir("cursor");
  ASSERT_TRUE(ingest::EnsureDir(dir).ok());
  auto missing = ingest::LoadCursor(dir);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);

  ingest::IngestCursor cursor;
  cursor.applied_lsn = 42;
  cursor.generation = 7;
  cursor.checkpoint_file = "checkpoint-42.pages.tsv";
  cursor.snapshot_file = "checkpoint-42.snap";
  ASSERT_TRUE(ingest::SaveCursor(dir, cursor).ok());

  auto loaded = ingest::LoadCursor(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->applied_lsn, 42u);
  EXPECT_EQ(loaded->generation, 7u);
  EXPECT_EQ(loaded->checkpoint_file, "checkpoint-42.pages.tsv");
  EXPECT_EQ(loaded->snapshot_file, "checkpoint-42.snap");

  // Overwrite advances; the newer cursor wins.
  cursor.applied_lsn = 50;
  ASSERT_TRUE(ingest::SaveCursor(dir, cursor).ok());
  auto newer = ingest::LoadCursor(dir);
  ASSERT_TRUE(newer.ok());
  EXPECT_EQ(newer->applied_lsn, 50u);
}

TEST(WalFaultTest, AppendFaultFailsCleanlyAndRecovers) {
  const std::string dir = FreshDir("fault_append");
  auto writer = ingest::WalWriter::Open(dir);
  ASSERT_TRUE(writer.ok());
  {
    util::ScopedFaultInjection faults("wal.append=1.0:limit=1", 1);
    EXPECT_FALSE((*writer)->Append(ingest::WalOp::kDelete, 1, "a").ok());
  }
  auto lsn = (*writer)->Append(ingest::WalOp::kDelete, 1, "a");
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->durable_lsn(), *lsn);
}

TEST(WalFaultTest, FsyncFaultFailsCommitWithoutAdvancingDurable) {
  const std::string dir = FreshDir("fault_fsync");
  auto writer = ingest::WalWriter::Open(dir);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(ingest::WalOp::kDelete, 1, "a").ok());
  {
    util::ScopedFaultInjection faults("wal.fsync=1.0:limit=1", 1);
    EXPECT_FALSE((*writer)->Sync().ok());
    EXPECT_EQ((*writer)->durable_lsn(), 0u);
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->durable_lsn(), 1u);
}

TEST(WalFaultTest, RotateFaultDegradesAndRetriesNextSync) {
  const std::string dir = FreshDir("fault_rotate");
  ingest::WalOptions options;
  options.segment_bytes = 64;  // every record crosses the threshold
  auto writer = ingest::WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)
                  ->Append(ingest::WalOp::kDelete, 1,
                           std::string(100, 'x'))
                  .ok());
  {
    util::ScopedFaultInjection faults("wal.rotate=1.0:limit=1", 1);
    // Rotation fails but the commit itself succeeds: durability first.
    ASSERT_TRUE((*writer)->Sync().ok());
    EXPECT_EQ((*writer)->durable_lsn(), 1u);
    EXPECT_EQ((*writer)->rotations(), 0u);
  }
  // The oversized segment keeps absorbing appends; the next Sync rotates.
  ASSERT_TRUE((*writer)->Append(ingest::WalOp::kDelete, 1, "b").ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->rotations(), 1u);
  EXPECT_EQ((*writer)->durable_lsn(), 2u);

  uint64_t count = 0;
  ASSERT_TRUE(ingest::ReplayWal(dir, 0,
                                [&](const ingest::WalRecord&) {
                                  ++count;
                                  return util::Status::Ok();
                                })
                  .ok());
  EXPECT_EQ(count, 2u);
}

TEST(WalFaultTest, WriteFailurePoisonsSegmentAndRewritesStagedRecords) {
  const std::string dir = FreshDir("fault_write");
  auto writer = ingest::WalWriter::Open(dir);
  ASSERT_TRUE(writer.ok());
  ingest::WalWriter& wal = **writer;

  // Record 1 commits cleanly; record 2's physical write fails. The failure
  // must poison the active segment — truncate it back to record 1 — so the
  // retry lands record 2 (and 3) in a fresh segment instead of appending
  // after partial bytes from the failed write.
  ASSERT_TRUE(wal.Append(ingest::WalOp::kDelete, 1, "a").ok());
  ASSERT_TRUE(wal.Sync().ok());
  EXPECT_EQ(wal.durable_lsn(), 1u);
  ASSERT_TRUE(wal.Append(ingest::WalOp::kDelete, 1, "b").ok());
  {
    util::ScopedFaultInjection faults("wal.write=1.0:limit=1", 1);
    EXPECT_FALSE(wal.Sync().ok());
    EXPECT_EQ(wal.durable_lsn(), 1u);  // nothing new acked
  }
  ASSERT_TRUE(wal.Append(ingest::WalOp::kDelete, 1, "c").ok());
  ASSERT_TRUE(wal.Sync().ok());
  EXPECT_EQ(wal.durable_lsn(), 3u);

  // The poisoned segment was sealed mid-log: replay crosses it with the
  // sealed-segment (strict) contract and must deliver every acked record
  // exactly once, in order.
  std::vector<ingest::WalRecord> records;
  ingest::WalReplayReport report;
  ASSERT_TRUE(ingest::ReplayWal(dir, 0,
                                [&](const ingest::WalRecord& r) {
                                  records.push_back(r);
                                  return util::Status::Ok();
                                },
                                &report)
                  .ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].payload, "a");
  EXPECT_EQ(records[1].payload, "b");
  EXPECT_EQ(records[2].payload, "c");
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, i + 1);
  }
  EXPECT_FALSE(report.torn_tail);
  // Poisoning retired the old segment: records 2 and 3 live in a new one.
  auto segments = ingest::ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 2u);
  EXPECT_EQ((*segments)[0].first_lsn, 1u);
  EXPECT_EQ((*segments)[1].first_lsn, 2u);
}

TEST(WalWriterTest, OversizedRecordRejectedAtAppend) {
  const std::string dir = FreshDir("oversized");
  ingest::WalOptions options;
  options.max_record_bytes = 128;
  auto writer = ingest::WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  EXPECT_FALSE((*writer)
                   ->Append(ingest::WalOp::kDelete, 1,
                            std::string(256, 'x'))
                   .ok());
  // The log is still usable afterwards.
  ASSERT_TRUE((*writer)->Append(ingest::WalOp::kDelete, 1, "ok").ok());
  ASSERT_TRUE((*writer)->Sync().ok());
}

}  // namespace
}  // namespace cnpb
