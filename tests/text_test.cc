#include <gtest/gtest.h>

#include <cmath>

#include "text/lexicon.h"
#include "text/ngram.h"
#include "text/segmenter.h"
#include "text/trie_matcher.h"
#include "text/utf8.h"

namespace cnpb::text {
namespace {

// ---- utf8 -------------------------------------------------------------------

TEST(Utf8Test, DecodeAsciiAndHan) {
  size_t pos = 0;
  EXPECT_EQ(DecodeCodepointAt("a", pos), U'a');
  EXPECT_EQ(pos, 1u);
  pos = 0;
  EXPECT_EQ(DecodeCodepointAt("中", pos), U'中');
  EXPECT_EQ(pos, 3u);
}

TEST(Utf8Test, RoundTripEncodeDecode) {
  for (char32_t cp : {U'a', U'中', U'文', char32_t(0x10000), char32_t(0x7FF)}) {
    const std::string encoded = EncodeCodepoint(cp);
    size_t pos = 0;
    EXPECT_EQ(DecodeCodepointAt(encoded, pos), cp);
    EXPECT_EQ(pos, encoded.size());
  }
}

TEST(Utf8Test, InvalidBytesBecomeReplacement) {
  std::string bad = "\xFF\xFE";
  size_t pos = 0;
  EXPECT_EQ(DecodeCodepointAt(bad, pos), kReplacementChar);
  EXPECT_EQ(pos, 1u);  // advanced one byte, no infinite loop
}

TEST(Utf8Test, TruncatedSequenceIsReplacement) {
  std::string truncated = "\xE4\xB8";  // 中 missing last byte
  size_t pos = 0;
  EXPECT_EQ(DecodeCodepointAt(truncated, pos), kReplacementChar);
  // The whole damaged sequence is consumed, not just its first byte.
  EXPECT_EQ(pos, 2u);
}

TEST(Utf8Test, TruncatedSequencesMidStringResync) {
  // One damaged character must yield exactly one U+FFFD and decoding must
  // resynchronise on the next character — regression for the cascade where
  // each leftover continuation byte became its own replacement.
  struct Case {
    std::string damaged;  // lead byte + partial continuation run
    const char* label;
  };
  const Case cases[] = {
      {"\xC3", "2-byte, missing 1"},          // Ã lead alone
      {"\xE4\xB8", "3-byte, missing 1"},      // 中 missing last byte
      {"\xE4", "3-byte, missing 2"},
      {"\xF0\x9F\x92", "4-byte, missing 1"},  // 💊 missing last byte
      {"\xF0\x9F", "4-byte, missing 2"},
      {"\xF0", "4-byte, missing 3"},
  };
  for (const Case& c : cases) {
    const std::string s = "a" + c.damaged + "中b";
    const std::vector<char32_t> decoded = DecodeString(s);
    ASSERT_EQ(decoded.size(), 4u) << c.label;
    EXPECT_EQ(decoded[0], U'a') << c.label;
    EXPECT_EQ(decoded[1], kReplacementChar) << c.label;
    EXPECT_EQ(decoded[2], U'中') << c.label;
    EXPECT_EQ(decoded[3], U'b') << c.label;
    EXPECT_EQ(NumCodepoints(s), 4u) << c.label;
  }
}

TEST(Utf8Test, CorruptedContinuationResyncsAtOffendingByte) {
  // 4-byte lead, two valid continuations, then an ASCII byte: the ASCII byte
  // must survive as itself, in sync.
  const std::string s = "\xF0\x9F\x92x中";
  const std::vector<char32_t> decoded = DecodeString(s);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], kReplacementChar);
  EXPECT_EQ(decoded[1], U'x');
  EXPECT_EQ(decoded[2], U'中');
}

TEST(Utf8Test, StrayContinuationRunIsOneReplacement) {
  const std::string s = "ab\x80\x80\x80xy";
  const std::vector<char32_t> decoded = DecodeString(s);
  ASSERT_EQ(decoded.size(), 5u);
  EXPECT_EQ(decoded[0], U'a');
  EXPECT_EQ(decoded[1], U'b');
  EXPECT_EQ(decoded[2], kReplacementChar);
  EXPECT_EQ(decoded[3], U'x');
  EXPECT_EQ(decoded[4], U'y');
}

TEST(Utf8Test, OverlongEncodingRejected) {
  std::string overlong = "\xC0\x80";  // overlong NUL
  size_t pos = 0;
  EXPECT_EQ(DecodeCodepointAt(overlong, pos), kReplacementChar);
}

TEST(Utf8Test, CodepointStrings) {
  const auto cps = CodepointStrings("汉字ab");
  ASSERT_EQ(cps.size(), 4u);
  EXPECT_EQ(cps[0], "汉");
  EXPECT_EQ(cps[1], "字");
  EXPECT_EQ(cps[2], "a");
  EXPECT_EQ(cps[3], "b");
}

TEST(Utf8Test, NumCodepointsAndSubstr) {
  EXPECT_EQ(NumCodepoints("男演员"), 3u);
  EXPECT_EQ(SubstrByCodepoint("男演员", 1, 2), "演员");
  EXPECT_EQ(SubstrByCodepoint("男演员", 0, 1), "男");
  EXPECT_EQ(SubstrByCodepoint("男演员", 2, 99), "员");
  EXPECT_EQ(SubstrByCodepoint("男演员", 5, 1), "");
}

TEST(Utf8Test, HanDetection) {
  EXPECT_TRUE(IsAllHan("男演员"));
  EXPECT_FALSE(IsAllHan("abc"));
  EXPECT_FALSE(IsAllHan("男a"));
  EXPECT_FALSE(IsAllHan(""));
  EXPECT_TRUE(IsHanCodepoint(U'中'));
  EXPECT_FALSE(IsHanCodepoint(U'。'));
}

// ---- lexicon ------------------------------------------------------------------

TEST(LexiconTest, AddAndQuery) {
  Lexicon lex;
  lex.Add("演员", 100, Pos::kNoun);
  lex.Add("刘德华", 10, Pos::kProperNoun);
  lex.Add("演员", 50);  // accumulate
  EXPECT_TRUE(lex.Contains("演员"));
  EXPECT_EQ(lex.Freq("演员"), 150u);
  EXPECT_EQ(lex.PosOf("演员"), Pos::kNoun);
  EXPECT_EQ(lex.PosOf("刘德华"), Pos::kProperNoun);
  EXPECT_EQ(lex.PosOf("不存在"), Pos::kOther);
  EXPECT_EQ(lex.total_freq(), 160u);
  EXPECT_EQ(lex.max_word_codepoints(), 3u);
}

TEST(LexiconTest, ProbabilitySumsAndOrders) {
  Lexicon lex;
  lex.Add("高频", 1000);
  lex.Add("低频", 1);
  EXPECT_GT(lex.Probability("高频"), lex.Probability("低频"));
  EXPECT_GT(lex.Probability("未知"), 0.0);
}

TEST(LexiconTest, SaveLoadRoundTrip) {
  Lexicon lex;
  lex.Add("演员", 100, Pos::kNoun);
  lex.Add("北京", 50, Pos::kProperNoun);
  const std::string path = ::testing::TempDir() + "/lexicon_test.tsv";
  ASSERT_TRUE(lex.Save(path).ok());
  auto loaded = Lexicon::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Freq("演员"), 100u);
  EXPECT_EQ(loaded->PosOf("北京"), Pos::kProperNoun);
  std::remove(path.c_str());
}

// ---- segmenter -----------------------------------------------------------------

class SegmenterTest : public ::testing::Test {
 protected:
  SegmenterTest() {
    lex_.Add("蚂蚁金服", 20, Pos::kProperNoun);
    lex_.Add("首席", 1000);
    lex_.Add("战略官", 800);
    lex_.Add("男演员", 200);
    lex_.Add("演员", 300);
    lex_.Add("中国", 500, Pos::kProperNoun);
    lex_.Add("香港", 400, Pos::kProperNoun);
    lex_.Add("中国香港", 250, Pos::kProperNoun);
    lex_.Add("出生", 600);
    lex_.Add("于", 2000);
  }
  Lexicon lex_;
};

TEST_F(SegmenterTest, PrefersLongWords) {
  Segmenter seg(&lex_);
  EXPECT_EQ(seg.Segment("蚂蚁金服首席战略官"),
            (std::vector<std::string>{"蚂蚁金服", "首席", "战略官"}));
}

TEST_F(SegmenterTest, CompoundConceptStaysWhole) {
  Segmenter seg(&lex_);
  EXPECT_EQ(seg.Segment("中国香港男演员"),
            (std::vector<std::string>{"中国香港", "男演员"}));
}

TEST_F(SegmenterTest, OovFallsApartIntoCodepoints) {
  Segmenter seg(&lex_);
  const auto words = seg.Segment("魑魅魍魉");
  EXPECT_EQ(words.size(), 4u);
}

TEST_F(SegmenterTest, MixedScriptTokens) {
  Segmenter seg(&lex_);
  const auto words = seg.Segment("1961年出生于中国");
  // "1961" one token, then 年 (OOV single), 出生, 于, 中国.
  ASSERT_GE(words.size(), 4u);
  EXPECT_EQ(words[0], "1961");
  EXPECT_EQ(words.back(), "中国");
}

TEST_F(SegmenterTest, WhitespaceDroppedPunctuationKept) {
  Segmenter seg(&lex_);
  const auto words = seg.Segment("出生 于。");
  EXPECT_EQ(words, (std::vector<std::string>{"出生", "于", "。"}));
}

TEST_F(SegmenterTest, EmptyInput) {
  Segmenter seg(&lex_);
  EXPECT_TRUE(seg.Segment("").empty());
}

TEST_F(SegmenterTest, ConcatenationRoundTrip) {
  Segmenter seg(&lex_);
  const std::string sentence = "蚂蚁金服首席战略官出生于中国香港";
  std::string rebuilt;
  for (const auto& w : seg.Segment(sentence)) rebuilt += w;
  EXPECT_EQ(rebuilt, sentence);
}

// ---- ngram / PMI -----------------------------------------------------------------

TEST(NgramTest, CountsAndPmi) {
  NgramCounter counter;
  // 首席+战略官 always adjacent; 中国 appears with varied neighbours.
  for (int i = 0; i < 50; ++i) {
    counter.AddSentence({"他", "担任", "首席", "战略官"});
  }
  for (int i = 0; i < 50; ++i) {
    counter.AddSentence({"中国", i % 2 == 0 ? "北京" : "上海"});
  }
  EXPECT_EQ(counter.UnigramCount("首席"), 50u);
  EXPECT_EQ(counter.BigramCount("首席", "战略官"), 50u);
  EXPECT_EQ(counter.BigramCount("战略官", "首席"), 0u);
  // Collocated pair binds tighter than a cross pair.
  EXPECT_GT(counter.Pmi("首席", "战略官"), counter.Pmi("担任", "战略官"));
  // Unseen pairs get strongly negative PMI but stay finite.
  const double unseen = counter.Pmi("北京", "战略官");
  EXPECT_LT(unseen, 0.0);
  EXPECT_TRUE(std::isfinite(unseen));
}

TEST(NgramTest, PmiSymmetryIsDirectional) {
  NgramCounter counter;
  counter.AddSentence({"a", "b"});
  EXPECT_GT(counter.Pmi("a", "b"), counter.Pmi("b", "a"));
}

// ---- trie matcher ----------------------------------------------------------------

TEST(TrieMatcherTest, ExactLookup) {
  TrieMatcher trie;
  trie.Add("刘德华", 7);
  trie.Add("刘德", 3);
  EXPECT_TRUE(trie.ContainsExact("刘德华"));
  EXPECT_TRUE(trie.ContainsExact("刘德"));
  EXPECT_FALSE(trie.ContainsExact("刘"));
  EXPECT_EQ(trie.PayloadOf("刘德华"), 7u);
  EXPECT_EQ(trie.size(), 2u);
}

TEST(TrieMatcherTest, LongestMatchWins) {
  TrieMatcher trie;
  trie.Add("演员", 1);
  trie.Add("男演员", 2);
  const auto matches = trie.FindAll("他是男演员。");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].text, "男演员");
  EXPECT_EQ(matches[0].payload, 2u);
}

TEST(TrieMatcherTest, NonOverlappingLeftToRight) {
  TrieMatcher trie;
  trie.Add("北京", 1);
  trie.Add("大学", 2);
  const auto matches = trie.FindAll("北京大学在北京");
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].text, "北京");
  EXPECT_EQ(matches[1].text, "大学");
  EXPECT_EQ(matches[2].text, "北京");
}

TEST(TrieMatcherTest, NoMatchAdvancesByCodepoint) {
  TrieMatcher trie;
  trie.Add("演员", 1);
  const auto matches = trie.FindAll("没有匹配词");
  EXPECT_TRUE(matches.empty());
}

TEST(TrieMatcherTest, RepeatedAddLastPayloadWins) {
  TrieMatcher trie;
  trie.Add("演员", 1);
  trie.Add("演员", 9);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.PayloadOf("演员"), 9u);
}

}  // namespace
}  // namespace cnpb::text
