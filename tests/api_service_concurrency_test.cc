// Concurrency contract of taxonomy::ApiService: N reader threads hammer
// Men2Ent/GetConcept/GetEntity while mentions register concurrently, and
// every issued call must be counted exactly once (the seed implementation
// lost updates on its plain uint64 counters and raced readers against
// RegisterMention's rehashing inserts — run under -fsanitize=thread to
// prove the fix).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "taxonomy/api_service.h"
#include "taxonomy/taxonomy.h"

namespace cnpb::taxonomy {
namespace {

// A small star-shaped taxonomy: kNumEntities entities under a handful of
// concepts, entity i named "e<i>", registered under mention "m<i%kMentions>"
// so several entities share each surface form.
constexpr size_t kNumEntities = 64;
constexpr size_t kNumMentions = 16;

Taxonomy MakeTaxonomy() {
  Taxonomy t;
  for (size_t i = 0; i < kNumEntities; ++i) {
    t.AddIsa("e" + std::to_string(i), "concept" + std::to_string(i % 4),
             Source::kTag, 0.9f);
    if (i % 2 == 0) {
      t.AddIsa("e" + std::to_string(i), "concept_extra", Source::kBracket,
               0.96f);
    }
  }
  return t;
}

TEST(ApiServiceConcurrencyTest, CountersAreExactUnderContention) {
  const Taxonomy taxonomy = MakeTaxonomy();
  ApiService api(&taxonomy);
  for (size_t i = 0; i < kNumEntities; ++i) {
    api.RegisterMention("m" + std::to_string(i % kNumMentions),
                        taxonomy.Find("e" + std::to_string(i)));
  }

  constexpr int kThreads = 8;
  constexpr size_t kCallsPerKind = 400;  // per thread, per API
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&api, w]() {
      for (size_t i = 0; i < kCallsPerKind; ++i) {
        const std::string mention =
            "m" + std::to_string((i + static_cast<size_t>(w)) % kNumMentions);
        const std::string entity =
            "e" + std::to_string((i * 7 + static_cast<size_t>(w)) %
                                 kNumEntities);
        api.Men2Ent(mention);
        api.GetConcept(entity);
        api.GetEntity("concept" + std::to_string(i % 4), 10);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  // The lost-update bug made these counts fall short; with relaxed atomics
  // they are exact.
  const ApiService::UsageStats usage = api.usage();
  EXPECT_EQ(usage.men2ent_calls, kThreads * kCallsPerKind);
  EXPECT_EQ(usage.get_concept_calls, kThreads * kCallsPerKind);
  EXPECT_EQ(usage.get_entity_calls, kThreads * kCallsPerKind);
  EXPECT_EQ(usage.total(), 3u * kThreads * kCallsPerKind);
}

TEST(ApiServiceConcurrencyTest, QueriesRaceRegistrationSafely) {
  const Taxonomy taxonomy = MakeTaxonomy();
  ApiService api(&taxonomy);
  // Seed half the mentions so readers always have something to find.
  for (size_t i = 0; i < kNumEntities; i += 2) {
    api.RegisterMention("m" + std::to_string(i % kNumMentions),
                        taxonomy.Find("e" + std::to_string(i)));
  }

  constexpr int kReaders = 6;
  constexpr size_t kReadsPerThread = 2000;
  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> issued{0};

  std::thread writer([&]() {
    // Register the remaining entities (plus brand-new surface forms, which
    // force unordered_map rehashes under the readers' feet).
    for (size_t i = 1; i < kNumEntities; i += 2) {
      api.RegisterMention("m" + std::to_string(i % kNumMentions),
                          taxonomy.Find("e" + std::to_string(i)));
      api.RegisterMention("fresh" + std::to_string(i),
                          taxonomy.Find("e" + std::to_string(i)));
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r]() {
      for (size_t i = 0; i < kReadsPerThread; ++i) {
        const size_t k = (i + static_cast<size_t>(r) * 13) % kNumEntities;
        api.Men2Ent("m" + std::to_string(k % kNumMentions));
        api.Men2Ent("fresh" + std::to_string(k));
        issued.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();

  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(api.usage().men2ent_calls, issued.load());
  // After the writer finishes, every registration is visible.
  EXPECT_EQ(api.num_mentions(),
            kNumMentions + kNumEntities / 2);  // m* + fresh{1,3,...}
  for (size_t i = 1; i < kNumEntities; i += 2) {
    EXPECT_FALSE(api.Men2Ent("fresh" + std::to_string(i)).empty());
  }
}

TEST(ApiServiceConcurrencyTest, ConcurrentRegistrationIsLossless) {
  const Taxonomy taxonomy = MakeTaxonomy();
  ApiService api(&taxonomy);
  constexpr int kWriters = 4;
  constexpr size_t kPerWriter = 200;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&api, &taxonomy, w]() {
      for (size_t i = 0; i < kPerWriter; ++i) {
        // Distinct mentions per writer, plus one shared mention everyone
        // registers repeatedly (exercises the dedup path under contention).
        api.RegisterMention(
            "w" + std::to_string(w) + "_" + std::to_string(i),
            taxonomy.Find("e" + std::to_string(i % kNumEntities)));
        api.RegisterMention("shared",
                            taxonomy.Find("e" + std::to_string(w)));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();

  EXPECT_EQ(api.num_mentions(), kWriters * kPerWriter + 1);
  // The shared mention holds exactly one entry per writer (dedup survived).
  EXPECT_EQ(api.Men2Ent("shared").size(), static_cast<size_t>(kWriters));
}

}  // namespace
}  // namespace cnpb::taxonomy
