#include <gtest/gtest.h>

#include "baselines/probase_tran.h"
#include "baselines/wiki_taxonomy.h"
#include "core/builder.h"
#include "eval/comparison.h"
#include "eval/coverage.h"
#include "eval/precision.h"
#include "synth/corpus_gen.h"
#include "synth/encyclopedia_gen.h"
#include "synth/world.h"
#include "text/segmenter.h"

namespace cnpb {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::WorldModel::Config wc;
    wc.num_entities = 3000;
    world_ = new synth::WorldModel(synth::WorldModel::Generate(wc));
    synth::EncyclopediaGenerator::Config gc;
    output_ = new synth::EncyclopediaGenerator::Output(
        synth::EncyclopediaGenerator::Generate(*world_, gc));
  }
  static void TearDownTestSuite() {
    delete output_;
    delete world_;
  }
  static eval::Oracle Oracle() {
    return [](const std::string& hypo, const std::string& hyper) {
      return output_->gold.IsCorrect(hypo, hyper);
    };
  }
  static std::vector<std::string> Thematic() {
    std::vector<std::string> words;
    for (const char* w : synth::ThematicWords()) words.emplace_back(w);
    return words;
  }

  static synth::WorldModel* world_;
  static synth::EncyclopediaGenerator::Output* output_;
};

synth::WorldModel* BaselinesTest::world_ = nullptr;
synth::EncyclopediaGenerator::Output* BaselinesTest::output_ = nullptr;

TEST_F(BaselinesTest, WikiTaxonomyIsPreciseButSmall) {
  baselines::ChineseWikiTaxonomy::Config config;
  config.thematic_lexicon = Thematic();
  const auto wiki = baselines::ChineseWikiTaxonomy::Build(
      output_->dump, world_->lexicon(), config);
  ASSERT_GT(wiki.num_edges(), 500u);
  const auto precision = eval::ExactPrecision(wiki, Oracle());
  EXPECT_GT(precision.precision(), 0.95);  // paper: 97.6%
}

TEST_F(BaselinesTest, ProbaseTranIsLargeButNoisy) {
  baselines::ProbaseTran::Config config;
  const auto result = baselines::ProbaseTran::Build(*world_, config);
  EXPECT_GT(result.english_pairs, 3000u);
  EXPECT_GT(result.total_edges, 500u);
  // Paper: 54.5% — simple cross-language translation cannot produce a
  // high-quality taxonomy.
  EXPECT_GT(result.precision(), 0.35);
  EXPECT_LT(result.precision(), 0.75);
  // The filters must actually fire.
  EXPECT_GT(result.filtered_meaning, 0u);
  EXPECT_GT(result.filtered_pos, 0u);
}

TEST_F(BaselinesTest, ProbaseTranFiltersImprovePrecision) {
  baselines::ProbaseTran::Config raw;
  raw.filter_meaning = false;
  raw.filter_pos = false;
  raw.filter_transitivity = false;
  const auto unfiltered = baselines::ProbaseTran::Build(*world_, raw);
  const auto filtered =
      baselines::ProbaseTran::Build(*world_, baselines::ProbaseTran::Config{});
  EXPECT_GT(filtered.precision(), unfiltered.precision());
}

TEST_F(BaselinesTest, TransitivityFilterKeepsDag) {
  const auto result =
      baselines::ProbaseTran::Build(*world_, baselines::ProbaseTran::Config{});
  EXPECT_TRUE(result.taxonomy.IsAcyclic());
}

TEST_F(BaselinesTest, ComparisonRowAndTableFormat) {
  baselines::ChineseWikiTaxonomy::Config config;
  config.thematic_lexicon = Thematic();
  const auto wiki = baselines::ChineseWikiTaxonomy::Build(
      output_->dump, world_->lexicon(), config);
  const auto row = eval::MakeRow("Chinese WikiTaxonomy", wiki, Oracle(), 500);
  EXPECT_EQ(row.num_isa, wiki.num_edges());
  EXPECT_GT(row.precision, 0.9);
  const std::string table = eval::FormatTable({row});
  EXPECT_NE(table.find("Chinese WikiTaxonomy"), std::string::npos);
  EXPECT_NE(table.find("precision"), std::string::npos);
}

TEST(EvalUnitTest, PrecisionHelpers) {
  taxonomy::Taxonomy t;
  t.AddIsa("a", "good", taxonomy::Source::kTag);
  t.AddIsa("a", "bad", taxonomy::Source::kBracket);
  const eval::Oracle oracle = [](const std::string&, const std::string& hyper) {
    return hyper == "good";
  };
  const auto exact = eval::ExactPrecision(t, oracle);
  EXPECT_EQ(exact.evaluated, 2u);
  EXPECT_EQ(exact.correct, 1u);
  EXPECT_DOUBLE_EQ(exact.precision(), 0.5);

  const auto by_source = eval::PrecisionBySource(t, oracle);
  EXPECT_DOUBLE_EQ(by_source.at(taxonomy::Source::kTag).precision(), 1.0);
  EXPECT_DOUBLE_EQ(by_source.at(taxonomy::Source::kBracket).precision(), 0.0);

  // Sampling more than the population evaluates everything exactly once.
  const auto sampled = eval::SampledPrecision(t, oracle, 100, 7);
  EXPECT_EQ(sampled.evaluated, 2u);
  EXPECT_EQ(sampled.correct, 1u);
}

TEST(EvalUnitTest, CoverageMatchesMentionsAndConcepts) {
  taxonomy::Taxonomy t;
  t.AddIsa("刘德华（演员）", "演员", taxonomy::Source::kTag);
  t.AddIsa("刘德华（演员）", "歌手", taxonomy::Source::kTag);
  kb::EncyclopediaDump dump;
  kb::EncyclopediaPage page;
  page.name = "刘德华（演员）";
  page.mention = "刘德华";
  dump.AddPage(page);

  const std::vector<std::string> questions = {
      "刘德华的代表作品有哪些？",  // entity match
      "有哪些著名的演员？",        // concept match
      "今天天气怎么样？",          // no match
  };
  const auto result = eval::QaCoverage(t, dump, questions);
  EXPECT_EQ(result.total_questions, 3u);
  EXPECT_EQ(result.covered_questions, 2u);
  EXPECT_EQ(result.covered_with_entity, 1u);
  EXPECT_DOUBLE_EQ(result.avg_concepts_per_entity(), 2.0);
  EXPECT_NEAR(result.coverage(), 2.0 / 3.0, 1e-9);
}

TEST(EvalUnitTest, EmptyInputsAreSafe) {
  taxonomy::Taxonomy t;
  const eval::Oracle oracle = [](const std::string&, const std::string&) {
    return true;
  };
  EXPECT_EQ(eval::ExactPrecision(t, oracle).evaluated, 0u);
  EXPECT_EQ(eval::SampledPrecision(t, oracle).evaluated, 0u);
  kb::EncyclopediaDump dump;
  EXPECT_EQ(eval::QaCoverage(t, dump, {}).coverage(), 0.0);
}

}  // namespace
}  // namespace cnpb
