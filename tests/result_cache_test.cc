// The version-keyed result cache, unit and wire level: LRU/byte-budget
// accounting, exact-version hits with wholesale invalidation on publish,
// the X-Cache contract of the cached endpoints, and (under tsan) cache
// reads racing publishes. The cache may serve a body stamped with a
// just-retired version — that is indistinguishable from the request
// arriving a moment earlier — but it must never serve a body whose stamp
// disagrees with its data.
#include "server/result_cache.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/server.h"
#include "server/service.h"
#include "taxonomy/api_service.h"
#include "taxonomy/taxonomy.h"
#include "util/fault_injection.h"

namespace cnpb::server {
namespace {

using taxonomy::ApiService;
using taxonomy::Taxonomy;

// ------------------------------------------------------------ unit level

TEST(ResultCacheTest, KeyIsCollisionFree) {
  // The argument is length-prefixed, so (arg, options) pairs can never
  // collide by concatenation, and the endpoint tag is NUL-terminated.
  EXPECT_NE(ResultCache::Key("getEntity", "ab", "|l1"),
            ResultCache::Key("getEntity", "a", "b|l1"));
  EXPECT_NE(ResultCache::Key("getEntity", "a", "|l12"),
            ResultCache::Key("getEntity", "a1", "|l2"));
  EXPECT_NE(ResultCache::Key("men2ent", "x"),
            ResultCache::Key("getConcept", "x"));
  EXPECT_EQ(ResultCache::Key("men2ent", "x"),
            ResultCache::Key("men2ent", "x"));
}

TEST(ResultCacheTest, HitRequiresExactVersion) {
  ResultCache cache({});
  const std::string key = ResultCache::Key("men2ent", "主公");
  ResultCache::CachedResponse out;
  EXPECT_FALSE(cache.Lookup(key, 1, &out));  // cold
  cache.Insert(key, 1, 200, "body-v1");

  ASSERT_TRUE(cache.Lookup(key, 1, &out));
  EXPECT_EQ(out.status, 200);
  EXPECT_EQ(out.body, "body-v1");

  // A publish bumped the version: the entry is dead and dropped on touch.
  EXPECT_FALSE(cache.Lookup(key, 2, &out));
  // ... including for callers still asking about the old version.
  EXPECT_FALSE(cache.Lookup(key, 1, &out));

  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.stale_drops, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_ratio(), 0.25);
}

TEST(ResultCacheTest, InsertReplacesExistingKey) {
  ResultCache cache({});
  const std::string key = ResultCache::Key("getConcept", "刘备", "|t0");
  cache.Insert(key, 1, 200, "first");
  cache.Insert(key, 1, 404, "second");
  ResultCache::CachedResponse out;
  ASSERT_TRUE(cache.Lookup(key, 1, &out));
  EXPECT_EQ(out.status, 404);
  EXPECT_EQ(out.body, "second");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCacheTest, LruEvictionUnderByteBudget) {
  // One shard sized for exactly three of these entries; recency decides
  // the victim, so a touched entry outlives an older untouched one.
  const std::string body(200, 'x');
  const std::string keys[] = {
      ResultCache::Key("getEntity", "a"), ResultCache::Key("getEntity", "b"),
      ResultCache::Key("getEntity", "c"), ResultCache::Key("getEntity", "d")};
  ResultCache::Config config;
  config.num_shards = 1;
  config.max_bytes = 3 * (keys[0].size() + body.size() + 64);
  ResultCache cache(config);

  cache.Insert(keys[0], 1, 200, body);
  cache.Insert(keys[1], 1, 200, body);
  cache.Insert(keys[2], 1, 200, body);
  EXPECT_EQ(cache.stats().entries, 3u);

  ResultCache::CachedResponse out;
  ASSERT_TRUE(cache.Lookup(keys[0], 1, &out));  // refresh "a"
  cache.Insert(keys[3], 1, 200, body);          // must evict LRU "b"

  EXPECT_TRUE(cache.Lookup(keys[0], 1, &out));
  EXPECT_FALSE(cache.Lookup(keys[1], 1, &out));
  EXPECT_TRUE(cache.Lookup(keys[2], 1, &out));
  EXPECT_TRUE(cache.Lookup(keys[3], 1, &out));

  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.stale_drops, 0u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.bytes, config.max_bytes);
}

TEST(ResultCacheTest, OversizedEntryIsNotCached) {
  ResultCache::Config config;
  config.num_shards = 1;
  config.max_bytes = 512;
  ResultCache cache(config);
  cache.Insert(ResultCache::Key("metrics", "all"), 1, 200,
               std::string(4096, 'm'));
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

// Lookups and inserts from many threads racing a version bump: run under
// tsan this is the data-race check for the sharded locking; everywhere it
// checks the counters stay exact (hits + misses == lookups issued).
TEST(ResultCacheTest, ConcurrentLookupsInsertsAndVersionBumps) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  constexpr int kKeys = 32;
  ResultCache::Config config;
  config.max_bytes = 1u << 16;  // small enough to force evictions
  ResultCache cache(config);
  std::vector<std::string> keys;
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back(ResultCache::Key("men2ent", "m" + std::to_string(i)));
  }

  std::atomic<uint64_t> version{1};
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    while (!stop.load()) {
      version.fetch_add(1);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ResultCache::CachedResponse out;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string& key = keys[(t * 7 + i) % kKeys];
        const uint64_t v = version.load();
        if (!cache.Lookup(key, v, &out)) {
          cache.Insert(key, v, 200, "body@" + std::to_string(v));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true);
  publisher.join();

  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            uint64_t{kThreads} * kOpsPerThread);
  EXPECT_LE(stats.entries, size_t{kKeys});
  EXPECT_LE(stats.bytes, config.max_bytes);
}

// ------------------------------------------------------------ wire level

Taxonomy MakeTaxonomy() {
  Taxonomy t;
  t.AddIsa("刘备", "君主", taxonomy::Source::kTag, 0.9f);
  t.AddIsa("曹操", "君主", taxonomy::Source::kTag, 0.9f);
  t.AddIsa("君主", "人物", taxonomy::Source::kTag, 0.7f);
  for (int i = 0; i < 4; ++i) {
    t.AddIsa("entity" + std::to_string(i), "concept",
             taxonomy::Source::kTag, 0.5f);
  }
  return t;
}

// A live server whose endpoints run with the result cache enabled.
class CachedServerTest : public ::testing::Test {
 protected:
  void StartServer() {
    taxonomy_ = std::make_unique<Taxonomy>(MakeTaxonomy());
    api_ = std::make_unique<ApiService>(taxonomy_.get());
    api_->RegisterMention("主公", taxonomy_->Find("刘备"));
    endpoints_ =
        std::make_unique<ApiEndpoints>(api_.get(), ResultCache::Config{});
    HttpServer::Config config;
    config.num_threads = 2;
    server_ = std::make_unique<HttpServer>(config, endpoints_->AsHandler());
    ASSERT_TRUE(server_->Start().ok());
  }

  HttpClient Connect() {
    HttpClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  std::unique_ptr<Taxonomy> taxonomy_;
  std::unique_ptr<ApiService> api_;
  std::unique_ptr<ApiEndpoints> endpoints_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(CachedServerTest, MissThenHitWithIdenticalBody) {
  StartServer();
  HttpClient client = Connect();
  const std::string target = "/v1/men2ent?mention=" + PercentEncode("主公");
  auto first = client.Get(target);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 200);
  EXPECT_EQ(first->Header("X-Cache"), "miss");

  auto second = client.Get(target);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, 200);
  EXPECT_EQ(second->Header("X-Cache"), "hit");
  EXPECT_EQ(second->body, first->body);

  const ResultCache::Stats stats = endpoints_->cache()->stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.insertions, 1u);
}

TEST_F(CachedServerTest, UnknownMention404IsCacheableToo) {
  // The 404 for an unknown mention is snapshot-derived — the snapshot says
  // the mention does not exist — so it caches like any answer.
  StartServer();
  HttpClient client = Connect();
  auto first = client.Get("/v1/men2ent?mention=nobody");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 404);
  EXPECT_EQ(first->Header("X-Cache"), "miss");
  auto second = client.Get("/v1/men2ent?mention=nobody");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, 404);
  EXPECT_EQ(second->Header("X-Cache"), "hit");
}

TEST_F(CachedServerTest, TransientErrorsAreNeverCached) {
  StartServer();
  HttpClient client = Connect();
  {
    util::ScopedFaultInjection scoped("api.query=1", 7);
    auto failed = client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
    ASSERT_TRUE(failed.ok());
    EXPECT_EQ(failed->status, 503);
    // No X-Cache header at all: the error did not consult or fill the cache
    // beyond the miss, and must be re-evaluated next time.
    EXPECT_EQ(failed->Header("X-Cache"), "");
  }
  auto ok = client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);
  EXPECT_EQ(ok->Header("X-Cache"), "miss");  // the 503 left nothing behind
  auto again = client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Header("X-Cache"), "hit");
}

TEST_F(CachedServerTest, PublishInvalidatesWholesale) {
  StartServer();
  HttpClient client = Connect();
  const std::string target =
      "/v1/getConcept?entity=" + PercentEncode("刘备");
  ASSERT_TRUE(client.Get(target).ok());         // miss, fills
  auto warm = client.Get(target);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->Header("X-Cache"), "hit");
  EXPECT_NE(warm->body.find("\"version\":1"), std::string::npos);

  api_->Publish(Taxonomy::Freeze(MakeTaxonomy()), {});

  // Every cached entry is now stale: same query misses, re-resolves against
  // the new snapshot, and carries the new stamp. No invalidation protocol
  // ran — the version key did all the work.
  auto fresh = client.Get(target);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->Header("X-Cache"), "miss");
  EXPECT_NE(fresh->body.find("\"version\":2"), std::string::npos);
  EXPECT_GE(endpoints_->cache()->stats().stale_drops, 1u);

  auto rewarmed = client.Get(target);
  ASSERT_TRUE(rewarmed.ok());
  EXPECT_EQ(rewarmed->Header("X-Cache"), "hit");
  EXPECT_NE(rewarmed->body.find("\"version\":2"), std::string::npos);
}

// Batch forms share the per-item fragment entries with their single-shot
// endpoints (DESIGN.md §14): a batch populates per-item entries under its
// pinned version, a repeat batch serves them (X-Cache-Hits counts them),
// and single-shot traffic hits the very same entries — in both directions.
TEST_F(CachedServerTest, BatchSharesPerItemEntriesWithSingleShot) {
  StartServer();
  HttpClient client = Connect();
  const std::string batch = "/v1/men2ent_batch?mention=" +
                            PercentEncode("主公") + "&mention=nobody";
  auto first = client.Get(batch);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 200);
  EXPECT_EQ(first->Header("X-Cache-Hits"), "0");
  auto second = client.Get(batch);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, 200);
  EXPECT_EQ(second->Header("X-Cache-Hits"), "2");
  EXPECT_EQ(second->body, first->body);

  // Batch-warmed entries serve single-shot traffic — both the 200 and the
  // unknown-mention 404 path (the entry records the single-shot status).
  auto single = client.Get("/v1/men2ent?mention=" + PercentEncode("主公"));
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->status, 200);
  EXPECT_EQ(single->Header("X-Cache"), "hit");
  auto missing = client.Get("/v1/men2ent?mention=nobody");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  EXPECT_EQ(missing->Header("X-Cache"), "hit");

  // And the reverse: a single-shot warm is a batch-item hit.
  auto warm = client.Get("/v1/getConcept?entity=" + PercentEncode("刘备"));
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->Header("X-Cache"), "miss");
  auto concept_batch =
      client.Get("/v1/getConcept_batch?entity=" + PercentEncode("刘备"));
  ASSERT_TRUE(concept_batch.ok());
  EXPECT_EQ(concept_batch->Header("X-Cache-Hits"), "1");
}

// Wire-level churn (the tsan-relevant half of the coherence story): clients
// hammer a cached endpoint while a publisher bumps versions. Hits may serve
// a stamp one publish behind, but the stamp must always name the snapshot
// that produced the body — version V answers always say "genV".
TEST(CachedServerChurnTest, CacheNeverServesIncoherentStamps) {
  constexpr uint64_t kPublishes = 120;
  const auto make_version = [](uint64_t v) {
    Taxonomy t;
    t.AddIsa("e", "gen" + std::to_string(v), taxonomy::Source::kTag, 0.9f);
    return Taxonomy::Freeze(std::move(t));
  };
  ApiService api(make_version(1));
  ApiEndpoints endpoints(&api, ResultCache::Config{});
  HttpServer::Config config;
  config.num_threads = 2;
  HttpServer server(config, endpoints.AsHandler());
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> done{false};
  std::thread publisher([&] {
    for (uint64_t v = 2; v <= kPublishes; ++v) {
      api.Publish(make_version(v), {});
      std::this_thread::yield();
    }
    done.store(true);
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      HttpClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      while (!done.load()) {
        auto response = client.Get("/v1/getConcept?entity=e");
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        ASSERT_EQ(response->status, 200);
        const size_t at = response->body.find("\"version\":");
        ASSERT_NE(at, std::string::npos);
        const uint64_t stamped =
            std::strtoull(response->body.c_str() + at + 10, nullptr, 10);
        const std::string expected =
            "\"gen" + std::to_string(stamped) + "\"";
        ASSERT_NE(response->body.find(expected), std::string::npos)
            << "stamped " << stamped << " but: " << response->body;
      }
    });
  }
  publisher.join();
  for (std::thread& c : clients) c.join();
  EXPECT_GT(endpoints.cache()->stats().hits, 0u);
}

}  // namespace
}  // namespace cnpb::server
