// Corruption corpus for the snapshot loader (DESIGN.md §10): every way a
// snapshot file can be damaged or hand-crafted wrong — truncation at every
// section boundary, flipped payload bytes, flipped CRCs, bad magic,
// oversized offsets, zero-length files, trailing garbage, out-of-range
// indices — must yield a clean kDataLoss / kInvalidArgument status, never a
// crash or an out-of-bounds read (the asan CI job holds the loader to
// that). Torn-write injection at the end proves a failed WriteSnapshot
// never leaves a loadable-but-wrong file behind.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "taxonomy/snapshot.h"
#include "taxonomy/taxonomy.h"
#include "taxonomy/view.h"
#include "util/atomic_file.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace cnpb {
namespace {

// A small but fully populated world: several nodes, edges from more than
// one source, multi-candidate mentions — every section non-empty.
std::string ValidSnapshotBytes() {
  taxonomy::Taxonomy t;
  t.AddIsa("刘德华", "演员", taxonomy::Source::kInfobox, 0.9f);
  t.AddIsa("刘德华", "歌手", taxonomy::Source::kTag, 0.8f);
  t.AddIsa("演员", "人物", taxonomy::Source::kBracket, 0.7f);
  t.AddIsa("歌手", "人物", taxonomy::Source::kAbstract, 0.6f);
  t.AddIsa("周杰伦", "歌手", taxonomy::Source::kInfobox, 0.9f);
  taxonomy::MentionIndex mentions;
  mentions["华仔"] = {t.Find("刘德华")};
  mentions["歌手"] = {t.Find("刘德华"), t.Find("周杰伦")};
  auto frozen = taxonomy::Taxonomy::Freeze(std::move(t));
  return taxonomy::SerializeSnapshot(
      taxonomy::HeapServingView(frozen, std::move(mentions)));
}

std::string WriteBytes(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

// Loads `bytes` from disk and requires a clean structural/integrity
// rejection: kInvalidArgument or kDataLoss, never OK, never a crash. Under
// asan this doubles as an out-of-bounds probe.
void ExpectRejected(const std::string& name, const std::string& bytes) {
  const std::string path = WriteBytes(name, bytes);
  auto snap = taxonomy::Snapshot::Load(path);
  ASSERT_FALSE(snap.ok()) << name << " loaded successfully";
  const util::StatusCode code = snap.status().code();
  EXPECT_TRUE(code == util::StatusCode::kInvalidArgument ||
              code == util::StatusCode::kDataLoss)
      << name << " rejected with unexpected status: "
      << snap.status().ToString();
  std::remove(path.c_str());
}

void ExpectRejectedWith(const std::string& name, const std::string& bytes,
                        util::StatusCode want) {
  const std::string path = WriteBytes(name, bytes);
  auto snap = taxonomy::Snapshot::Load(path);
  ASSERT_FALSE(snap.ok()) << name << " loaded successfully";
  EXPECT_EQ(snap.status().code(), want)
      << name << ": " << snap.status().ToString();
  std::remove(path.c_str());
}

template <typename T>
void Patch(std::string* bytes, size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), bytes->size());
  std::memcpy(bytes->data() + offset, &value, sizeof(T));
}

TEST(SnapshotRobustnessTest, ValidFileLoads) {
  const std::string bytes = ValidSnapshotBytes();
  const std::string path = WriteBytes("valid.snap", bytes);
  auto snap = taxonomy::Snapshot::Load(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ((*snap)->num_nodes(), 5u);
  EXPECT_EQ((*snap)->num_edges(), 5u);
  std::remove(path.c_str());
}

TEST(SnapshotRobustnessTest, MissingFileIsIoError) {
  auto snap = taxonomy::Snapshot::Load(::testing::TempDir() +
                                       "/does_not_exist.snap");
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), util::StatusCode::kIoError);
}

TEST(SnapshotRobustnessTest, ZeroLengthFileRejected) {
  ExpectRejectedWith("zero.snap", "", util::StatusCode::kInvalidArgument);
}

TEST(SnapshotRobustnessTest, BadMagicRejected) {
  std::string bytes = ValidSnapshotBytes();
  bytes[0] = 'X';
  ExpectRejectedWith("badmagic.snap", bytes,
                     util::StatusCode::kInvalidArgument);
  ExpectRejectedWith("textfile.snap", "entity\tconcept\t1\t0.9\n",
                     util::StatusCode::kInvalidArgument);
}

TEST(SnapshotRobustnessTest, UnsupportedVersionRejected) {
  std::string bytes = ValidSnapshotBytes();
  Patch<uint32_t>(&bytes, 8, taxonomy::kSnapshotFormatVersion + 1);
  ASSERT_TRUE(taxonomy::ResealSnapshotHeader(&bytes).ok());
  ExpectRejectedWith("version.snap", bytes,
                     util::StatusCode::kInvalidArgument);
}

TEST(SnapshotRobustnessTest, BadSectionCountRejected) {
  std::string bytes = ValidSnapshotBytes();
  Patch<uint32_t>(&bytes, 12, taxonomy::kSnapshotSectionCount - 1);
  ASSERT_TRUE(taxonomy::ResealSnapshotHeader(&bytes).ok());
  ExpectRejected("sectioncount.snap", bytes);
}

TEST(SnapshotRobustnessTest, TruncationAtEveryBoundaryRejected) {
  const std::string bytes = ValidSnapshotBytes();
  auto sections = taxonomy::ReadSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());

  std::vector<size_t> cuts = {1, 7, taxonomy::kSnapshotHeaderSize - 1,
                              taxonomy::kSnapshotHeaderSize,
                              taxonomy::SnapshotPreludeSize() - 1,
                              taxonomy::SnapshotPreludeSize(),
                              bytes.size() - 1};
  for (const auto& section : *sections) {
    cuts.push_back(section.offset);            // section start
    cuts.push_back(section.offset + section.size);  // section end
    if (section.size > 1) cuts.push_back(section.offset + section.size / 2);
  }
  for (const size_t cut : cuts) {
    if (cut >= bytes.size()) continue;
    ExpectRejected("truncated_at_" + std::to_string(cut) + ".snap",
                   bytes.substr(0, cut));
  }
}

TEST(SnapshotRobustnessTest, FlippedPayloadByteInEverySectionIsDataLoss) {
  const std::string bytes = ValidSnapshotBytes();
  auto sections = taxonomy::ReadSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  for (const auto& section : *sections) {
    if (section.size == 0) continue;
    std::string corrupt = bytes;
    corrupt[section.offset + section.size / 2] ^= 0x40;
    ExpectRejectedWith("flip_section_" + std::to_string(section.id) + ".snap",
                       corrupt, util::StatusCode::kDataLoss);
  }
}

TEST(SnapshotRobustnessTest, FlippedStoredCrcIsDataLoss) {
  const std::string bytes = ValidSnapshotBytes();
  for (uint32_t id = 0; id < taxonomy::kSnapshotSectionCount; ++id) {
    std::string corrupt = bytes;
    const size_t entry =
        taxonomy::kSnapshotHeaderSize + id * taxonomy::kSnapshotSectionEntrySize;
    corrupt[entry + 4] ^= 0xFF;  // stored section CRC
    // Without resealing, the header CRC catches the tampered table.
    ExpectRejectedWith("flipcrc_raw_" + std::to_string(id) + ".snap", corrupt,
                       util::StatusCode::kDataLoss);
    // With a resealed header, the per-section CRC check catches it.
    ASSERT_TRUE(taxonomy::ResealSnapshotHeader(&corrupt).ok());
    ExpectRejectedWith("flipcrc_resealed_" + std::to_string(id) + ".snap",
                       corrupt, util::StatusCode::kDataLoss);
  }
}

TEST(SnapshotRobustnessTest, FlippedHeaderCrcIsDataLoss) {
  std::string bytes = ValidSnapshotBytes();
  bytes[40] ^= 0xFF;
  ExpectRejectedWith("headercrc.snap", bytes, util::StatusCode::kDataLoss);
}

TEST(SnapshotRobustnessTest, OversizedSectionOffsetsRejected) {
  const std::string valid = ValidSnapshotBytes();
  for (const uint64_t evil :
       {static_cast<uint64_t>(valid.size()), ~uint64_t{0},
        ~uint64_t{0} - 64, static_cast<uint64_t>(valid.size()) * 2}) {
    std::string bytes = valid;
    // Section 3 (name-sorted ids): point it past the end / at overflow bait.
    const size_t entry = taxonomy::kSnapshotHeaderSize +
                         3 * taxonomy::kSnapshotSectionEntrySize;
    Patch<uint64_t>(&bytes, entry + 8, evil);
    ASSERT_TRUE(taxonomy::ResealSnapshotHeader(&bytes).ok());
    ExpectRejected("offset_" + std::to_string(evil % 1000) + ".snap", bytes);
  }
}

TEST(SnapshotRobustnessTest, MisalignedSectionOffsetRejected) {
  std::string bytes = ValidSnapshotBytes();
  auto sections = taxonomy::ReadSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  const size_t entry = taxonomy::kSnapshotHeaderSize +
                       1 * taxonomy::kSnapshotSectionEntrySize;
  Patch<uint64_t>(&bytes, entry + 8, (*sections)[1].offset + 1);
  ASSERT_TRUE(taxonomy::ResealSnapshotHeader(&bytes).ok());
  ExpectRejectedWith("misaligned.snap", bytes,
                     util::StatusCode::kInvalidArgument);
}

TEST(SnapshotRobustnessTest, TrailingGarbageIsDataLoss) {
  std::string bytes = ValidSnapshotBytes();
  bytes += "garbage after the last section";
  ExpectRejectedWith("trailing.snap", bytes, util::StatusCode::kDataLoss);
}

TEST(SnapshotRobustnessTest, InflatedCountsRejected) {
  // Counts far beyond the file size must be rejected before any
  // count-derived allocation or offset arithmetic happens.
  for (const size_t off : {16u, 20u, 24u}) {
    std::string bytes = ValidSnapshotBytes();
    Patch<uint32_t>(&bytes, off, 0x7FFFFFFFu);
    ASSERT_TRUE(taxonomy::ResealSnapshotHeader(&bytes).ok());
    ExpectRejected("count_" + std::to_string(off) + ".snap", bytes);
  }
}

TEST(SnapshotRobustnessTest, OutOfRangeEdgeTargetRejected) {
  std::string bytes = ValidSnapshotBytes();
  auto sections = taxonomy::ReadSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  // Section 5 is hypernym targets: u32 node ids.
  Patch<uint32_t>(&bytes, (*sections)[5].offset, 0x00FFFFFFu);
  ASSERT_TRUE(taxonomy::ResealSnapshotSection(&bytes, 5).ok());
  ExpectRejectedWith("badtarget.snap", bytes,
                     util::StatusCode::kInvalidArgument);
}

TEST(SnapshotRobustnessTest, OutOfRangeMentionCandidateRejected) {
  std::string bytes = ValidSnapshotBytes();
  auto sections = taxonomy::ReadSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  // Section 15 is mention candidate ids.
  Patch<uint32_t>(&bytes, (*sections)[15].offset, 0x00FFFFFFu);
  ASSERT_TRUE(taxonomy::ResealSnapshotSection(&bytes, 15).ok());
  ExpectRejectedWith("badcandidate.snap", bytes,
                     util::StatusCode::kInvalidArgument);
}

TEST(SnapshotRobustnessTest, NonMonotonicNameOffsetsRejected) {
  std::string bytes = ValidSnapshotBytes();
  auto sections = taxonomy::ReadSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  // Section 1 is name offsets: u64[n+1]. Swap the middle two.
  const size_t base = (*sections)[1].offset;
  uint64_t a, b;
  std::memcpy(&a, bytes.data() + base + 8, 8);
  std::memcpy(&b, bytes.data() + base + 16, 8);
  Patch<uint64_t>(&bytes, base + 8, b);
  Patch<uint64_t>(&bytes, base + 16, a);
  ASSERT_TRUE(taxonomy::ResealSnapshotSection(&bytes, 1).ok());
  ExpectRejectedWith("nameoffsets.snap", bytes,
                     util::StatusCode::kInvalidArgument);
}

TEST(SnapshotRobustnessTest, UnsortedNamePermutationRejected) {
  std::string bytes = ValidSnapshotBytes();
  auto sections = taxonomy::ReadSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  // Section 3 is the name-sorted id permutation: swap the first two so the
  // binary-search invariant breaks while every id stays in range.
  const size_t base = (*sections)[3].offset;
  uint32_t a, b;
  std::memcpy(&a, bytes.data() + base, 4);
  std::memcpy(&b, bytes.data() + base + 4, 4);
  Patch<uint32_t>(&bytes, base, b);
  Patch<uint32_t>(&bytes, base + 4, a);
  ASSERT_TRUE(taxonomy::ResealSnapshotSection(&bytes, 3).ok());
  ExpectRejectedWith("unsortednames.snap", bytes,
                     util::StatusCode::kInvalidArgument);
}

TEST(SnapshotRobustnessTest, UnsortedMentionsRejected) {
  std::string bytes = ValidSnapshotBytes();
  auto sections = taxonomy::ReadSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  // Section 13 is the mention arena (sorted byte order). Corrupting its
  // first byte to 0xFF makes the first mention sort after the second.
  bytes[(*sections)[13].offset] = static_cast<char>(0xFF);
  ASSERT_TRUE(taxonomy::ResealSnapshotSection(&bytes, 13).ok());
  ExpectRejectedWith("unsortedmentions.snap", bytes,
                     util::StatusCode::kInvalidArgument);
}

TEST(SnapshotRobustnessTest, TornWritesNeverLeaveLoadableCorruption) {
  // With write/fsync/rename faults armed, every WriteSnapshot either
  // succeeds or leaves the destination as it was: absent, or the previous
  // complete generation. A load after each attempt must never see torn or
  // corrupt bytes.
  taxonomy::Taxonomy t;
  t.AddIsa("实体", "概念", taxonomy::Source::kInfobox, 0.9f);
  auto frozen = taxonomy::Taxonomy::Freeze(std::move(t));
  const taxonomy::HeapServingView view(frozen, taxonomy::MentionIndex());

  for (uint64_t seed = 0; seed < 10; ++seed) {
    const std::string path = ::testing::TempDir() + "/torn_" +
                             std::to_string(seed) + ".snap";
    std::remove(path.c_str());
    int successes = 0;
    {
      util::ScopedFaultInjection faults(
          "snapshot.write=0.4;snapshot.fsync=0.3;snapshot.rename=0.4", seed);
      for (int attempt = 0; attempt < 8; ++attempt) {
        const util::Status status = taxonomy::WriteSnapshot(view, path);
        if (status.ok()) ++successes;
        auto snap = taxonomy::Snapshot::Load(path);
        if (snap.ok()) {
          // Whatever is on disk is a complete snapshot of this view.
          EXPECT_EQ((*snap)->num_nodes(), view.num_nodes());
          EXPECT_EQ((*snap)->num_edges(), view.num_edges());
        } else {
          // Only "no complete file yet" is acceptable — never corruption.
          EXPECT_EQ(snap.status().code(), util::StatusCode::kIoError)
              << "seed " << seed << " attempt " << attempt << ": "
              << snap.status().ToString();
        }
      }
    }
    // Once a write succeeded the file persists; later failed attempts
    // cannot take it away.
    if (successes > 0) {
      auto snap = taxonomy::Snapshot::Load(path);
      EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    }
    std::remove(path.c_str());
  }
}

TEST(SnapshotRobustnessTest, InjectedReadFaultIsIoError) {
  const std::string path =
      WriteBytes("readfault.snap", ValidSnapshotBytes());
  {
    util::ScopedFaultInjection faults("snapshot.load.read=1", 3);
    auto snap = taxonomy::Snapshot::Load(path);
    ASSERT_FALSE(snap.ok());
    EXPECT_EQ(snap.status().code(), util::StatusCode::kIoError);
  }
  auto snap = taxonomy::Snapshot::Load(path);
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cnpb
